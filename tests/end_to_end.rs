//! Cross-crate integration tests: the full pipeline from probabilistic
//! graph to spheres of influence to influence maximization, plus exact
//! reproductions of the paper's worked examples.

use spheres_of_influence::core::all_typical_cascades;
use spheres_of_influence::core::stability::exact_expected_cost_bruteforce;
use spheres_of_influence::jaccard::median::MedianConfig;
use spheres_of_influence::prelude::*;

/// The probabilistic graph of Figure 1 / Example 1.
/// Ids: v1=0, v2=1, v3=2, v4=3, v5=4.
fn example1() -> ProbGraph {
    let mut b = GraphBuilder::new(5);
    b.add_weighted_edge(4, 0, 0.7); // v5 -> v1
    b.add_weighted_edge(4, 1, 0.4); // v5 -> v2
    b.add_weighted_edge(4, 3, 0.3); // v5 -> v4
    b.add_weighted_edge(0, 1, 0.1); // v1 -> v2
    b.add_weighted_edge(3, 1, 0.6); // v4 -> v2
    b.add_weighted_edge(1, 2, 0.4); // v2 -> v3
    b.add_weighted_edge(1, 0, 0.1); // v2 -> v1
    b.build_prob().unwrap()
}

#[test]
fn example1_typical_cascade_is_the_exact_optimum() {
    let pg = example1();
    // Exact optimum over all 2^5 candidate sets by brute force.
    let mut best = (f64::INFINITY, Vec::new());
    for mask in 0u32..32 {
        let candidate: Vec<NodeId> = (0..5).filter(|&v| mask & (1 << v) != 0).collect();
        let cost = exact_expected_cost_bruteforce(&pg, 4, &candidate);
        if cost < best.0 {
            best = (cost, candidate);
        }
    }
    // Sampled pipeline with a healthy sample count.
    let tc = typical_cascade(
        &pg,
        4,
        &TypicalCascadeConfig {
            median_samples: 4000,
            cost_samples: 0,
            ..TypicalCascadeConfig::default()
        },
    );
    assert_eq!(tc.median, best.1, "sampled median = exact optimum");
    let true_cost = exact_expected_cost_bruteforce(&pg, 4, &tc.median);
    assert!(
        (tc.training_cost - true_cost).abs() < 0.03,
        "empirical {} vs exact {}",
        tc.training_cost,
        true_cost
    );
}

#[test]
fn theorem2_more_samples_do_not_degrade_the_median() {
    // The multiplicative guarantee implies the cost of the median found
    // with ℓ samples approaches the optimum as ℓ grows; in particular the
    // true cost at ℓ = 64 should already be within a modest factor of the
    // cost at ℓ = 2048.
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(1);
    let pg = ProbGraph::fixed(gen::gnm(60, 240, &mut rng), 0.25).unwrap();
    let eval =
        |median: &[NodeId]| spheres_of_influence::core::expected_cost(&pg, 0, median, 20_000, 777);
    let small = typical_cascade(
        &pg,
        0,
        &TypicalCascadeConfig {
            median_samples: 64,
            cost_samples: 0,
            seed: 10,
            ..TypicalCascadeConfig::default()
        },
    );
    let large = typical_cascade(
        &pg,
        0,
        &TypicalCascadeConfig {
            median_samples: 2048,
            cost_samples: 0,
            seed: 11,
            ..TypicalCascadeConfig::default()
        },
    );
    let (c_small, c_large) = (eval(&small.median), eval(&large.median));
    assert!(
        c_small <= c_large * 1.25 + 0.02,
        "64-sample median cost {c_small} vs 2048-sample {c_large}"
    );
}

#[test]
fn full_pipeline_on_a_benchmark_dataset() {
    use spheres_of_influence::datasets::{build, Network, ProbSource};
    // Nethept-syn-W: subcritical with heterogeneous spheres (hubs have
    // spheres of tens of nodes, leaves singletons) — the regime where both
    // seed quality and sphere coverage carry stable signal. Supercritical
    // `-F` configs saturate at moderate k (any seed set reaches the giant
    // core), so methods tie there — the paper's saturation phenomenon.
    let data = build(Network::NethepSyn, ProbSource::WeightedCascade, 0.5, 3);
    let n = data.graph.num_nodes();
    assert!(n >= 100);

    // Index -> all spheres -> both influence-maximization methods.
    let index = CascadeIndex::build(
        &data.graph,
        IndexConfig {
            num_worlds: 128,
            seed: 4,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
    assert_eq!(spheres.len(), n);
    for s in &spheres {
        assert!(s.median.contains(&s.node), "sphere contains its source");
        assert!((0.0..=1.0).contains(&s.training_cost));
    }

    let k = 25;
    let std_run = infmax_std(&index, k, GreedyMode::Celf);
    let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
    let tc_run = infmax_tc(&cascades, k, 0);
    assert_eq!(std_run.seeds.len(), k);
    assert_eq!(tc_run.seeds.len(), k);

    // Judge both with the independent estimator: the theoretically optimal
    // greedy must beat arbitrary seeds, and InfMax_TC must land in the same
    // band (the paper's claim is that TC *catches up and overtakes* as k
    // grows; at small scale we assert the band, figure6 shows the curves).
    let sigma_std = estimate_spread(&data.graph, &std_run.seeds, 3000, 5);
    let sigma_tc = estimate_spread(&data.graph, &tc_run.seeds, 3000, 5);
    let random: Vec<NodeId> = (0..k as NodeId).map(|i| i * 7 % n as NodeId).collect();
    let sigma_rand = estimate_spread(&data.graph, &random, 3000, 5);
    assert!(
        sigma_std > sigma_rand,
        "std {sigma_std} vs random {sigma_rand}"
    );
    assert!(
        sigma_tc > sigma_rand,
        "tc {sigma_tc} vs random {sigma_rand}"
    );
    assert!(
        sigma_tc > 0.5 * sigma_std,
        "tc {sigma_tc} far below std {sigma_std}"
    );
}

#[test]
fn ris_and_greedy_agree_on_good_seeds() {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(6);
    let pg = ProbGraph::fixed(gen::barabasi_albert(150, 3, true, &mut rng), 0.25).unwrap();
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 200,
            seed: 7,
            ..IndexConfig::default()
        },
    );
    let greedy = infmax_std(&index, 5, GreedyMode::Celf);
    let ris = infmax_ris(&pg, 5, 8000, 8);
    let sigma_greedy = estimate_spread(&pg, &greedy.seeds, 5000, 9);
    let sigma_ris = estimate_spread(&pg, &ris.seeds, 5000, 9);
    assert!(
        (sigma_greedy - sigma_ris).abs() < 0.15 * sigma_greedy,
        "greedy {sigma_greedy} vs ris {sigma_ris}"
    );
}

#[test]
fn learnt_dataset_pipeline_reaches_influence_maximization() {
    use spheres_of_influence::datasets::{build, Network, ProbSource};
    use spheres_of_influence::problog::eval;
    let data = build(Network::DiggSyn, ProbSource::Saito, 0.05, 9);
    // The learner recovered real signal...
    let truth = data.ground_truth.as_ref().unwrap();
    assert!(truth.len() >= data.graph.num_edges());
    // ...and the learnt graph supports the full downstream pipeline.
    let index = CascadeIndex::build(
        &data.graph,
        IndexConfig {
            num_worlds: 64,
            seed: 10,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 2);
    let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
    let run = infmax_tc(&cascades, 10, 0);
    assert_eq!(run.seeds.len(), 10);
    assert!(run.coverage_curve.windows(2).all(|w| w[1] >= w[0]));
    // eval metrics are well-formed on this real pair.
    let zeros = vec![0.0; truth.len()];
    assert!(eval::mae(&zeros, truth) > 0.0);
}

#[test]
fn graph_io_roundtrips_a_dataset() {
    use spheres_of_influence::datasets::{build, Network, ProbSource};
    use spheres_of_influence::graph::io;
    let data = build(Network::EpinionsSyn, ProbSource::WeightedCascade, 0.03, 12);
    let mut buf = Vec::new();
    io::write_prob_graph(&data.graph, &mut buf).unwrap();
    match io::read_graph(&buf[..]).unwrap() {
        io::ParsedGraph::Probabilistic(back) => {
            assert_eq!(back.num_nodes(), data.graph.num_nodes());
            assert_eq!(back.num_edges(), data.graph.num_edges());
            // Spot-check probabilities survive the text roundtrip.
            for u in back.graph().nodes().step_by(17) {
                for (v, p) in back.out_arcs(u) {
                    let orig = data.graph.edge_prob_between(u, v).unwrap();
                    assert!((p - orig).abs() < 1e-9);
                }
            }
        }
        _ => panic!("expected probabilistic graph"),
    }
}
