//! Property-style integration tests for the paper's qualitative claims,
//! exercised across crate boundaries.

use spheres_of_influence::core::all_typical_cascades;
use spheres_of_influence::jaccard::median::MedianConfig;
use spheres_of_influence::prelude::*;

/// §5 / §6.4 (stability analysis): the expected cost of a seed set's
/// typical cascade tends to decrease as the seed set grows — cascading
/// becomes more predictable with more seeds.
#[test]
fn seed_set_cost_tends_to_decrease_with_size() {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
    let pg = ProbGraph::fixed(gen::barabasi_albert(200, 3, true, &mut rng), 0.3).unwrap();
    let config = TypicalCascadeConfig {
        median_samples: 400,
        cost_samples: 400,
        ..TypicalCascadeConfig::default()
    };
    let seeds: Vec<NodeId> = (0..32).map(|i| i * 6).collect();
    // Average the single-seed cost over several sources: an individual
    // node can be degenerate (a sink's cascade is always {v}, cost 0).
    let c1: f64 = seeds
        .iter()
        .take(8)
        .map(|&s| typical_cascade_of_set(&pg, &[s], &config).expected_cost)
        .sum::<f64>()
        / 8.0;
    let c8 = typical_cascade_of_set(&pg, &seeds[..8], &config).expected_cost;
    let c32 = typical_cascade_of_set(&pg, &seeds, &config).expected_cost;
    assert!(
        c32 < c1 + 0.05,
        "cost should not grow substantially: 1 seed (avg) {c1:.3}, 32 seeds {c32:.3}"
    );
    assert!(c32 <= c8 + 0.05, "8 seeds {c8:.3} -> 32 seeds {c32:.3}");
}

/// §6.3 (Figure 5): larger typical cascades are more reliable — among
/// nodes with non-trivial spheres, big spheres should not have the worst
/// costs.
#[test]
fn larger_spheres_are_not_less_reliable() {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
    let pg = ProbGraph::fixed(gen::barabasi_albert(300, 4, true, &mut rng), 0.2).unwrap();
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 200,
            seed: 5,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
    // Bucket: singleton spheres vs spheres of size >= 20.
    let big: Vec<f64> = spheres
        .iter()
        .filter(|s| s.median.len() >= 20)
        .map(|s| s.training_cost)
        .collect();
    let mid: Vec<f64> = spheres
        .iter()
        .filter(|s| (2..20).contains(&s.median.len()))
        .map(|s| s.training_cost)
        .collect();
    if big.len() >= 5 && mid.len() >= 5 {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&big) <= mean(&mid) + 0.1,
            "big spheres ({} nodes) mean cost {:.3} vs mid {:.3}",
            big.len(),
            mean(&big),
            mean(&mid)
        );
    }
}

/// The spread estimates used by both methods agree with the exact
/// closed form on graphs where one exists.
#[test]
fn spread_oracles_agree_with_closed_form() {
    // Star: sigma({hub}) = 1 + sum p_i.
    let mut b = GraphBuilder::new(11);
    for leaf in 1..11 {
        b.add_weighted_edge(0, leaf, leaf as f64 / 20.0);
    }
    let pg = b.build_prob().unwrap();
    let closed_form = 1.0 + (1..11).map(|l| l as f64 / 20.0).sum::<f64>();
    let mc = estimate_spread(&pg, &[0], 100_000, 1);
    assert!((mc - closed_form).abs() < 0.05, "mc {mc} vs {closed_form}");

    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 20_000,
            seed: 2,
            ..IndexConfig::default()
        },
    );
    let mut oracle = SpreadOracle::new(&index);
    let via_index = oracle.spread_of(&[0]);
    assert!(
        (via_index - closed_form).abs() < 0.08,
        "index {via_index} vs {closed_form}"
    );
}

/// On arbitrary random graphs: every sphere contains its source, has
/// bounded cost, and the reported training cost is reproducible.
///
/// Property-style test over 16 deterministically derived random cases
/// (formerly proptest; parameters are now drawn from a seeded stream so
/// the case list is identical on every run and machine).
#[test]
fn spheres_are_well_formed_on_random_graphs() {
    use soi_util::rng::{Rng, Xoshiro256pp};
    for case in 0..16u64 {
        let mut param = Xoshiro256pp::from_stream(0xC0FFEE, case);
        let n = param.random_range(5usize..40);
        let density = param.random_range(1usize..5);
        let p = 0.05 + 0.85 * param.random::<f64>();
        let seed = param.random_range(0u64..1000);

        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = (n * density).min(n * (n - 1));
        let pg = ProbGraph::fixed(gen::gnm(n, m, &mut rng), p).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 24,
                seed,
                ..IndexConfig::default()
            },
        );
        let spheres = all_typical_cascades(&index, &MedianConfig::default(), 1);
        assert_eq!(spheres.len(), n, "case {case}");
        for s in &spheres {
            assert!(s.median.contains(&s.node), "case {case}");
            assert!((0.0..=1.0).contains(&s.training_cost), "case {case}");
            assert!(s.median.len() <= n, "case {case}");
            // Canonical form.
            assert!(s.median.windows(2).all(|w| w[0] < w[1]), "case {case}");
        }
    }
}

/// InfMax_TC coverage never exceeds the universe and is monotone in k.
#[test]
fn tc_coverage_is_sane_on_random_spheres() {
    use soi_util::rng::{Rng, Xoshiro256pp};
    for case in 0..16u64 {
        let mut param = Xoshiro256pp::from_stream(0xBEEF, case);
        let n = param.random_range(2usize..30);
        let seed = param.random_range(0u64..500);

        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let cascades: Vec<Vec<NodeId>> = (0..n)
            .map(|v| {
                let mut c: Vec<NodeId> =
                    (0..n as NodeId).filter(|_| rng.random_bool(0.2)).collect();
                if !c.contains(&(v as NodeId)) {
                    c.push(v as NodeId);
                }
                c.sort_unstable();
                c
            })
            .collect();
        let r = infmax_tc(&cascades, n, 0);
        assert!(
            r.coverage_curve.windows(2).all(|w| w[1] >= w[0] - 1e-12),
            "case {case}"
        );
        assert!(
            *r.coverage_curve.last().unwrap() <= n as f64 + 1e-9,
            "case {case}"
        );
        // Greedy's first pick is the largest sphere.
        let max_sphere = cascades.iter().map(|c| c.len()).max().unwrap();
        assert!(
            (r.coverage_curve[0] - max_sphere as f64).abs() < 1e-9,
            "case {case}"
        );
    }
}
