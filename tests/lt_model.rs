//! Integration of the Linear Threshold model with the typical-cascade
//! pipeline: LT live-edge worlds feed the same cascade index, Jaccard
//! medians, and `InfMax_TC` as IC does.

use soi_util::rng::Xoshiro256pp;
use spheres_of_influence::graph::{gen, DiGraph, Reachability};
use spheres_of_influence::index::{CascadeIndex, IndexConfig};
use spheres_of_influence::influence::infmax_tc;
use spheres_of_influence::jaccard::jaccard_median;
use spheres_of_influence::sampling::lt::{simulate_lt, LtGraph, LtWorldSampler};
use spheres_of_influence::sampling::world::world_rng;

fn lt_worlds(lt: &LtGraph, count: usize, seed: u64) -> Vec<DiGraph> {
    let mut sampler = LtWorldSampler::new();
    (0..count)
        .map(|i| sampler.sample(lt, &mut world_rng(seed, i)))
        .collect()
}

#[test]
fn lt_worlds_feed_the_cascade_index() {
    let mut rng = Xoshiro256pp::seed_from_u64(6);
    let topo = gen::gnm(40, 200, &mut rng);
    let lt = LtGraph::uniform(&topo);
    let worlds = lt_worlds(&lt, 32, 7);
    let index = CascadeIndex::build_from_worlds(
        40,
        worlds.iter(),
        IndexConfig {
            num_worlds: 32,
            seed: 7,
            ..Default::default()
        },
    );
    assert_eq!(index.num_worlds(), 32);
    // Index cascades match direct reachability on the same worlds.
    let mut q = index.query();
    let mut got = Vec::new();
    let mut reach = Reachability::new(40);
    let mut want = Vec::new();
    for (i, w) in worlds.iter().enumerate() {
        for v in (0..40u32).step_by(7) {
            index.cascade(v, i, &mut q, &mut got);
            got.sort_unstable();
            reach.reachable_from(w, v, &mut want);
            want.sort_unstable();
            assert_eq!(got, want, "world {i} node {v}");
        }
    }
}

#[test]
fn lt_typical_cascades_and_infmax_tc() {
    let mut rng = Xoshiro256pp::seed_from_u64(8);
    let topo = gen::barabasi_albert(120, 3, true, &mut rng);
    let lt = LtGraph::uniform(&topo);
    let worlds = lt_worlds(&lt, 64, 9);
    let index = CascadeIndex::build_from_worlds(120, worlds.iter(), IndexConfig::default());

    // Typical cascade per node over LT worlds.
    let spheres: Vec<Vec<u32>> = (0..120u32)
        .map(|v| jaccard_median(&index.cascades_of(v)).median)
        .collect();
    for (v, s) in spheres.iter().enumerate() {
        assert!(s.contains(&(v as u32)), "sphere of {v} contains itself");
    }

    // Max-cover seeding over the LT spheres.
    let run = infmax_tc(&spheres, 10, 0);
    assert_eq!(run.seeds.len(), 10);
    assert!(run.coverage_curve.windows(2).all(|w| w[1] >= w[0]));

    // The selected seeds spread under direct LT simulation at least as
    // well as a fixed arbitrary set.
    let mut rng = Xoshiro256pp::seed_from_u64(10);
    let mean_spread = |seeds: &[u32], rng: &mut Xoshiro256pp| {
        let rounds = 2000;
        (0..rounds)
            .map(|_| simulate_lt(&lt, seeds, rng).len())
            .sum::<usize>() as f64
            / rounds as f64
    };
    let tc = mean_spread(&run.seeds, &mut rng);
    let arbitrary: Vec<u32> = (110..120).collect();
    let base = mean_spread(&arbitrary, &mut rng);
    assert!(tc > base, "tc {tc} vs arbitrary {base}");
}
