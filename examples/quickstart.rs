//! Quickstart: compute a sphere of influence and use it.
//!
//! Builds a small probabilistic social graph, computes the typical cascade
//! (sphere of influence) of a few users, reports their stability, and runs
//! both influence-maximization methods side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use spheres_of_influence::core::all_typical_cascades;
use spheres_of_influence::jaccard::median::MedianConfig;
use spheres_of_influence::prelude::*;

fn main() {
    // --- 1. A probabilistic graph -------------------------------------
    // 300-node preferential-attachment network with weighted-cascade
    // probabilities (p(u,v) = 1/inDeg(v)) — one of the paper's standard
    // benchmark assignments.
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(42);
    let topology = gen::barabasi_albert(300, 3, true, &mut rng);
    let graph = ProbGraph::weighted_cascade(topology);
    println!(
        "graph: {} nodes, {} arcs",
        graph.num_nodes(),
        graph.num_edges()
    );

    // --- 2. One node's sphere of influence -----------------------------
    let config = TypicalCascadeConfig {
        median_samples: 500,
        cost_samples: 500,
        ..TypicalCascadeConfig::default()
    };
    let sphere = typical_cascade(&graph, 0, &config);
    println!(
        "node 0: sphere of influence has {} nodes, expected cost {:.3} \
         (lower = more reliable)",
        sphere.size(),
        sphere.expected_cost
    );

    // --- 3. All spheres at once via the cascade index (Algorithm 2) ----
    let index = CascadeIndex::build(
        &graph,
        IndexConfig {
            num_worlds: 256,
            seed: 7,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
    let biggest = spheres.iter().max_by_key(|s| s.median.len()).unwrap();
    println!(
        "largest sphere: node {} covering {} nodes (training cost {:.3})",
        biggest.node,
        biggest.median.len(),
        biggest.training_cost
    );

    // --- 4. Influence maximization, both ways --------------------------
    let k = 20;
    let std_run = infmax_std(&index, k, GreedyMode::Celf);
    let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
    let tc_run = infmax_tc(&cascades, k, 0);

    // Judge both seed sets with an independent Monte-Carlo estimator.
    let sigma_std = estimate_spread(&graph, &std_run.seeds, 2000, 99);
    let sigma_tc = estimate_spread(&graph, &tc_run.seeds, 2000, 99);
    println!("expected spread at k = {k}: InfMax_std {sigma_std:.1}, InfMax_TC {sigma_tc:.1}");

    // --- 5. Stability of the two seed sets (Figure 8's comparison) -----
    let cost_std = expected_cost_of_seed_set(
        &graph,
        &std_run.seeds,
        &typical_cascade_of_set(&graph, &std_run.seeds, &config).median,
        500,
        1,
    );
    let cost_tc = expected_cost_of_seed_set(
        &graph,
        &tc_run.seeds,
        &typical_cascade_of_set(&graph, &tc_run.seeds, &config).median,
        500,
        1,
    );
    println!(
        "seed-set stability (expected cost): InfMax_std {cost_std:.3}, InfMax_TC {cost_tc:.3}"
    );
}
