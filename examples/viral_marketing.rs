//! Viral marketing with budgets and market segments.
//!
//! The paper's §8 sketches extensions its precomputed spheres of influence
//! answer directly: campaigns where market segments have different values,
//! and campaigns where seeding different users has different costs. This
//! example runs both on one network — the point being that the *same*
//! sphere-of-influence index answers all three campaign designs without
//! recomputation.
//!
//! Run with: `cargo run --release --example viral_marketing`

use spheres_of_influence::core::all_typical_cascades;
use spheres_of_influence::jaccard::median::MedianConfig;
use spheres_of_influence::prelude::*;

fn main() {
    use soi_util::rng::Rng;
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(2024);

    // A two-community network: nodes 0..200 are "teens", 200..400 are
    // "professionals"; cross-community arcs are rarer.
    let mut b = GraphBuilder::new(400);
    for _ in 0..2400 {
        let (u, v) = if rng.random_bool(0.85) {
            // intra-community
            let base = if rng.random_bool(0.5) { 0 } else { 200 };
            (
                base + rng.random_range(0..200u32),
                base + rng.random_range(0..200u32),
            )
        } else {
            (rng.random_range(0..400u32), rng.random_range(0..400u32))
        };
        if u != v {
            b.add_weighted_edge(u, v, 0.05 + 0.3 * rng.random::<f64>());
        }
    }
    let graph = b.build_prob().unwrap();

    // Precompute all spheres of influence once.
    let index = CascadeIndex::build(
        &graph,
        IndexConfig {
            num_worlds: 256,
            seed: 1,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
    let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();

    // --- Campaign 1: plain reach --------------------------------------
    let k = 15;
    let plain = infmax_tc(&cascades, k, 0);
    println!(
        "campaign 1 (reach):        {} seeds cover {:.0} users",
        plain.seeds.len(),
        plain.coverage_curve.last().unwrap()
    );

    // --- Campaign 2: professionals are worth 5x ------------------------
    let mut values = vec![1.0; 400];
    for v in values.iter_mut().skip(200) {
        *v = 5.0;
    }
    let weighted = infmax_tc_weighted(&cascades, &values, k);
    let pro_seeds = weighted.seeds.iter().filter(|&&s| s >= 200).count();
    println!(
        "campaign 2 (5x segment):   {} of {} seeds target the professional \
         community, value {:.0}",
        pro_seeds,
        weighted.seeds.len(),
        weighted.coverage_curve.last().unwrap()
    );

    // --- Campaign 3: influencers charge by their reach -----------------
    // Cost of seeding u = 1 + |sphere(u)| / 4 (big influencers are pricey).
    let costs: Vec<f64> = cascades
        .iter()
        .map(|c| 1.0 + c.len() as f64 / 4.0)
        .collect();
    let budget = 30.0;
    let budgeted = infmax_tc_budgeted(&cascades, &costs, budget);
    let spent: f64 = budgeted.seeds.iter().map(|&s| costs[s as usize]).sum();
    println!(
        "campaign 3 (budget {budget}):   {} seeds, spent {:.1}, cover {:.0} users",
        budgeted.seeds.len(),
        spent,
        budgeted.coverage_curve.last().unwrap_or(&0.0)
    );

    // Independent check: what do these seed sets actually spread to?
    for (name, seeds) in [
        ("reach", &plain.seeds),
        ("segment", &weighted.seeds),
        ("budget", &budgeted.seeds),
    ] {
        let sigma = estimate_spread(&graph, seeds, 2000, 7);
        println!("  verified spread of {name} campaign: {sigma:.1}");
    }
}
