//! Learning influence probabilities from an activity log (§6.2).
//!
//! The paper's learnt datasets pair a social graph with a log of user
//! actions. This example plants ground-truth influence probabilities,
//! simulates a log of cascades, then recovers the probabilities with both
//! learners — Saito et al.'s EM and Goyal et al.'s frequentist estimator —
//! and reports how faithfully each recovers the truth and how the choice
//! changes the downstream spheres of influence.
//!
//! Run with: `cargo run --release --example learn_probabilities`

use spheres_of_influence::prelude::*;
use spheres_of_influence::problog::{
    assign, eval, generate::LogGenConfig, generate_log, learn_goyal, learn_saito, to_prob_graph,
    SaitoConfig,
};

fn main() {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(5);

    // Ground truth: heterogeneous probabilities on a social graph.
    let topology = gen::barabasi_albert(400, 4, true, &mut rng);
    let truth = assign::uniform_random(topology, 0.05, 0.6, &mut rng).unwrap();
    println!(
        "ground truth: {} nodes, {} arcs, probabilities in [0.05, 0.6]",
        truth.num_nodes(),
        truth.num_edges()
    );

    // Simulate the observational data: 2000 items cascading over the net.
    let log = generate_log(
        &truth,
        &LogGenConfig {
            num_items: 2000,
            seeds_per_item: 2,
            seed: 17,
        },
    );
    println!(
        "simulated log: {} items, {} actions",
        log.num_items(),
        log.num_actions()
    );

    // Learn with both methods (they see only the topology and the log).
    let saito = learn_saito(truth.graph(), &log, &SaitoConfig::default());
    let goyal = learn_goyal(truth.graph(), &log, Some(1));

    println!("\nrecovery quality (vs planted truth):");
    for (name, learned) in [("saito-EM  ", &saito), ("goyal-freq", &goyal)] {
        println!(
            "  {name}: MAE {:.4}  RMSE {:.4}  Pearson r {:.3}",
            eval::mae(learned, truth.probs()),
            eval::rmse(learned, truth.probs()),
            eval::pearson(learned, truth.probs()),
        );
    }

    // Downstream effect: sphere-of-influence sizes under each learner.
    let config = TypicalCascadeConfig {
        median_samples: 300,
        cost_samples: 0,
        ..TypicalCascadeConfig::default()
    };
    let truth_sphere = typical_cascade(&truth, 0, &config);
    for (name, learned) in [("saito", &saito), ("goyal", &goyal)] {
        let pg = to_prob_graph(truth.graph(), learned, 1e-4).unwrap();
        let sphere = typical_cascade(&pg, 0, &config);
        println!(
            "sphere of node 0 under {name}-learnt graph: {} nodes \
             (truth: {})",
            sphere.size(),
            truth_sphere.size()
        );
    }
    println!(
        "\n(§6.3 of the paper: the probability-assignment method strongly \
         shapes typical-cascade sizes — Figure 3 / Table 2.)"
    );
}
