//! Spheres of influence under the Linear Threshold model.
//!
//! The typical-cascade machinery is propagation-model-agnostic: any model
//! with a live-edge equivalence plugs into the same cascade index. This
//! example runs the full pipeline — worlds, index, spheres, max-cover
//! seeding — under LT instead of IC, and validates the seeds with direct
//! LT simulation.
//!
//! Run with: `cargo run --release --example linear_threshold`

use spheres_of_influence::core::SphereCatalog;
use spheres_of_influence::index::{CascadeIndex, IndexConfig};
use spheres_of_influence::jaccard::jaccard_median;
use spheres_of_influence::prelude::*;
use spheres_of_influence::sampling::lt::{simulate_lt, LtGraph, LtWorldSampler};
use spheres_of_influence::sampling::world::world_rng;

fn main() {
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(99);

    // An organization's communication graph; LT weights are the standard
    // uniform 1/inDeg (each colleague contributes equally to persuasion).
    let topo = gen::barabasi_albert(500, 3, false, &mut rng);
    let lt = LtGraph::uniform(&topo);
    println!(
        "LT network: {} nodes, {} weighted arcs",
        lt.num_nodes(),
        lt.graph().num_edges()
    );

    // 1. Sample live-edge worlds (Kempe et al.'s equivalence: at most one
    //    in-arc per node, picked with probability = its weight).
    let ell = 256;
    let mut sampler = LtWorldSampler::new();
    let worlds: Vec<DiGraph> = (0..ell)
        .map(|i| sampler.sample(&lt, &mut world_rng(5, i)))
        .collect();

    // 2. Same cascade index as IC (Algorithm 1).
    let index = CascadeIndex::build_from_worlds(
        lt.num_nodes(),
        worlds.iter(),
        IndexConfig {
            num_worlds: ell,
            seed: 5,
            ..IndexConfig::default()
        },
    );
    println!(
        "index: {:.0} SCCs/world on average, {:.1} KiB",
        index.mean_comps(),
        index.memory_bytes() as f64 / 1024.0
    );

    // 3. Typical cascade per node (Algorithm 2), into a catalog.
    let spheres: Vec<_> = (0..lt.num_nodes() as NodeId)
        .map(|v| {
            let fit = jaccard_median(&index.cascades_of(v));
            spheres_of_influence::core::engine::NodeTypicalCascade {
                node: v,
                median: fit.median,
                training_cost: fit.cost,
            }
        })
        .collect();
    let catalog = SphereCatalog::new(spheres);
    let top = catalog.top_by_reach(3);
    println!("\ntop LT influencers by sphere size:");
    for s in &top {
        println!(
            "  node {:>3}: sphere {:>3} nodes (cost {:.3})",
            s.node,
            s.median.len(),
            s.training_cost
        );
    }

    // 4. Max-cover seeding over LT spheres (Algorithm 3).
    let k = 10;
    let campaign = infmax_tc(&catalog.cascade_sets(), k, 0);
    println!(
        "\ncampaign: {} seeds covering {:.0} nodes' typical spheres",
        campaign.seeds.len(),
        campaign.coverage_curve.last().unwrap()
    );

    // 5. Validate with direct LT simulation (thresholds, no live edges).
    let mut sim_rng = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
    let rounds = 3000;
    let mean = |seeds: &[NodeId], rng: &mut soi_util::rng::Xoshiro256pp| {
        (0..rounds)
            .map(|_| simulate_lt(&lt, seeds, rng).len())
            .sum::<usize>() as f64
            / rounds as f64
    };
    let tc_spread = mean(&campaign.seeds, &mut sim_rng);
    let random: Vec<NodeId> = (100..100 + k as NodeId).collect();
    let random_spread = mean(&random, &mut sim_rng);
    println!(
        "direct LT simulation: campaign spreads to {tc_spread:.1} nodes, \
         an arbitrary seed set to {random_spread:.1}"
    );
}
