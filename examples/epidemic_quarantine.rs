//! Epidemics: "given an ebola case, which other individuals should we
//! quarantine?" (§1 of the paper).
//!
//! A contact network with transmission probabilities is exactly a
//! probabilistic graph, and the sphere of influence of an index case is
//! the set of people a *typical* outbreak from that case infects — a
//! principled quarantine list. The expected cost tells public health how
//! reliable that list is: a high cost means outbreaks from this case are
//! erratic and a wider net is warranted.
//!
//! Run with: `cargo run --release --example epidemic_quarantine`

use spheres_of_influence::prelude::*;

fn main() {
    use soi_util::rng::Rng;
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(11);

    // Contact network: households (cliques of 3-5, high transmission)
    // loosely connected through workplaces (random arcs, low transmission).
    let n = 500;
    let mut b = GraphBuilder::new(n as u32 as usize);
    let mut node = 0u32;
    let mut households = Vec::new();
    while (node as usize) < n {
        let size = 3 + rng.random_range(0..3u32);
        let members: Vec<u32> = (node..(node + size).min(n as u32)).collect();
        for &a in &members {
            for &bb in &members {
                if a != bb {
                    b.add_weighted_edge(a, bb, 0.6); // household transmission
                }
            }
        }
        households.push(members.clone());
        node += size;
    }
    for _ in 0..n {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_undirected_edge(u, v, 0.08); // workplace contact
        }
    }
    let graph = b.build_prob().unwrap();
    println!(
        "contact network: {} people, {} transmission links, {} households",
        graph.num_nodes(),
        graph.num_edges(),
        households.len()
    );

    // Index case: patient 0.
    let config = TypicalCascadeConfig {
        median_samples: 1000,
        cost_samples: 1000,
        ..TypicalCascadeConfig::default()
    };
    let outbreak = typical_cascade(&graph, 0, &config);
    println!(
        "\npatient 0's typical outbreak infects {} people (expected cost {:.3})",
        outbreak.size(),
        outbreak.expected_cost
    );
    println!("quarantine list: {:?}", outbreak.median);

    // Household members should dominate the list.
    let own_household = &households[0];
    let in_list = own_household
        .iter()
        .filter(|m| outbreak.median.contains(m))
        .count();
    println!(
        "{} of {} household members of patient 0 are on the list",
        in_list,
        own_household.len()
    );

    // A multi-case outbreak: three index cases at once.
    let cluster = typical_cascade_of_set(&graph, &[0, 100, 200], &config);
    println!(
        "\n3-case cluster: typical outbreak {} people, expected cost {:.3}",
        cluster.size(),
        cluster.expected_cost
    );
    println!(
        "(paper §5: cost tends to drop as the seed set grows — the process \
         becomes more predictable)"
    );

    // Compare against expected spread: the quarantine list is NOT just
    // "everyone reachable" — it is the stable core.
    let sigma = estimate_spread(&graph, &[0], 4000, 3);
    println!(
        "\nmean outbreak size from patient 0: {sigma:.1}; typical outbreak: {} \
         (the sphere is the reliable core, not the mean of sizes)",
        outbreak.size()
    );
}
