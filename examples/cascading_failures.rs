//! Failure cascades: "given a node failure, which is the typical cascade
//! we can expect?" (§1 — corporate workflows, computer and financial
//! networks).
//!
//! Models a layered service architecture where a failing dependency takes
//! down its dependents with a per-link probability. The sphere of
//! influence of each service ranks services by *blast radius*, and the
//! expected cost separates services whose failures are predictable
//! (contain them with targeted runbooks) from erratic ones (need broad
//! defenses).
//!
//! Run with: `cargo run --release --example cascading_failures`

use spheres_of_influence::core::all_typical_cascades;
use spheres_of_influence::jaccard::median::MedianConfig;
use spheres_of_influence::prelude::*;

fn main() {
    use soi_util::rng::Rng;
    let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(31);

    // 4 layers of services: databases (0..10) <- caches (10..40)
    // <- backends (40..140) <- frontends (140..340). An arc A -> B means
    // "A failing can take B down".
    let layers: [(u32, u32); 4] = [(0, 10), (10, 40), (40, 140), (140, 340)];
    let mut b = GraphBuilder::new(340);
    for w in 0..3 {
        let (lo_a, hi_a) = layers[w];
        let (lo_b, hi_b) = layers[w + 1];
        for dependent in lo_b..hi_b {
            // Each service depends on 1-3 services one layer down.
            let deps = 1 + rng.random_range(0..3u32);
            for _ in 0..deps {
                let dep = lo_a + rng.random_range(0..(hi_a - lo_a));
                // Deeper infrastructure propagates failures harder.
                let p = match w {
                    0 => 0.8, // db -> cache
                    1 => 0.5, // cache -> backend
                    _ => 0.3, // backend -> frontend
                };
                b.add_weighted_edge(dep, dependent, p);
            }
        }
    }
    let graph = b.build_prob().unwrap();
    println!(
        "service graph: {} services, {} failure-propagation links",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Blast radius of every service (Algorithm 2).
    let index = CascadeIndex::build(
        &graph,
        IndexConfig {
            num_worlds: 512,
            seed: 3,
            ..IndexConfig::default()
        },
    );
    let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);

    // Rank by blast radius.
    let mut ranked: Vec<_> = spheres.iter().collect();
    ranked.sort_by(|a, b| {
        b.median
            .len()
            .cmp(&a.median.len())
            .then(a.node.cmp(&b.node))
    });
    println!("\ntop-5 blast radii (typical failure cascade):");
    for s in ranked.iter().take(5) {
        println!(
            "  service {:>3}: takes down {:>3} services typically \
             (cost {:.3})",
            s.node,
            s.median.len() - 1,
            s.training_cost
        );
    }

    // Databases should dominate the top ranks.
    let top10_dbs = ranked.iter().take(10).filter(|s| s.node < 10).count();
    println!("\n{top10_dbs} of the top-10 blast radii are databases (layer 0)");

    // Reliability split: among services with blast radius >= 5, compare
    // predictable vs erratic failure modes via expected cost.
    let mut risky: Vec<_> = spheres.iter().filter(|s| s.median.len() >= 5).collect();
    risky.sort_by(|a, b| a.training_cost.total_cmp(&b.training_cost));
    if let (Some(stable), Some(erratic)) = (risky.first(), risky.last()) {
        println!(
            "\nmost predictable big failure:  service {} (cost {:.3}) — \
             targeted runbook works",
            stable.node, stable.training_cost
        );
        println!(
            "least predictable big failure: service {} (cost {:.3}) — \
             cascades vary run to run",
            erratic.node, erratic.training_cost
        );
    }

    // Sanity: verify one sphere against direct Monte-Carlo.
    let probe = ranked[0].node;
    let direct = typical_cascade(
        &graph,
        probe,
        &TypicalCascadeConfig {
            median_samples: 512,
            cost_samples: 512,
            ..TypicalCascadeConfig::default()
        },
    );
    println!(
        "\ncross-check service {probe}: index pipeline {} nodes, direct \
         sampling {} nodes",
        ranked[0].median.len(),
        direct.size()
    );
}
