//! # Spheres of Influence
//!
//! A from-scratch Rust implementation of *“Spheres of Influence for More
//! Effective Viral Marketing”* (Mehmood, Bonchi, García-Soriano — SIGMOD
//! 2016): typical cascades over probabilistic graphs, the sampling +
//! Jaccard-median solver with its cascade index, and the `InfMax_TC`
//! approach to influence maximization, together with every substrate the
//! paper depends on.
//!
//! ## Quick start
//!
//! ```
//! use spheres_of_influence::prelude::*;
//!
//! // A probabilistic graph: a hub pointing at five friends, p = 0.8 each.
//! let mut b = GraphBuilder::new(6);
//! for leaf in 1..6 {
//!     b.add_weighted_edge(0, leaf, 0.8);
//! }
//! let graph = b.build_prob().unwrap();
//!
//! // The hub's sphere of influence: the set closest (in expected Jaccard
//! // distance) to all its possible cascades.
//! let sphere = typical_cascade(&graph, 0, &TypicalCascadeConfig::default());
//! assert_eq!(sphere.median, vec![0, 1, 2, 3, 4, 5]);
//! assert!(sphere.expected_cost < 0.35); // stability: lower = more reliable
//! ```
//!
//! ## Crate map
//!
//! | module | contents | paper section |
//! |---|---|---|
//! | [`graph`] | CSR digraphs, probabilistic graphs, SCC, transitive reduction, generators | §2.1, §4 |
//! | [`sampling`] | possible worlds, cascade sampling, IC simulation, spread | §2–3 |
//! | [`jaccard`] | Jaccard distance/median, cost estimation, sample bounds | §3, Thm 2 |
//! | [`index`] | the cascade index (Algorithm 1) | §4 |
//! | [`core`] | typical cascades (Algorithm 2), stability | §2, §5 |
//! | [`problog`] | Saito-EM and Goyal learners, action logs, assignment models | §6.2 |
//! | [`influence`] | `InfMax_std` (greedy/CELF), `InfMax_TC` (Algorithm 3), RIS, saturation | §5, §6.4 |
//! | [`datasets`] | the 12 synthetic benchmark configurations | §6.1 |
//! | [`obs`] | spans, metrics, event log, run reports (see `docs/OBSERVABILITY.md`) | §6 instrumentation |

pub use soi_core as core;
pub use soi_datasets as datasets;
pub use soi_graph as graph;
pub use soi_index as index;
pub use soi_influence as influence;
pub use soi_jaccard as jaccard;
pub use soi_obs as obs;
pub use soi_problog as problog;
pub use soi_sampling as sampling;
pub use soi_util as util;

/// The most commonly used items in one import.
pub mod prelude {
    pub use soi_core::{
        all_typical_cascades, expected_cost, expected_cost_of_seed_set, typical_cascade,
        typical_cascade_of_set, TypicalCascade, TypicalCascadeConfig,
    };
    pub use soi_graph::{gen, DiGraph, GraphBuilder, NodeId, ProbGraph};
    pub use soi_index::{CascadeIndex, IndexConfig};
    pub use soi_influence::{
        infmax_ris, infmax_std, infmax_std_mc, infmax_tc, infmax_tc_budgeted, infmax_tc_weighted,
        GreedyMode, McGreedyConfig, SpreadOracle,
    };
    pub use soi_jaccard::{empirical_cost, jaccard_distance, jaccard_median};
    pub use soi_sampling::{estimate_spread, CascadeSampler, WorldSampler};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let g = gen::path(3);
        assert_eq!(g.num_edges(), 2);
        let pg = ProbGraph::fixed(g, 0.5).unwrap();
        let s = estimate_spread(&pg, &[0], 100, 1);
        assert!(s >= 1.0);
    }
}
