//! Strongly connected components and condensation DAGs.
//!
//! §4 of the paper builds its cascade index on the observation that all
//! vertices in the same SCC of a possible world share one reachability set.
//! We implement Tarjan's algorithm iteratively (an explicit work stack, so
//! pathological worlds cannot overflow the call stack) and derive the
//! *condensation*: the DAG obtained by contracting each SCC to a single
//! vertex, with member lists for expanding components back to nodes.

use crate::{DiGraph, NodeId};

/// Output of [`tarjan_scc`]: a component id per node plus the count.
///
/// Component ids are assigned in *reverse topological order of discovery*:
/// Tarjan emits sinks first, so `comp_of[u] >= comp_of[v]` whenever the
/// condensation has an arc `comp(u) -> comp(v)`. Equivalently, ids in
/// increasing order form a topological order of the condensation *reversed*;
/// [`Condensation::new`] relies on this.
#[derive(Clone, Debug, PartialEq)]
pub struct SccResult {
    /// `comp_of[v]` is the SCC id of node `v`.
    pub comp_of: Vec<u32>,
    /// Number of components.
    pub num_comps: usize,
}

impl SccResult {
    /// Sizes of every component.
    pub fn comp_sizes(&self) -> Vec<u32> {
        let mut sizes = vec![0u32; self.num_comps];
        for &c in &self.comp_of {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Iterative Tarjan SCC. `O(V + E)` time, `O(V)` extra space.
pub fn tarjan_scc(g: &DiGraph) -> SccResult {
    let n = g.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n]; // discovery index
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![UNVISITED; n];
    let mut stack: Vec<NodeId> = Vec::new(); // Tarjan's stack
    let mut next_index = 0u32;
    let mut num_comps = 0u32;

    // Work stack frames: (node, next-neighbor-position).
    let mut work: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNVISITED {
            continue;
        }
        work.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            let neighbors = g.out_neighbors(v);
            if *pos < neighbors.len() {
                let w = neighbors[*pos];
                *pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    work.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC; pop it off Tarjan's stack.
                    loop {
                        // v itself is on the stack whenever it is an SCC
                        // root, so the pop cannot underflow before the
                        // `w == v` break. xtask-allow: panic_policy
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = num_comps;
                        if w == v {
                            break;
                        }
                    }
                    num_comps += 1;
                }
            }
        }
    }

    SccResult {
        comp_of,
        num_comps: num_comps as usize,
    }
}

/// The condensation of a directed graph: one vertex per SCC, arcs
/// deduplicated, plus member lists mapping components back to nodes.
///
/// The condensation is always a DAG. Component ids follow the Tarjan order
/// (see [`SccResult`]): every arc goes from a higher id to a lower id, so
/// `num_comps-1, ..., 1, 0` is a topological order.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// DAG over component ids (arcs deduplicated, no self-loops).
    pub dag: DiGraph,
    /// `comp_of[v]` is the component of original node `v`.
    pub comp_of: Vec<u32>,
    /// CSR offsets into `members`: component `c`'s nodes are
    /// `members[member_offsets[c]..member_offsets[c + 1]]`.
    pub member_offsets: Vec<usize>,
    /// Original node ids grouped by component.
    pub members: Vec<NodeId>,
}

impl Condensation {
    /// Computes SCCs of `g` and contracts them.
    pub fn new(g: &DiGraph) -> Self {
        let scc = tarjan_scc(g);
        Condensation::from_scc(g, &scc)
    }

    /// Contracts a graph given a precomputed SCC result.
    pub fn from_scc(g: &DiGraph, scc: &SccResult) -> Self {
        let nc = scc.num_comps;
        // Member lists via counting sort on component id.
        let mut member_offsets = vec![0usize; nc + 1];
        for &c in &scc.comp_of {
            member_offsets[c as usize + 1] += 1;
        }
        for i in 0..nc {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut cursor = member_offsets.clone();
        let mut members = vec![0 as NodeId; g.num_nodes()];
        for v in 0..g.num_nodes() {
            let c = scc.comp_of[v] as usize;
            members[cursor[c]] = v as NodeId;
            cursor[c] += 1;
        }

        // Cross-component arcs, deduplicated.
        let mut arcs: Vec<(NodeId, NodeId)> = Vec::new();
        for u in g.nodes() {
            let cu = scc.comp_of[u as usize];
            for &v in g.out_neighbors(u) {
                let cv = scc.comp_of[v as usize];
                if cu != cv {
                    arcs.push((cu, cv));
                }
            }
        }
        arcs.sort_unstable();
        arcs.dedup();
        // Component ids are `< nc` by construction, so the only from_edges
        // error (node out of range) cannot occur.
        // xtask-allow: panic_policy
        let dag = DiGraph::from_edges(nc, &arcs).expect("component ids in range");
        {
            let (offsets, targets) = dag.csr_parts();
            soi_util::invariant::debug_check_acyclic(offsets, targets);
        }

        Condensation {
            dag,
            comp_of: scc.comp_of.clone(),
            member_offsets,
            members,
        }
    }

    /// Number of components.
    pub fn num_comps(&self) -> usize {
        self.dag.num_nodes()
    }

    /// The original nodes belonging to component `c`.
    pub fn members_of(&self, c: u32) -> &[NodeId] {
        &self.members[self.member_offsets[c as usize]..self.member_offsets[c as usize + 1]]
    }

    /// Size of component `c`.
    pub fn comp_size(&self, c: u32) -> usize {
        self.member_offsets[c as usize + 1] - self.member_offsets[c as usize]
    }

    /// A topological order of the condensation (largest Tarjan id first).
    pub fn topo_order(&self) -> impl Iterator<Item = u32> {
        (0..self.num_comps() as u32).rev()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp_partition(scc: &SccResult) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); scc.num_comps];
        for (v, &c) in scc.comp_of.iter().enumerate() {
            groups[c as usize].push(v);
        }
        groups.sort();
        groups
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0 <-> 1 -> 2 <-> 3, plus 4 isolated.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_comps, 3);
        let groups = comp_partition(&scc);
        assert!(groups.contains(&vec![0, 1]));
        assert!(groups.contains(&vec![2, 3]));
        assert!(groups.contains(&vec![4]));
        // Arc {0,1} -> {2,3} means comp({0,1}) > comp({2,3}).
        assert!(
            scc.comp_of[0] > scc.comp_of[2],
            "ids are reverse-topological"
        );
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_comps, 4);
        assert_eq!(scc.comp_sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn single_big_cycle() {
        let n = 1000;
        let edges: Vec<_> = (0..n)
            .map(|i| (i as NodeId, ((i + 1) % n) as NodeId))
            .collect();
        let scc = tarjan_scc(&DiGraph::from_edges(n, &edges).unwrap());
        assert_eq!(scc.num_comps, 1);
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        // 200k-node path; a recursive Tarjan would blow the stack here.
        let n = 200_000;
        let edges: Vec<_> = (0..n - 1)
            .map(|i| (i as NodeId, (i + 1) as NodeId))
            .collect();
        let scc = tarjan_scc(&DiGraph::from_edges(n, &edges).unwrap());
        assert_eq!(scc.num_comps, n);
    }

    #[test]
    fn component_ids_are_reverse_topological() {
        // Random-ish DAG plus cycles: verify the documented invariant that
        // every condensation arc goes from higher id to lower id.
        let g = DiGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0), // SCC {0,1,2}
                (2, 3),
                (3, 4),
                (4, 3), // SCC {3,4}
                (4, 5),
                (1, 6),
                (6, 7),
            ],
        )
        .unwrap();
        let scc = tarjan_scc(&g);
        for (u, v) in g.edges() {
            let (cu, cv) = (scc.comp_of[u as usize], scc.comp_of[v as usize]);
            if cu != cv {
                assert!(cu > cv, "arc {u}->{v}: comp {cu} must be > {cv}");
            }
        }
    }

    #[test]
    fn condensation_members_and_dag() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (1, 4)]).unwrap();
        let c = Condensation::new(&g);
        assert_eq!(c.num_comps(), 3);
        let c01 = c.comp_of[0];
        assert_eq!(c.comp_of[1], c01);
        let mut m: Vec<_> = c.members_of(c01).to_vec();
        m.sort();
        assert_eq!(m, vec![0, 1]);
        assert_eq!(c.comp_size(c01), 2);
        // DAG: comp{0,1} -> comp{2,3}, comp{0,1} -> comp{4}; dedup applies.
        assert_eq!(c.dag.num_edges(), 2);
        // Topo order visits sources before sinks.
        let order: Vec<u32> = c.topo_order().collect();
        let pos = |x: u32| order.iter().position(|&y| y == x).unwrap();
        for (a, b) in c.dag.edges() {
            assert!(pos(a) < pos(b), "topo violated for {a}->{b}");
        }
    }

    #[test]
    fn condensation_of_empty_graph() {
        let c = Condensation::new(&DiGraph::empty(0));
        assert_eq!(c.num_comps(), 0);
        let c = Condensation::new(&DiGraph::empty(3));
        assert_eq!(c.num_comps(), 3);
        assert_eq!(c.dag.num_edges(), 0);
    }

    #[test]
    fn members_partition_the_nodes() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]).unwrap();
        let c = Condensation::new(&g);
        let mut all: Vec<NodeId> = (0..c.num_comps() as u32)
            .flat_map(|k| c.members_of(k).iter().copied())
            .collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }
}
