//! k-core decomposition, deterministic and probabilistic.
//!
//! Reference [6] of the paper (Bonchi, Gullo, Kaltenbrunner & Volkovich,
//! KDD 2014) studies core decomposition of *uncertain* graphs: the
//! `(k, η)`-core is the largest subgraph in which every node has at least
//! `k` neighbors *with probability at least η*. We provide:
//!
//! * [`core_numbers`] — the classic peeling algorithm on a deterministic
//!   graph (treating arcs as undirected links, the convention of the core
//!   literature);
//! * [`eta_degrees`] — Monte-Carlo per-node η-degrees of a probabilistic
//!   graph (the largest `d` such that `Pr[degree ≥ d] ≥ η`);
//! * [`eta_core_numbers`] — peeling on η-degrees, the MC analogue of the
//!   `(k, η)`-core.
//!
//! Core numbers are a standard seed-selection signal ("influential users
//! sit in deep cores"), complementing the baselines in `soi-influence`.

use crate::{DiGraph, NodeId, ProbGraph};
use soi_util::rng::Rng;

/// Undirected degree view: out-neighbors plus in-neighbors, deduplicated.
fn undirected_adjacency(g: &DiGraph) -> Vec<Vec<NodeId>> {
    let rev = g.reverse();
    (0..g.num_nodes() as NodeId)
        .map(|v| {
            let mut adj: Vec<NodeId> = g
                .out_neighbors(v)
                .iter()
                .chain(rev.out_neighbors(v))
                .copied()
                .filter(|&w| w != v)
                .collect();
            adj.sort_unstable();
            adj.dedup();
            adj
        })
        .collect()
}

/// Core number of every node (undirected view): the largest `k` such that
/// the node belongs to a subgraph where every member has ≥ `k` members as
/// neighbors. Linear-time peeling (Batagelj–Zaveršnik).
pub fn core_numbers(g: &DiGraph) -> Vec<u32> {
    let adj = undirected_adjacency(g);
    peel(&adj)
}

fn peel(adj: &[Vec<NodeId>]) -> Vec<u32> {
    let n = adj.len();
    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v as NodeId);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_k = 0usize;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < n {
        // Find the lowest non-empty bucket at or below the cursor.
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor > max_deg {
            break;
        }
        let Some(v) = buckets[cursor].pop() else {
            continue; // bucket drained concurrently with the scan; rescan
        };
        if removed[v as usize] {
            continue;
        }
        if degree[v as usize] > cursor {
            // Stale entry; re-file.
            buckets[degree[v as usize]].push(v);
            continue;
        }
        current_k = current_k.max(degree[v as usize]);
        core[v as usize] = current_k as u32;
        removed[v as usize] = true;
        processed += 1;
        for &w in &adj[v as usize] {
            if !removed[w as usize] && degree[w as usize] > degree[v as usize] {
                degree[w as usize] -= 1;
                buckets[degree[w as usize]].push(w);
                // Lower buckets may now be non-empty again.
                cursor = cursor.min(degree[w as usize]);
            }
        }
    }
    core
}

/// Monte-Carlo η-degrees of a probabilistic graph: for each node, the
/// largest `d` with `Pr[undirected degree ≥ d] ≥ eta`, estimated over
/// `samples` possible worlds.
pub fn eta_degrees<R: Rng>(pg: &ProbGraph, eta: f64, samples: usize, rng: &mut R) -> Vec<u32> {
    assert!((0.0..=1.0).contains(&eta), "eta is a probability");
    assert!(samples > 0);
    let n = pg.num_nodes();
    // degree_counts[v][d] = number of worlds where v had degree exactly d.
    // Degrees are bounded by the deterministic adjacency size.
    let adj = undirected_adjacency(pg.graph());
    let mut counts: Vec<Vec<u32>> = adj.iter().map(|a| vec![0u32; a.len() + 1]).collect();
    // Precompute, per node, its undirected neighbors with the CSR edge
    // ids of both arc directions — arcs are sampled independently (the
    // IC worlds' semantics) and a neighbor counts if *either* direction
    // survives.
    let g = pg.graph();
    // Neighbor with the CSR edge id of each arc direction, if present.
    type NbrArcs = Vec<(NodeId, Option<usize>, Option<usize>)>;
    let nbr_arcs: Vec<NbrArcs> = (0..n as NodeId)
        .map(|v| {
            adj[v as usize]
                .iter()
                .map(|&w| {
                    let fwd = g
                        .out_neighbors(v)
                        .binary_search(&w)
                        .ok()
                        .map(|i| g.edge_range(v).start + i);
                    let bwd = g
                        .out_neighbors(w)
                        .binary_search(&v)
                        .ok()
                        .map(|i| g.edge_range(w).start + i);
                    (w, fwd, bwd)
                })
                .collect()
        })
        .collect();
    let mut alive = vec![false; pg.num_edges()];
    for _ in 0..samples {
        for (e, a) in alive.iter_mut().enumerate() {
            *a = rng.random::<f64>() < pg.edge_prob(e);
        }
        for v in 0..n {
            let d = nbr_arcs[v]
                .iter()
                .filter(|&&(_, fwd, bwd)| {
                    fwd.is_some_and(|e| alive[e]) || bwd.is_some_and(|e| alive[e])
                })
                .count();
            counts[v][d] += 1;
        }
    }
    let need = (eta * samples as f64).ceil() as u32;
    counts
        .iter()
        .map(|c| {
            // Survival function: largest d with #worlds(degree >= d) >= need.
            let mut acc = 0u32;
            let mut best = 0u32;
            for d in (0..c.len()).rev() {
                acc += c[d];
                if acc >= need.max(1) {
                    best = d as u32;
                    break;
                }
            }
            best
        })
        .collect()
}

/// η-core numbers: peeling over Monte-Carlo η-degrees. A practical MC
/// analogue of the `(k, η)`-cores of reference [6]; deterministic in the
/// RNG state.
pub fn eta_core_numbers<R: Rng>(pg: &ProbGraph, eta: f64, samples: usize, rng: &mut R) -> Vec<u32> {
    // Peel the deterministic adjacency but cap each node's degree signal
    // at its η-degree: a node leaves the k-core once its η-degree bound
    // falls below k.
    let eta_deg = eta_degrees(pg, eta, samples, rng);
    let adj = undirected_adjacency(pg.graph());
    // Simple iterative peeling with the capped degree.
    let n = adj.len();
    let mut alive = vec![true; n];
    let mut alive_neighbors: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut core = vec![0u32; n];
    for k in 0.. {
        // Remove everything whose capped degree < k until stable.
        let mut changed = true;
        let mut any_alive = false;
        while changed {
            changed = false;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                let capped = alive_neighbors[v].min(eta_deg[v] as usize);
                if capped < k {
                    alive[v] = false;
                    core[v] = (k as u32).saturating_sub(1);
                    changed = true;
                    for &w in &adj[v] {
                        if alive[w as usize] {
                            alive_neighbors[w as usize] -= 1;
                        }
                    }
                }
            }
        }
        for &a in &alive {
            any_alive |= a;
        }
        if !any_alive {
            break;
        }
        if k > n {
            break;
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn core_numbers_of_known_shapes() {
        // Complete graph on 5 nodes: everyone is in the 4-core.
        assert_eq!(core_numbers(&gen::complete(5)), vec![4; 5]);
        // A path: endpoints and middles all peel at 1.
        assert_eq!(core_numbers(&gen::path(4)), vec![1; 4]);
        // A star: all in the 1-core (hub included — once leaves go, the
        // hub's degree is 0, but its core number was set at peel level 1).
        assert_eq!(core_numbers(&gen::star(5)), vec![1; 5]);
        // Isolated nodes are 0-core.
        assert_eq!(core_numbers(&DiGraph::empty(3)), vec![0; 3]);
    }

    #[test]
    fn core_numbers_triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: triangle is 2-core, tail 1-core.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let c = core_numbers(&g);
        assert_eq!(c[0], 2);
        assert_eq!(c[1], 2);
        assert_eq!(c[2], 2);
        assert_eq!(c[3], 1);
    }

    #[test]
    fn core_invariant_holds_on_random_graphs() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        let g = gen::gnm(80, 320, &mut rng);
        let core = core_numbers(&g);
        let adj = undirected_adjacency(&g);
        // Every node's core number k: it must have >= k neighbors with
        // core number >= k (the defining property).
        for v in 0..80usize {
            let k = core[v];
            let strong = adj[v].iter().filter(|&&w| core[w as usize] >= k).count();
            assert!(
                strong as u32 >= k,
                "node {v}: core {k} but only {strong} strong neighbors"
            );
        }
    }

    #[test]
    fn eta_degrees_certain_graph_equal_true_degrees() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let g = gen::complete(6);
        let pg = ProbGraph::fixed(g, 1.0).unwrap();
        let d = eta_degrees(&pg, 0.9, 50, &mut rng);
        assert_eq!(d, vec![5; 6]);
    }

    #[test]
    fn eta_degrees_shrink_with_eta() {
        let mut rng1 = soi_util::rng::Xoshiro256pp::seed_from_u64(5);
        let mut rng2 = soi_util::rng::Xoshiro256pp::seed_from_u64(5);
        let pg = ProbGraph::fixed(gen::complete(10), 0.5).unwrap();
        let lenient = eta_degrees(&pg, 0.2, 400, &mut rng1);
        let strict = eta_degrees(&pg, 0.9, 400, &mut rng2);
        for v in 0..10 {
            assert!(strict[v] <= lenient[v], "node {v}");
        }
        // With p = 0.5 over 9 potential links, the median degree is ~4-5... but
        // links are bidirectional arcs sampled independently: survival of
        // either arc keeps the neighbor, so E[deg] = 9 * 0.75.
        assert!(lenient[0] >= 5, "{}", lenient[0]);
    }

    #[test]
    fn eta_cores_peel_consistently() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(6);
        let pg = ProbGraph::fixed(gen::gnm(50, 250, &mut rng), 0.7).unwrap();
        let mut rng2 = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
        let cores = eta_core_numbers(&pg, 0.5, 200, &mut rng2);
        let det = core_numbers(pg.graph());
        for v in 0..50 {
            assert!(
                cores[v] <= det[v],
                "node {v}: eta-core {} exceeds deterministic core {}",
                cores[v],
                det[v]
            );
        }
    }
}
