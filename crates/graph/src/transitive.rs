//! Transitive closure and transitive reduction of DAGs.
//!
//! Algorithm 1 of the paper stores, for each sampled possible world, the
//! transitive *reduction* of its SCC condensation: the unique minimal DAG
//! with the same reachability (Aho, Garey & Ullman, SIAM J. Comput. 1972).
//! We compute descendant sets bottom-up in topological order as bitset rows
//! (the closure), then drop every arc `(u, v)` for which some other direct
//! successor of `u` already reaches `v`.

use crate::{DiGraph, NodeId};
use soi_util::BitSet;

/// A topological order of a DAG (Kahn's algorithm).
///
/// Returns `None` if the graph has a cycle — callers in this workspace pass
/// condensations, which are DAGs by construction, but the check is cheap
/// and turns corruption into an error instead of nonsense.
pub fn topological_order(g: &DiGraph) -> Option<Vec<NodeId>> {
    let n = g.num_nodes();
    let mut in_deg = g.in_degrees();
    let mut queue: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| in_deg[v as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &w in g.out_neighbors(v) {
            in_deg[w as usize] -= 1;
            if in_deg[w as usize] == 0 {
                queue.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// The transitive closure of a DAG as one bitset row per node.
///
/// `closure[v]` contains every node reachable from `v` by a path of length
/// ≥ 1 (`v` itself only if it lies on a cycle, which a DAG forbids — so
/// never). Memory is `O(n² / 64)`; intended for condensation DAGs, whose
/// size is far below the original graph's.
pub fn transitive_closure(g: &DiGraph) -> Option<Vec<BitSet>> {
    let n = g.num_nodes();
    let order = topological_order(g)?;
    let mut closure: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    // Process in reverse topological order so successors are final.
    for &v in order.iter().rev() {
        // Collect into a scratch row first to avoid aliasing `closure[v]`
        // with `closure[w]`.
        let mut row = BitSet::new(n);
        for &w in g.out_neighbors(v) {
            row.insert(w as usize);
            row.union_with(&closure[w as usize]);
        }
        closure[v as usize] = row;
    }
    Some(closure)
}

/// The transitive reduction of a DAG.
///
/// Keeps arc `(u, v)` iff no other direct successor `w` of `u` reaches `v`.
/// For DAGs this produces the unique minimum-arc graph with identical
/// reachability. Returns `None` on cyclic input.
pub fn transitive_reduction(g: &DiGraph) -> Option<DiGraph> {
    let closure = transitive_closure(g)?;
    let mut kept: Vec<(NodeId, NodeId)> = Vec::new();
    for u in g.nodes() {
        let succs = g.out_neighbors(u);
        for &v in succs {
            let redundant = succs
                .iter()
                .any(|&w| w != v && closure[w as usize].contains(v as usize));
            if !redundant {
                kept.push((u, v));
            }
        }
    }
    // `kept` is a subset of g's arcs, so every id is already in range.
    // xtask-allow: panic_policy
    Some(DiGraph::from_edges(g.num_nodes(), &kept).expect("nodes unchanged"))
}

/// Number of reachable nodes from each node (closure row popcounts),
/// excluding the node itself.
pub fn descendant_counts(g: &DiGraph) -> Option<Vec<usize>> {
    let closure = transitive_closure(g)?;
    Some(closure.iter().map(|row| row.len()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_util::rng::{Rng, Xoshiro256pp};

    fn diamond_with_shortcut() -> DiGraph {
        // 0->1->3, 0->2->3, plus redundant shortcut 0->3.
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn topo_order_respects_arcs() {
        let g = diamond_with_shortcut();
        let order = topological_order(&g).unwrap();
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        for (u, v) in g.edges() {
            assert!(pos(u) < pos(v));
        }
    }

    #[test]
    fn topo_order_detects_cycles() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert!(topological_order(&g).is_none());
        assert!(transitive_closure(&g).is_none());
        assert!(transitive_reduction(&g).is_none());
    }

    #[test]
    fn closure_of_chain() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = transitive_closure(&g).unwrap();
        assert_eq!(c[0].to_vec_u32(), vec![1, 2, 3]);
        assert_eq!(c[1].to_vec_u32(), vec![2, 3]);
        assert_eq!(c[3].to_vec_u32(), Vec::<u32>::new());
    }

    #[test]
    fn reduction_removes_shortcut() {
        let g = diamond_with_shortcut();
        let r = transitive_reduction(&g).unwrap();
        assert_eq!(r.num_edges(), 4);
        assert!(!r.has_edge(0, 3), "shortcut arc removed");
        assert!(r.has_edge(0, 1) && r.has_edge(0, 2) && r.has_edge(1, 3) && r.has_edge(2, 3));
    }

    #[test]
    fn reduction_of_already_minimal_graph_is_identity() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(transitive_reduction(&g).unwrap(), g);
    }

    #[test]
    fn reduction_long_redundancy() {
        // 0->1->2->3 with shortcuts 0->2, 0->3, 1->3: all shortcuts die.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2), (0, 3), (1, 3)]).unwrap();
        let r = transitive_reduction(&g).unwrap();
        assert_eq!(r.num_edges(), 3);
    }

    #[test]
    fn descendant_counts_work() {
        let g = diamond_with_shortcut();
        let counts = descendant_counts(&g).unwrap();
        assert_eq!(counts, vec![3, 1, 1, 0]);
    }

    /// Builds a random DAG by orienting random pairs from low to high id.
    fn random_dag(n: usize, arcs: &[(u8, u8)]) -> DiGraph {
        let edges: Vec<(NodeId, NodeId)> = arcs
            .iter()
            .map(|&(a, b)| {
                let (a, b) = (a as usize % n, b as usize % n);
                (a.min(b) as NodeId, a.max(b) as NodeId)
            })
            .filter(|&(a, b)| a != b)
            .collect();
        let mut dedup = edges;
        dedup.sort_unstable();
        dedup.dedup();
        DiGraph::from_edges(n, &dedup).unwrap()
    }

    /// Draws a random arc list for [`random_dag`] from a derived stream.
    fn random_arcs(case: u64, ids: u8, max_len: usize) -> Vec<(u8, u8)> {
        let mut rng = Xoshiro256pp::from_stream(0x07A1_1DA6, case);
        let len = rng.random_range(0usize..max_len);
        (0..len)
            .map(|_| (rng.random_range(0u8..ids), rng.random_range(0u8..ids)))
            .collect()
    }

    /// Transitive reduction preserves the closure exactly and never has
    /// more arcs than the input. (Property test over 32 seeded cases.)
    #[test]
    fn reduction_preserves_reachability() {
        for case in 0..32u64 {
            let arcs = random_arcs(case, 20, 60);
            let n = 20;
            let g = random_dag(n, &arcs);
            let r = transitive_reduction(&g).unwrap();
            assert!(r.num_edges() <= g.num_edges(), "case {case}");
            let cg = transitive_closure(&g).unwrap();
            let cr = transitive_closure(&r).unwrap();
            for v in 0..n {
                assert_eq!(cg[v].to_vec_u32(), cr[v].to_vec_u32(), "case {case}");
            }
        }
    }

    /// The reduction is minimal: removing any arc changes reachability.
    #[test]
    fn reduction_is_minimal() {
        for case in 0..32u64 {
            let arcs = random_arcs(case, 12, 30);
            let n = 12;
            let g = random_dag(n, &arcs);
            let r = transitive_reduction(&g).unwrap();
            let arcs: Vec<_> = r.edges().collect();
            for skip in 0..arcs.len() {
                let rest: Vec<_> = arcs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, &e)| e)
                    .collect();
                let sub = DiGraph::from_edges(n, &rest).unwrap();
                let (u, v) = arcs[skip];
                let c = transitive_closure(&sub).unwrap();
                assert!(
                    !c[u as usize].contains(v as usize),
                    "arc {u}->{v} was redundant in the reduction (case {case})"
                );
            }
        }
    }
}
