//! Structural graph statistics.
//!
//! Used by the dataset registry's Table 1 reporting and by EXPERIMENTS.md
//! to characterize the synthetic stand-ins (degree distributions decide
//! whether the fixed-probability model is supercritical — the scale
//! caveat documented there).

use crate::{DiGraph, NodeId};

/// Degree-distribution summary of a directed graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Mean out-degree (= mean in-degree = |E| / |V|).
    pub mean: f64,
    /// Maximum out-degree.
    pub max_out: usize,
    /// Maximum in-degree.
    pub max_in: usize,
    /// Second moment of the out-degree distribution, `E[d²]`.
    pub second_moment_out: f64,
    /// The epidemic-threshold ratio `E[d²]/E[d] − 1` (mean excess
    /// degree): the fixed-`p` IC model is supercritical roughly when
    /// `p · ratio > 1`.
    pub excess_ratio: f64,
}

/// Computes degree statistics. Returns zeros for empty graphs.
pub fn degree_stats(g: &DiGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats {
            mean: 0.0,
            max_out: 0,
            max_in: 0,
            second_moment_out: 0.0,
            excess_ratio: 0.0,
        };
    }
    let mut max_out = 0usize;
    let mut sum = 0usize;
    let mut sum_sq = 0.0f64;
    for v in g.nodes() {
        let d = g.out_degree(v);
        max_out = max_out.max(d);
        sum += d;
        sum_sq += (d * d) as f64;
    }
    let max_in = g.in_degrees().into_iter().max().unwrap_or(0);
    let mean = sum as f64 / n as f64;
    let second = sum_sq / n as f64;
    DegreeStats {
        mean,
        max_out,
        max_in,
        second_moment_out: second,
        excess_ratio: if mean > 0.0 { second / mean - 1.0 } else { 0.0 },
    }
}

/// Weakly connected components: ignores arc direction. Returns
/// `(component id per node, number of components)`.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let rev = g.reverse();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for root in 0..n as NodeId {
        if comp[root as usize] != u32::MAX {
            continue;
        }
        comp[root as usize] = next;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &w in g.out_neighbors(v).iter().chain(rev.out_neighbors(v)) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    stack.push(w);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Size of the largest weakly connected component.
pub fn largest_wcc_size(g: &DiGraph) -> usize {
    let (comp, k) = weakly_connected_components(g);
    let mut sizes = vec![0usize; k];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// BFS distances (in hops) from `source`; `usize::MAX` marks unreachable
/// nodes.
pub fn bfs_distances(g: &DiGraph, source: NodeId) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in g.out_neighbors(v) {
            if dist[w as usize] == usize::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn degree_stats_of_star() {
        let s = degree_stats(&gen::star(10));
        assert_eq!(s.max_out, 9);
        assert_eq!(s.max_in, 1);
        assert!((s.mean - 0.9).abs() < 1e-12);
        // E[d²] = 81/10; ratio = 8.1/0.9 - 1 = 8.
        assert!((s.excess_ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn degree_stats_heavy_tail_raises_excess_ratio() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(1);
        let regular = degree_stats(&gen::cycle(500));
        let heavy = degree_stats(&gen::barabasi_albert(500, 2, true, &mut rng).reverse());
        assert!(
            (regular.excess_ratio - 0.0).abs() < 1e-9,
            "cycle has no excess"
        );
        assert!(
            heavy.excess_ratio > 3.0,
            "BA in-degrees are heavy: {}",
            heavy.excess_ratio
        );
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&DiGraph::empty(0));
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.excess_ratio, 0.0);
    }

    #[test]
    fn wcc_ignores_direction() {
        // 0 -> 1, 2 -> 1 are one weak component; 3 isolated.
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 1)]).unwrap();
        let (comp, k) = weakly_connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
        assert_eq!(largest_wcc_size(&g), 3);
    }

    #[test]
    fn bfs_distances_on_path_and_unreachable() {
        let g = gen::path(5);
        let d = bfs_distances(&g, 1);
        assert_eq!(d, vec![usize::MAX, 0, 1, 2, 3]);
    }

    #[test]
    fn bfs_takes_shortest_route() {
        // 0->1->2->3 plus shortcut 0->3.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        assert_eq!(bfs_distances(&g, 0)[3], 1);
    }
}
