//! The probabilistic directed graph `G = (V, E, p)` of §2.1.
//!
//! A [`ProbGraph`] pairs a [`DiGraph`] with one existence probability per
//! CSR edge slot. Under the possible-world semantics (Eq. 1 of the paper)
//! it defines a distribution over subgraphs: every arc is kept
//! independently with its probability. Sampling lives in `soi-sampling`;
//! this module owns representation, validation, and the standard
//! *assignment models* used in the evaluation (§6.2): weighted cascade,
//! fixed probability, and the trivalency model.

use crate::{DiGraph, GraphError, NodeId};
use soi_util::rng::Rng;

/// A directed graph whose arcs carry independent existence probabilities
/// in `(0, 1]`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbGraph {
    graph: DiGraph,
    /// `probs[e]` is the probability of the CSR edge at position `e`.
    probs: Vec<f64>,
}

impl ProbGraph {
    /// Pairs a graph with per-edge probabilities (CSR edge order).
    ///
    /// Every probability must be finite and in `(0, 1]`; the vector length
    /// must equal the edge count.
    pub fn new(graph: DiGraph, probs: Vec<f64>) -> Result<Self, GraphError> {
        if probs.len() != graph.num_edges() {
            return Err(GraphError::ProbabilityArityMismatch {
                edges: graph.num_edges(),
                probs: probs.len(),
            });
        }
        for (i, &p) in probs.iter().enumerate() {
            if !p.is_finite() || p <= 0.0 || p > 1.0 {
                return Err(GraphError::InvalidProbability {
                    edge_index: i,
                    value: p,
                });
            }
        }
        Ok(ProbGraph { graph, probs })
    }

    /// Assigns the same probability `p` to every arc — the paper's *fixed*
    /// model (`p = 0.1` in §6.2, suffix `-F`).
    pub fn fixed(graph: DiGraph, p: f64) -> Result<Self, GraphError> {
        let probs = vec![p; graph.num_edges()];
        ProbGraph::new(graph, probs)
    }

    /// The *weighted cascade* model (§6.2, suffix `-W`):
    /// `p(u, v) = 1 / inDeg(v)`.
    ///
    /// Nodes necessarily have `inDeg >= 1` wherever they appear as a
    /// target, so all probabilities are valid.
    pub fn weighted_cascade(graph: DiGraph) -> Self {
        let in_deg = graph.in_degrees();
        let mut probs = Vec::with_capacity(graph.num_edges());
        for u in graph.nodes() {
            for &v in graph.out_neighbors(u) {
                probs.push(1.0 / in_deg[v as usize] as f64);
            }
        }
        soi_util::invariant::debug_check_probabilities(&probs);
        ProbGraph { graph, probs }
    }

    /// The *trivalency* model: each arc draws uniformly from
    /// `{0.1, 0.01, 0.001}` (a standard benchmark assignment in the
    /// influence-maximization literature; listed as an extension in
    /// DESIGN.md).
    pub fn trivalency<R: Rng>(graph: DiGraph, rng: &mut R) -> Self {
        const LEVELS: [f64; 3] = [0.1, 0.01, 0.001];
        let probs: Vec<f64> = (0..graph.num_edges())
            .map(|_| LEVELS[rng.random_range(0..3)])
            .collect();
        soi_util::invariant::debug_check_probabilities(&probs);
        ProbGraph { graph, probs }
    }

    /// Assigns probabilities via a callback `(u, v) -> p`; useful for
    /// custom models and tests. Fails if any produced value is invalid.
    pub fn from_fn(
        graph: DiGraph,
        mut f: impl FnMut(NodeId, NodeId) -> f64,
    ) -> Result<Self, GraphError> {
        let mut probs = Vec::with_capacity(graph.num_edges());
        for u in graph.nodes() {
            for &v in graph.out_neighbors(u) {
                probs.push(f(u, v));
            }
        }
        ProbGraph::new(graph, probs)
    }

    /// The underlying topology.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Probability of the CSR edge at position `e`.
    #[inline]
    pub fn edge_prob(&self, e: usize) -> f64 {
        self.probs[e]
    }

    /// All probabilities in CSR edge order.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability of arc `(u, v)`, or `None` when the arc is absent.
    pub fn edge_prob_between(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let r = self.graph.edge_range(u);
        let list = self.graph.out_neighbors(u);
        list.binary_search(&v).ok().map(|i| self.probs[r.start + i])
    }

    /// Out-neighbors of `u` with their probabilities.
    pub fn out_arcs(&self, u: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let r = self.graph.edge_range(u);
        self.graph
            .out_neighbors(u)
            .iter()
            .zip(&self.probs[r])
            .map(|(&v, &p)| (v, p))
    }

    /// A 64-bit fingerprint of this probabilistic graph (topology plus
    /// exact probability bits), used to pin checkpoints and resumable
    /// runs to the graph they were started on. Deterministic across
    /// processes and platforms (little-endian byte hashing).
    pub fn fingerprint(&self) -> u64 {
        let mut h = soi_util::hash::Mix64Hasher::new();
        h.update_u64(self.num_nodes() as u64);
        h.update_u64(self.num_edges() as u64);
        for u in self.graph.nodes() {
            for &v in self.graph.out_neighbors(u) {
                h.update_u64(v as u64);
            }
            // Degree boundaries distinguish e.g. 0->{1,2} from 0->{1}, 1->{2}.
            h.update_u64(u64::MAX);
        }
        for &p in &self.probs {
            h.update_u64(p.to_bits());
        }
        h.finish()
    }

    /// Probability (Eq. 1) of one fully-specified possible world, given the
    /// set of surviving CSR edge positions. Exponentially small for big
    /// graphs — used by exact tests on tiny instances and by the Example 1
    /// reproduction.
    pub fn world_probability(&self, surviving_edges: &[usize]) -> f64 {
        let mut keep = vec![false; self.num_edges()];
        for &e in surviving_edges {
            keep[e] = true;
        }
        self.probs
            .iter()
            .enumerate()
            .map(|(e, &p)| if keep[e] { p } else { 1.0 - p })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_util::rng::Xoshiro256pp;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_probs() {
        let g = diamond();
        assert!(matches!(
            ProbGraph::new(g.clone(), vec![0.5; 3]),
            Err(GraphError::ProbabilityArityMismatch { edges: 4, probs: 3 })
        ));
        for bad in [0.0, -0.1, 1.1, f64::NAN, f64::INFINITY] {
            let mut probs = vec![0.5; 4];
            probs[2] = bad;
            assert!(
                matches!(
                    ProbGraph::new(g.clone(), probs),
                    Err(GraphError::InvalidProbability { edge_index: 2, .. })
                ),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn fixed_model() {
        let pg = ProbGraph::fixed(diamond(), 0.1).unwrap();
        assert!(pg.probs().iter().all(|&p| p == 0.1));
        assert!(ProbGraph::fixed(diamond(), 0.0).is_err());
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let pg = ProbGraph::weighted_cascade(diamond());
        // in-degrees: 1->1, 2->1, 3->2
        assert_eq!(pg.edge_prob_between(0, 1), Some(1.0));
        assert_eq!(pg.edge_prob_between(0, 2), Some(1.0));
        assert_eq!(pg.edge_prob_between(1, 3), Some(0.5));
        assert_eq!(pg.edge_prob_between(2, 3), Some(0.5));
    }

    #[test]
    fn trivalency_draws_from_levels() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let pg = ProbGraph::trivalency(diamond(), &mut rng);
        for &p in pg.probs() {
            assert!([0.1, 0.01, 0.001].contains(&p));
        }
    }

    #[test]
    fn from_fn_and_lookup() {
        let pg = ProbGraph::from_fn(diamond(), |u, v| ((u + v) as f64) / 10.0).unwrap();
        assert_eq!(pg.edge_prob_between(1, 3), Some(0.4));
        assert_eq!(pg.edge_prob_between(3, 1), None);
        assert_eq!(pg.edge_prob_between(0, 3), None);
    }

    #[test]
    fn out_arcs_pairs_neighbors_with_probs() {
        let pg = ProbGraph::from_fn(diamond(), |_, v| (v as f64 + 1.0) / 10.0).unwrap();
        let arcs: Vec<_> = pg.out_arcs(0).collect();
        assert_eq!(arcs, vec![(1, 0.2), (2, 0.3)]);
    }

    #[test]
    fn world_probability_example1() {
        // Figure 1 of the paper: v5 -> v1 (0.7), v5 -> v2 (0.4),
        // v5 -> v4 (0.3), v1 -> v2 (0.1), v2 -> v1 (0.1)... we reproduce the
        // first calculation of Example 1: cascade {v1} from v5 requires
        // (v5,v1) to exist and (v5,v2), (v5,v4), (v1,v2) to fail:
        // 0.7 * 0.6 * 0.7 * 0.9 = 0.2646.
        // Node ids: v1=0, v2=1, v4=2, v5=3.
        let mut b = crate::GraphBuilder::new(4);
        b.add_weighted_edge(3, 0, 0.7); // v5->v1
        b.add_weighted_edge(3, 1, 0.4); // v5->v2
        b.add_weighted_edge(3, 2, 0.3); // v5->v4
        b.add_weighted_edge(0, 1, 0.1); // v1->v2
        let pg = b.build_prob().unwrap();
        // CSR order: (0,1)=0.1 at e0; (3,0)=0.7 e1; (3,1)=0.4 e2; (3,2)=0.3 e3.
        let p = pg.world_probability(&[1]);
        assert!((p - 0.2646).abs() < 1e-12, "got {p}");
    }
}
