//! Synthetic graph generators.
//!
//! The paper evaluates on crawled social networks (Digg, Flixster, Twitter)
//! and SNAP graphs (NetHEPT, Epinions, Slashdot). Those datasets cannot be
//! redistributed here, so `soi-datasets` assembles structural stand-ins
//! from the generators below — heavy-tailed preferential attachment for
//! the social graphs and the sparse citation network, and a power-law
//! configuration model for the trust network (see DESIGN.md §2).
//!
//! All generators are deterministic given the RNG state and never emit
//! self-loops or duplicate arcs.

use crate::{DiGraph, GraphBuilder, NodeId};
use soi_util::rng::Rng;

/// Finalizes a builder whose arcs were generated with ids `< n`.
fn build_generated(b: GraphBuilder) -> DiGraph {
    // xtask-allow: panic_policy — every generator draws ids below its own
    // node count, so the only builder error (id out of range) cannot occur.
    b.build().expect("generated ids in range")
}

/// Builds from an edge list whose endpoints were generated with ids `< n`.
fn from_generated_edges(n: usize, edges: &[(NodeId, NodeId)]) -> DiGraph {
    // xtask-allow: panic_policy — same infallibility argument as
    // `build_generated`, for generators that emit plain edge lists.
    DiGraph::from_edges(n, edges).expect("generated ids in range")
}

/// Erdős–Rényi `G(n, p)`: every ordered pair `(u, v)`, `u != v`, becomes an
/// arc independently with probability `p`. For `undirected`, pairs are
/// sampled once and added symmetrically.
pub fn gnp<R: Rng>(n: usize, p: f64, undirected: bool, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        let lo = if undirected { u + 1 } else { 0 };
        for v in lo..n as NodeId {
            if v != u && rng.random_bool(p) {
                if undirected {
                    b.add_undirected_edge(u, v, 1.0);
                } else {
                    b.add_edge(u, v);
                }
            }
        }
    }
    build_generated(b)
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct arcs chosen uniformly
/// (directed; rejection-sampled, so keep `m` well below `n(n-1)`).
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    assert!(n >= 2 || m == 0, "need at least two nodes for any arc");
    let max_arcs = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_arcs, "m = {m} exceeds max {max_arcs}");
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as NodeId);
        let v = rng.random_range(0..n as NodeId);
        if u != v && seen.insert((u, v)) {
            edges.push((u, v));
        }
    }
    from_generated_edges(n, &edges)
}

/// Barabási–Albert preferential attachment: nodes arrive one at a time and
/// attach `m` arcs to existing nodes chosen proportional to current degree.
///
/// `directed`: new nodes point at their chosen targets only (heavy-tailed
/// *in*-degree, like a fan/follower network). Otherwise both directions are
/// added (the paper's undirected convention).
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, directed: bool, rng: &mut R) -> DiGraph {
    assert!(m >= 1, "attachment degree must be >= 1");
    assert!(n > m, "need more nodes than the attachment degree");
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * m * 2);
    // `targets`: multiset of endpoints, one entry per degree unit — sampling
    // uniformly from it implements preferential attachment.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 nodes so early picks are meaningful.
    for u in 0..(m + 1) as NodeId {
        for v in 0..u {
            if directed {
                b.add_edge(u, v);
            } else {
                b.add_undirected_edge(u, v, 1.0);
            }
            pool.push(u);
            pool.push(v);
        }
    }
    for u in (m + 1) as NodeId..n as NodeId {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m {
            let t = pool[rng.random_range(0..pool.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 50 * m {
                // Degenerate pool (tiny graphs): fall back to uniform picks.
                let t = rng.random_range(0..u);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for &t in &chosen {
            if directed {
                b.add_edge(u, t);
            } else {
                b.add_undirected_edge(u, t, 1.0);
            }
            pool.push(u);
            pool.push(t);
        }
    }
    build_generated(b)
}

/// Watts–Strogatz small world: a ring lattice where each node connects to
/// its `k` nearest neighbors (k even), each arc rewired with probability
/// `beta`. Always built undirected (symmetric arcs), matching NetHEPT's
/// role in the paper.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> DiGraph {
    assert!(k.is_multiple_of(2) && k >= 2, "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta));
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * k);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (u, mut v) = (u as NodeId, v as NodeId);
            if rng.random_bool(beta) {
                // Rewire to a uniform non-self target.
                let mut guard = 0;
                loop {
                    let w = rng.random_range(0..n as NodeId);
                    if w != u {
                        v = w;
                        break;
                    }
                    guard += 1;
                    if guard > 64 {
                        break;
                    }
                }
            }
            b.add_undirected_edge(u, v, 1.0);
        }
    }
    build_generated(b)
}

/// Directed power-law configuration model: each node draws a target
/// out-degree from a discrete power law `P(d) ∝ d^(-gamma)` truncated to
/// `[1, max_degree]`, then arcs go to uniform random distinct targets.
/// In-degree inherits heavy tails through popular targets being drawn by
/// preferential weighting.
pub fn powerlaw_configuration<R: Rng>(
    n: usize,
    gamma: f64,
    max_degree: usize,
    rng: &mut R,
) -> DiGraph {
    assert!(n >= 2);
    assert!(gamma > 1.0, "gamma must exceed 1");
    let max_degree = max_degree.min(n - 1).max(1);
    // Precompute the truncated power-law CDF over 1..=max_degree.
    let weights: Vec<f64> = (1..=max_degree).map(|d| (d as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(max_degree);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let draw_degree = |rng: &mut R| -> usize {
        let x: f64 = rng.random();
        cdf.partition_point(|&c| c < x) + 1
    };
    // Preferential in-degree: maintain a pool like BA so targets are
    // heavy-tailed too.
    let mut pool: Vec<NodeId> = (0..n as NodeId).collect();
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        let d = draw_degree(rng);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(d);
        let mut guard = 0usize;
        while chosen.len() < d && guard < 50 * d + 100 {
            let t = pool[rng.random_range(0..pool.len())];
            if t != u && !chosen.contains(&t) {
                chosen.push(t);
                pool.push(t); // rich get richer
            }
            guard += 1;
        }
        for &t in &chosen {
            b.add_edge(u, t);
        }
    }
    build_generated(b)
}

/// A simple directed path `0 -> 1 -> ... -> n-1`.
pub fn path(n: usize) -> DiGraph {
    let edges: Vec<_> = (0..n.saturating_sub(1))
        .map(|i| (i as NodeId, (i + 1) as NodeId))
        .collect();
    from_generated_edges(n, &edges)
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<_> = (0..n)
        .map(|i| (i as NodeId, ((i + 1) % n) as NodeId))
        .collect();
    from_generated_edges(n, &edges)
}

/// A star: node 0 points at every other node.
pub fn star(n: usize) -> DiGraph {
    let edges: Vec<_> = (1..n).map(|i| (0 as NodeId, i as NodeId)).collect();
    from_generated_edges(n, &edges)
}

/// The complete directed graph on `n` nodes (every ordered pair).
pub fn complete(n: usize) -> DiGraph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1));
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                edges.push((u, v));
            }
        }
    }
    from_generated_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_util::rng::Xoshiro256pp;

    #[test]
    fn gnp_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let g0 = gnp(10, 0.0, false, &mut rng);
        assert_eq!(g0.num_edges(), 0);
        let g1 = gnp(10, 1.0, false, &mut rng);
        assert_eq!(g1.num_edges(), 90);
        let u1 = gnp(10, 1.0, true, &mut rng);
        assert_eq!(u1.num_edges(), 90, "undirected complete = symmetric pairs");
        // Symmetry check.
        for (a, b) in u1.edges() {
            assert!(u1.has_edge(b, a));
        }
    }

    #[test]
    fn gnp_density_is_plausible() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let g = gnp(100, 0.05, false, &mut rng);
        let expect = 100.0 * 99.0 * 0.05;
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < expect * 0.3,
            "got {got}, expected ~{expect}"
        );
    }

    #[test]
    fn gnm_exact_count_no_dups() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let g = gnm(50, 200, &mut rng);
        assert_eq!(g.num_edges(), 200);
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        es.dedup();
        assert_eq!(es.len(), 200, "no duplicate arcs");
        assert!(es.iter().all(|&(u, v)| u != v), "no self-loops");
    }

    #[test]
    fn ba_degree_heavy_tail() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let g = barabasi_albert(500, 3, true, &mut rng);
        assert_eq!(g.num_nodes(), 500);
        // Each new node adds ~m arcs plus the seed clique.
        assert!(g.num_edges() >= 3 * (500 - 4));
        // Heavy tail: max in-degree far above mean.
        let deg = g.in_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        assert!(max as f64 > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn ba_undirected_is_symmetric() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let g = barabasi_albert(100, 2, false, &mut rng);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u), "missing back arc {v}->{u}");
        }
    }

    #[test]
    fn ws_is_symmetric_and_roughly_k_regular() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let g = watts_strogatz(200, 4, 0.1, &mut rng);
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
        // Arc count can dip slightly below n*k due to rewire collisions.
        assert!(g.num_edges() as f64 >= 200.0 * 4.0 * 0.9);
        assert!(g.num_edges() <= 200 * 4);
    }

    #[test]
    fn powerlaw_degrees_bounded_and_tailed() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let g = powerlaw_configuration(400, 2.2, 60, &mut rng);
        assert!(g.nodes().all(|v| g.out_degree(v) <= 60));
        let max_out = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_out >= 8, "tail too light: {max_out}");
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn fixtures() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(4).num_edges(), 12);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_nodes(), 0);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let g1 = barabasi_albert(100, 2, true, &mut Xoshiro256pp::seed_from_u64(5));
        let g2 = barabasi_albert(100, 2, true, &mut Xoshiro256pp::seed_from_u64(5));
        let g3 = barabasi_albert(100, 2, true, &mut Xoshiro256pp::seed_from_u64(6));
        assert_eq!(g1, g2);
        assert_ne!(g1, g3);
    }
}
