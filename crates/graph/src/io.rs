//! Plain-text edge-list serialization.
//!
//! Format: one arc per line, `source<TAB>target[<TAB>probability]`,
//! `#`-prefixed comment lines allowed, node count inferred as `max id + 1`
//! (or given explicitly in a `# nodes: N` header to preserve trailing
//! isolated nodes). This is the interchange format the experiment binaries
//! use to dump the synthetic datasets for external inspection.

use crate::{DiGraph, GraphBuilder, GraphError, ProbGraph};
use std::io::{BufRead, Write};

/// Writes a probabilistic graph as a TSV edge list with probabilities.
pub fn write_prob_graph<W: Write>(pg: &ProbGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# nodes: {}", pg.num_nodes())?;
    for u in pg.graph().nodes() {
        for (v, p) in pg.out_arcs(u) {
            writeln!(out, "{u}\t{v}\t{p}")?;
        }
    }
    Ok(())
}

/// Writes a plain graph as a TSV edge list.
pub fn write_graph<W: Write>(g: &DiGraph, mut out: W) -> std::io::Result<()> {
    writeln!(out, "# nodes: {}", g.num_nodes())?;
    for (u, v) in g.edges() {
        writeln!(out, "{u}\t{v}")?;
    }
    Ok(())
}

/// Parses an edge list. Lines may carry 2 or 3 whitespace-separated fields;
/// a third field is an edge probability. Mixing arities within one file is
/// an error. Returns a [`ProbGraph`] when probabilities are present (as
/// `Ok(Err(graph))` style is unergonomic we return an enum).
#[derive(Debug)]
pub enum ParsedGraph {
    /// Input had 2-field lines only.
    Plain(DiGraph),
    /// Input had 3-field lines only.
    Probabilistic(ProbGraph),
}

/// Reads an edge list produced by [`write_graph`] / [`write_prob_graph`]
/// (or hand-written in the same format). Malformed input — truncated
/// lines, duplicate `# nodes:` headers, non-finite or out-of-range
/// probabilities, node ids beyond a declared count — yields a
/// line-numbered [`GraphError::Parse`]; this function never panics on
/// untrusted input.
pub fn read_graph<R: BufRead>(input: R) -> Result<ParsedGraph, GraphError> {
    soi_util::failpoint!("graph.io.read");
    let mut declared_nodes: Option<usize> = None;
    let mut edges: Vec<(u32, u32, Option<f64>)> = Vec::new();
    let mut max_node: u32 = 0;
    let mut any = false;

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if let Some(n) = rest.trim().strip_prefix("nodes:") {
                if declared_nodes.is_some() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: "duplicate `# nodes:` header".into(),
                    });
                }
                let n: usize = n.trim().parse().map_err(|e| GraphError::Parse {
                    line: lineno,
                    message: format!("bad node count: {e}"),
                })?;
                if any && max_node as usize >= n {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!(
                            "`# nodes: {n}` header contradicts earlier node id {max_node}"
                        ),
                    });
                }
                declared_nodes = Some(n);
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 && fields.len() != 3 {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected 2 or 3 fields, got {}", fields.len()),
            });
        }
        let parse_node = |s: &str| -> Result<u32, GraphError> {
            let id: u32 = s.parse().map_err(|e| GraphError::Parse {
                line: lineno,
                message: format!("bad node id {s:?}: {e}"),
            })?;
            if let Some(n) = declared_nodes {
                if id as usize >= n {
                    return Err(GraphError::Parse {
                        line: lineno,
                        message: format!("node id {id} >= declared node count {n}"),
                    });
                }
            }
            Ok(id)
        };
        let u = parse_node(fields[0])?;
        let v = parse_node(fields[1])?;
        let p = if fields.len() == 3 {
            let p = fields[2].parse::<f64>().map_err(|e| GraphError::Parse {
                line: lineno,
                message: format!("bad probability {:?}: {e}", fields[2]),
            })?;
            // `parse::<f64>` happily accepts "NaN" and "inf"; reject them
            // (and anything outside (0, 1]) here so the report carries the
            // line number instead of a later edge index.
            if !(p > 0.0 && p <= 1.0) {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("probability {p} not in (0, 1]"),
                });
            }
            Some(p)
        } else {
            None
        };
        if any && (p.is_some() != edges[0].2.is_some()) {
            return Err(GraphError::Parse {
                line: lineno,
                message: "mixed 2-field and 3-field lines".into(),
            });
        }
        any = true;
        max_node = max_node.max(u).max(v);
        edges.push((u, v, p));
    }

    let num_nodes = declared_nodes.unwrap_or(if any { max_node as usize + 1 } else { 0 });
    let weighted = edges.first().is_some_and(|e| e.2.is_some());
    let mut b = GraphBuilder::new(num_nodes);
    for (u, v, p) in &edges {
        match p {
            Some(p) => b.add_weighted_edge(*u, *v, *p),
            None => b.add_edge(*u, *v),
        }
    }
    if weighted {
        Ok(ParsedGraph::Probabilistic(b.build_prob()?))
    } else {
        Ok(ParsedGraph::Plain(b.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_plain() {
        let g = gen::path(5);
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        match read_graph(&buf[..]).unwrap() {
            ParsedGraph::Plain(back) => assert_eq!(back, g),
            _ => panic!("expected plain"),
        }
    }

    #[test]
    fn roundtrip_probabilistic() {
        let pg = ProbGraph::weighted_cascade(gen::star(4));
        let mut buf = Vec::new();
        write_prob_graph(&pg, &mut buf).unwrap();
        match read_graph(&buf[..]).unwrap() {
            ParsedGraph::Probabilistic(back) => assert_eq!(back, pg),
            _ => panic!("expected probabilistic"),
        }
    }

    #[test]
    fn declared_nodes_preserves_isolated_tail() {
        let input = b"# nodes: 10\n0\t1\n" as &[u8];
        match read_graph(input).unwrap() {
            ParsedGraph::Plain(g) => {
                assert_eq!(g.num_nodes(), 10);
                assert_eq!(g.num_edges(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn inferred_nodes_without_header() {
        let input = b"0 5\n2 3\n" as &[u8];
        match read_graph(input).unwrap() {
            ParsedGraph::Plain(g) => assert_eq!(g.num_nodes(), 6),
            _ => panic!(),
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_arity = b"0 1 0.5 9\n" as &[u8];
        match read_graph(bad_arity) {
            Err(GraphError::Parse { line: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        let mixed = b"0 1\n1 2 0.5\n" as &[u8];
        match read_graph(mixed) {
            Err(GraphError::Parse { line: 2, message }) => {
                assert!(message.contains("mixed"))
            }
            other => panic!("{other:?}"),
        }
        let bad_prob = b"0 1 nope\n" as &[u8];
        assert!(matches!(
            read_graph(bad_prob),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn adversarial_probabilities_fail_with_line_numbers() {
        // parse::<f64>() accepts all of these spellings; the reader must
        // still reject them with the offending line, never panic.
        for (bad, line) in [
            ("0\t1\tNaN\n", 1),
            ("0\t1\t0.5\n1\t0\tinf\n", 2),
            ("0\t1\t-inf\n", 1),
            ("0\t1\t1.5\n", 1),
            ("0\t1\t0\n", 1),
            ("0\t1\t-0.25\n", 1),
        ] {
            match read_graph(bad.as_bytes()) {
                Err(GraphError::Parse { line: l, message }) => {
                    assert_eq!(l, line, "{bad:?}");
                    assert!(message.contains("probability"), "{bad:?}: {message}");
                }
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_nodes_header_is_rejected() {
        let input = b"# nodes: 5\n0\t1\n# nodes: 9\n" as &[u8];
        match read_graph(input) {
            Err(GraphError::Parse { line: 3, message }) => {
                assert!(message.contains("duplicate"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_ids_beyond_declared_count_are_rejected() {
        // Header first: the edge line is flagged.
        let input = b"# nodes: 3\n0\t7\n" as &[u8];
        match read_graph(input) {
            Err(GraphError::Parse { line: 2, message }) => {
                assert!(message.contains("declared node count"), "{message}")
            }
            other => panic!("{other:?}"),
        }
        // Header after the edges: the header line is flagged.
        let input = b"0\t7\n# nodes: 3\n" as &[u8];
        match read_graph(input) {
            Err(GraphError::Parse { line: 2, message }) => {
                assert!(message.contains("contradicts"), "{message}")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_lines_are_rejected() {
        for (bad, line) in [("0\n", 1), ("0\t1\t0.5\n1\n", 2), ("0 1 0.5 7 9\n", 1)] {
            match read_graph(bad.as_bytes()) {
                Err(GraphError::Parse { line: l, message }) => {
                    assert_eq!(l, line, "{bad:?}");
                    assert!(message.contains("fields"), "{bad:?}: {message}");
                }
                other => panic!("{bad:?} -> {other:?}"),
            }
        }
    }

    #[test]
    fn injected_read_fault_surfaces_as_io_error() {
        let _g = soi_util::failpoint::test_guard();
        soi_util::failpoint::install("graph.io.read=error").unwrap();
        let err = read_graph(b"0\t1\n" as &[u8]).unwrap_err();
        assert!(err.to_string().contains("graph.io.read"), "{err}");
        soi_util::failpoint::clear();
        assert!(read_graph(b"0\t1\n" as &[u8]).is_ok());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        match read_graph(b"" as &[u8]).unwrap() {
            ParsedGraph::Plain(g) => assert_eq!(g.num_nodes(), 0),
            _ => panic!(),
        }
    }

    mod roundtrip_properties {
        use super::super::*;
        use soi_util::rng::{Rng, Xoshiro256pp};

        /// Any valid probabilistic graph survives a text roundtrip
        /// bit-for-bit (probabilities included). 32 seeded random cases.
        #[test]
        fn prob_graph_roundtrips() {
            for case in 0..32u64 {
                let mut rng = Xoshiro256pp::from_stream(0x10_0001, case);
                let n = rng.random_range(1usize..30);
                let arcs = rng.random_range(0usize..80);
                let mut b = crate::GraphBuilder::new(n);
                for _ in 0..arcs {
                    let u = rng.random_range(0u32..30) % n as u32;
                    let v = rng.random_range(0u32..30) % n as u32;
                    let p = 0.01 + 0.99 * rng.random::<f64>();
                    b.add_weighted_edge(u, v, p);
                }
                let pg = b.build_prob().unwrap();
                let mut buf = Vec::new();
                write_prob_graph(&pg, &mut buf).unwrap();
                match read_graph(&buf[..]).unwrap() {
                    ParsedGraph::Probabilistic(back) => assert_eq!(back, pg, "case {case}"),
                    ParsedGraph::Plain(_) => {
                        // A graph with zero arcs parses as plain; that is
                        // the only case where the variant flips.
                        assert_eq!(pg.num_edges(), 0, "case {case}");
                    }
                }
            }
        }

        /// Plain graphs roundtrip too, preserving node count via the
        /// header even with trailing isolated nodes.
        #[test]
        fn plain_graph_roundtrips() {
            for case in 0..32u64 {
                let mut rng = Xoshiro256pp::from_stream(0x10_0002, case);
                let n = rng.random_range(1usize..30);
                let arcs = rng.random_range(0usize..80);
                let mut b = crate::GraphBuilder::new(n);
                for _ in 0..arcs {
                    let u = rng.random_range(0u32..30) % n as u32;
                    let v = rng.random_range(0u32..30) % n as u32;
                    b.add_edge(u, v);
                }
                let g = b.build().unwrap();
                let mut buf = Vec::new();
                write_graph(&g, &mut buf).unwrap();
                match read_graph(&buf[..]).unwrap() {
                    ParsedGraph::Plain(back) => assert_eq!(back, g, "case {case}"),
                    ParsedGraph::Probabilistic(_) => panic!("variant flip (case {case})"),
                }
            }
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let input = b"# hello\n\n0 1\n# trailing\n" as &[u8];
        match read_graph(input).unwrap() {
            ParsedGraph::Plain(g) => assert_eq!(g.num_edges(), 1),
            _ => panic!(),
        }
    }
}
