//! Compressed-sparse-row directed graph storage.
//!
//! A [`DiGraph`] stores, for each node, a contiguous slice of out-neighbor
//! ids. This is the representation every hot loop in the workspace walks:
//! possible-world sampling, SCC, reachability, spread simulation. Undirected
//! graphs are represented as symmetric arc pairs, exactly as the paper does
//! ("when a graph is undirected, we just consider the edges existing in both
//! directions", §6.1).

use crate::{GraphError, NodeId};

/// An immutable directed graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] or [`DiGraph::from_edges`].
#[derive(Clone, Debug, PartialEq)]
pub struct DiGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`'s out-arcs.
    offsets: Vec<usize>,
    /// Concatenated out-neighbor lists, sorted within each node.
    targets: Vec<NodeId>,
}

impl DiGraph {
    /// Builds a graph from `(source, target)` arcs.
    ///
    /// Arcs may appear in any order; within each node the stored neighbor
    /// list is sorted. Parallel arcs and self-loops are kept verbatim (use
    /// [`crate::GraphBuilder`] for deduplication).
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut counts = vec![0usize; num_nodes + 1];
        for &(u, v) in edges {
            for w in [u, v] {
                if w as usize >= num_nodes {
                    return Err(GraphError::NodeOutOfRange { node: w, num_nodes });
                }
            }
            counts[u as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; edges.len()];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        for v in 0..num_nodes {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Ok(DiGraph { offsets, targets })
    }

    /// Builds a graph directly from CSR arrays.
    ///
    /// Used by hot paths (world sampling) that produce CSR layout natively.
    /// Requirements, validated in debug builds by
    /// [`soi_util::invariant::check_csr`]: `offsets` is monotonically
    /// non-decreasing, starts at 0, ends at `targets.len()`, and every
    /// per-node target slice is sorted with ids `< offsets.len()-1`.
    pub fn from_csr_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        soi_util::invariant::debug_check_csr(&offsets, &targets);
        DiGraph { offsets, targets }
    }

    /// The raw CSR arrays `(offsets, targets)`.
    ///
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`; exposed
    /// so invariant checkers and serializers can walk the layout without
    /// per-node accessor calls.
    #[inline]
    pub fn csr_parts(&self) -> (&[usize], &[NodeId]) {
        (&self.offsets, &self.targets)
    }

    /// Builds an empty graph with `num_nodes` isolated nodes.
    pub fn empty(num_nodes: usize) -> Self {
        DiGraph {
            offsets: vec![0; num_nodes + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v` as a sorted slice.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The CSR edge-array range of `v`'s out-arcs; parallel arrays (edge
    /// probabilities in [`crate::ProbGraph`]) are indexed by this range.
    #[inline]
    pub fn edge_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// The target of the CSR edge at position `e`.
    #[inline]
    pub fn edge_target(&self, e: usize) -> NodeId {
        self.targets[e]
    }

    /// Iterates over all arcs as `(source, target)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates over node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Whether arc `(u, v)` exists (binary search on the sorted list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// The reverse graph (every arc flipped). In-degree of `v` here equals
    /// `reverse.out_degree(v)`; the weighted-cascade model needs this.
    pub fn reverse(&self) -> DiGraph {
        let n = self.num_nodes();
        let mut counts = vec![0usize; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; self.targets.len()];
        for u in 0..n {
            for &v in self.out_neighbors(u as NodeId) {
                targets[cursor[v as usize]] = u as NodeId;
                cursor[v as usize] += 1;
            }
        }
        let mut g = DiGraph { offsets, targets };
        for v in 0..n {
            let r = g.edge_range(v as NodeId);
            g.targets[r].sort_unstable();
        }
        g
    }

    /// In-degrees of every node (one pass, no reverse materialization).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.num_nodes()];
        for &t in &self.targets {
            deg[t as usize] += 1;
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(3, 1));
    }

    #[test]
    fn neighbor_lists_are_sorted_regardless_of_input_order() {
        let g = DiGraph::from_edges(3, &[(0, 2), (0, 1), (2, 0), (2, 1)]).unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_neighbors(2), &[0, 1]);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let err = DiGraph::from_edges(2, &[(0, 2)]).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            }
        );
        // Source endpoint checked too.
        assert!(DiGraph::from_edges(2, &[(5, 0)]).is_err());
    }

    #[test]
    fn edges_iterator_covers_all_arcs() {
        let g = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn reverse_flips_arcs() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), 4);
        assert_eq!(r.out_neighbors(3), &[1, 2]);
        assert_eq!(r.out_neighbors(0), &[] as &[NodeId]);
        assert_eq!(r.reverse(), g, "double reverse is identity");
    }

    #[test]
    fn in_degrees_match_reverse_out_degrees() {
        let g = diamond();
        let deg = g.in_degrees();
        let r = g.reverse();
        for v in g.nodes() {
            assert_eq!(deg[v as usize], r.out_degree(v));
        }
        assert_eq!(deg, vec![0, 1, 1, 2]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = DiGraph::empty(3);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(2), &[] as &[NodeId]);
        let g0 = DiGraph::empty(0);
        assert_eq!(g0.num_nodes(), 0);
        assert_eq!(g0.edges().count(), 0);
    }

    #[test]
    fn from_csr_parts_matches_from_edges() {
        let g = diamond();
        let rebuilt = DiGraph::from_csr_parts(vec![0, 2, 3, 4, 4], vec![1, 2, 3, 3]);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn self_loops_and_parallel_edges_kept() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[0, 1, 1]);
    }
}
