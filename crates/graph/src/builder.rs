//! Incremental graph construction with optional per-edge payloads.
//!
//! [`GraphBuilder`] accumulates arcs (optionally weighted), deduplicates
//! them, and produces a [`DiGraph`] — plus, when weights were supplied, the
//! probability vector aligned with the CSR edge order that
//! [`crate::ProbGraph`] requires.

use crate::{DiGraph, GraphError, NodeId, ProbGraph};

/// Accumulates arcs and builds CSR graphs.
///
/// ```
/// use soi_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(0, 1); // duplicate, collapsed at build time
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            keep_self_loops: false,
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Keeps self-loops instead of dropping them (default: dropped — a
    /// self-loop never changes a cascade, the source is already active).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Adds an unweighted arc `(u, v)` (weight recorded as 1.0).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v, 1.0));
    }

    /// Adds a weighted arc; the weight becomes the edge probability when
    /// building a [`ProbGraph`].
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, p: f64) {
        self.edges.push((u, v, p));
    }

    /// Adds the symmetric pair `(u, v)` and `(v, u)` with weight `p`
    /// (undirected-graph convention from §6.1 of the paper).
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, p: f64) {
        self.edges.push((u, v, p));
        self.edges.push((v, u, p));
    }

    /// Number of arcs accumulated so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Deduplicated, sorted arc list; for duplicate arcs the *maximum*
    /// weight is kept (two influence channels: keep the stronger estimate).
    fn canonical_edges(&self) -> Result<Vec<(NodeId, NodeId, f64)>, GraphError> {
        for &(u, v, _) in &self.edges {
            for w in [u, v] {
                if w as usize >= self.num_nodes {
                    return Err(GraphError::NodeOutOfRange {
                        node: w,
                        num_nodes: self.num_nodes,
                    });
                }
            }
        }
        let mut es: Vec<_> = self
            .edges
            .iter()
            .filter(|&&(u, v, _)| self.keep_self_loops || u != v)
            .copied()
            .collect();
        es.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(a.2.total_cmp(&b.2)));
        es.dedup_by(|next, prev| {
            if (next.0, next.1) == (prev.0, prev.1) {
                prev.2 = prev.2.max(next.2);
                true
            } else {
                false
            }
        });
        Ok(es)
    }

    /// Builds a plain [`DiGraph`], discarding weights.
    pub fn build(&self) -> Result<DiGraph, GraphError> {
        let es = self.canonical_edges()?;
        let pairs: Vec<(NodeId, NodeId)> = es.iter().map(|&(u, v, _)| (u, v)).collect();
        DiGraph::from_edges(self.num_nodes, &pairs)
    }

    /// Builds a [`ProbGraph`] using the accumulated weights as edge
    /// probabilities. Fails if any weight is outside `(0, 1]`.
    pub fn build_prob(&self) -> Result<ProbGraph, GraphError> {
        let es = self.canonical_edges()?;
        let pairs: Vec<(NodeId, NodeId)> = es.iter().map(|&(u, v, _)| (u, v)).collect();
        let graph = DiGraph::from_edges(self.num_nodes, &pairs)?;
        // canonical_edges sorts by (u, v), which is exactly CSR order.
        let probs: Vec<f64> = es.iter().map(|&(_, _, p)| p).collect();
        ProbGraph::new(graph, probs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_max_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 0.2);
        b.add_weighted_edge(0, 1, 0.7);
        b.add_weighted_edge(0, 1, 0.5);
        let pg = b.build_prob().unwrap();
        assert_eq!(pg.graph().num_edges(), 1);
        assert_eq!(pg.edge_prob_between(0, 1), Some(0.7));
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.build().unwrap().num_edges(), 1);

        let mut b = GraphBuilder::new(2).keep_self_loops(true);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.build().unwrap().num_edges(), 2);
    }

    #[test]
    fn undirected_adds_both_arcs() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 2, 0.4);
        let pg = b.build_prob().unwrap();
        assert_eq!(pg.graph().num_edges(), 2);
        assert_eq!(pg.edge_prob_between(0, 2), Some(0.4));
        assert_eq!(pg.edge_prob_between(2, 0), Some(0.4));
    }

    #[test]
    fn out_of_range_reported() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 3);
        assert!(matches!(
            b.build(),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
    }

    #[test]
    fn invalid_probability_rejected_at_build_prob() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 1.5);
        assert!(matches!(
            b.build_prob(),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn prob_alignment_follows_csr_order() {
        let mut b = GraphBuilder::new(3);
        // Insert out of order; CSR order is (0,1),(0,2),(1,2).
        b.add_weighted_edge(1, 2, 0.3);
        b.add_weighted_edge(0, 2, 0.2);
        b.add_weighted_edge(0, 1, 0.1);
        let pg = b.build_prob().unwrap();
        assert_eq!(pg.edge_prob_between(0, 1), Some(0.1));
        assert_eq!(pg.edge_prob_between(0, 2), Some(0.2));
        assert_eq!(pg.edge_prob_between(1, 2), Some(0.3));
    }
}
