//! # soi-graph
//!
//! Graph substrate for the *Spheres of Influence* workspace:
//!
//! * [`DiGraph`] — compressed-sparse-row directed graphs with `u32` node ids,
//!   built via [`GraphBuilder`];
//! * [`ProbGraph`] — the paper's probabilistic graph `G = (V, E, p)` with an
//!   independent existence probability per arc (§2.1), including the
//!   *weighted cascade*, *fixed* and *trivalency* assignment models (§6.2);
//! * [`scc`] — iterative Tarjan strongly-connected components and the
//!   condensation DAG used by the cascade index (§4);
//! * [`transitive`] — transitive closure and transitive reduction of DAGs
//!   (Aho–Garey–Ullman), applied to condensations in Algorithm 1;
//! * [`reach`] — reachability with reusable scratch space (cascades in a
//!   possible world are exactly reachability sets, §2.2);
//! * [`gen`] — synthetic graph generators standing in for the paper's
//!   benchmark networks;
//! * [`io`] — plain-text edge-list serialization.

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod kcore;
pub mod pagerank;
pub mod prob;
pub mod reach;
pub mod scc;
pub mod stats;
pub mod transitive;

pub use builder::GraphBuilder;
pub use csr::DiGraph;
pub use prob::ProbGraph;
pub use reach::Reachability;
pub use scc::{Condensation, SccResult};

/// Node identifier. Graphs in this workspace are bounded to `u32::MAX`
/// nodes, which halves index memory versus `usize` on 64-bit targets.
pub type NodeId = u32;

/// Errors produced by graph construction and I/O.
#[derive(Debug, PartialEq)]
pub enum GraphError {
    /// An edge endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        num_nodes: usize,
    },
    /// An edge probability is outside `(0, 1]` or not finite.
    InvalidProbability {
        /// Edge position in input order.
        edge_index: usize,
        /// The offending value.
        value: f64,
    },
    /// The probability vector length differs from the edge count.
    ProbabilityArityMismatch {
        /// Number of edges in the graph.
        edges: usize,
        /// Number of probabilities supplied.
        probs: usize,
    },
    /// A parse error in edge-list input.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An underlying I/O failure (message form; `std::io::Error` is not
    /// `PartialEq`).
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidProbability { edge_index, value } => {
                write!(f, "edge #{edge_index}: probability {value} not in (0, 1]")
            }
            GraphError::ProbabilityArityMismatch { edges, probs } => {
                write!(f, "{edges} edges but {probs} probabilities")
            }
            GraphError::Parse { line, message } => write!(f, "line {line}: {message}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

impl From<soi_util::failpoint::Fault> for GraphError {
    fn from(fault: soi_util::failpoint::Fault) -> Self {
        GraphError::Io(fault.to_string())
    }
}

impl From<GraphError> for soi_util::SoiError {
    fn from(e: GraphError) -> Self {
        match e {
            GraphError::Parse { line, message } => soi_util::SoiError::Parse {
                context: String::new(),
                line,
                message,
            },
            GraphError::Io(m) => soi_util::SoiError::Io {
                context: String::new(),
                source: std::io::Error::other(m),
            },
            other => soi_util::SoiError::Invalid(other.to_string()),
        }
    }
}
