//! Reachability with reusable scratch space.
//!
//! In a deterministic possible world, the cascade from `s` is exactly the
//! set of nodes reachable from `s` (§2.2). This module provides an
//! iterative DFS/BFS whose visited array and work stack survive across
//! calls — the sampling loops call it once per (world, source) pair and
//! the allocation cost would otherwise dominate.

use crate::{DiGraph, NodeId};

/// Reusable reachability scratch: a visited epoch array plus a work stack.
///
/// Epoch-stamping avoids clearing the visited array between queries: a node
/// is "visited" iff its stamp equals the current epoch.
#[derive(Clone, Debug)]
pub struct Reachability {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl Reachability {
    /// Creates scratch space for graphs with up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Reachability {
            stamp: vec![0; num_nodes],
            epoch: 0,
            stack: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: reset stamps so stale equal-stamps cannot alias.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.stack.clear();
    }

    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Nodes reachable from `source` (including `source` itself), appended
    /// to `out` in visit order. `out` is cleared first.
    pub fn reachable_from(&mut self, g: &DiGraph, source: NodeId, out: &mut Vec<NodeId>) {
        self.multi_source(g, std::slice::from_ref(&source), out)
    }

    /// Nodes reachable from any of `sources` (union of cascades), appended
    /// to `out` in visit order. `out` is cleared first. Duplicate sources
    /// are fine.
    pub fn multi_source(&mut self, g: &DiGraph, sources: &[NodeId], out: &mut Vec<NodeId>) {
        self.begin();
        out.clear();
        for &s in sources {
            if self.visit(s) {
                out.push(s);
                self.stack.push(s);
            }
        }
        while let Some(v) = self.stack.pop() {
            for &w in g.out_neighbors(v) {
                if self.visit(w) {
                    out.push(w);
                    self.stack.push(w);
                }
            }
        }
    }

    /// Number of nodes reachable from `source` without materializing the
    /// set.
    pub fn count_reachable(&mut self, g: &DiGraph, source: NodeId) -> usize {
        self.begin();
        let mut count = 0usize;
        if self.visit(source) {
            count += 1;
            self.stack.push(source);
        }
        while let Some(v) = self.stack.pop() {
            for &w in g.out_neighbors(v) {
                if self.visit(w) {
                    count += 1;
                    self.stack.push(w);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut v: Vec<NodeId>) -> Vec<NodeId> {
        v.sort_unstable();
        v
    }

    #[test]
    fn single_source_reachability() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut r = Reachability::new(5);
        let mut out = Vec::new();
        r.reachable_from(&g, 0, &mut out);
        assert_eq!(sorted(out.clone()), vec![0, 1, 2]);
        r.reachable_from(&g, 3, &mut out);
        assert_eq!(sorted(out.clone()), vec![3, 4]);
        r.reachable_from(&g, 2, &mut out);
        assert_eq!(out, vec![2], "sink reaches only itself");
    }

    #[test]
    fn multi_source_union() {
        let g = DiGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5)]).unwrap();
        let mut r = Reachability::new(6);
        let mut out = Vec::new();
        r.multi_source(&g, &[0, 2], &mut out);
        assert_eq!(sorted(out.clone()), vec![0, 1, 2, 3]);
        // Duplicates in sources don't duplicate output.
        r.multi_source(&g, &[0, 0, 1], &mut out);
        assert_eq!(sorted(out.clone()), vec![0, 1]);
        // Empty source list -> empty cascade.
        r.multi_source(&g, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cycles_terminate() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut r = Reachability::new(3);
        let mut out = Vec::new();
        r.reachable_from(&g, 1, &mut out);
        assert_eq!(sorted(out), vec![0, 1, 2]);
    }

    #[test]
    fn count_matches_materialized() {
        let g = DiGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (1, 4), (5, 6)]).unwrap();
        let mut r = Reachability::new(7);
        let mut out = Vec::new();
        for s in 0..7 {
            r.reachable_from(&g, s, &mut out);
            assert_eq!(r.count_reachable(&g, s), out.len(), "source {s}");
        }
    }

    #[test]
    fn scratch_reuse_is_clean_across_many_queries() {
        let g = DiGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut r = Reachability::new(4);
        let mut out = Vec::new();
        for _ in 0..10_000 {
            r.reachable_from(&g, 0, &mut out);
            assert_eq!(sorted(out.clone()), vec![0, 1]);
            r.reachable_from(&g, 2, &mut out);
            assert_eq!(sorted(out.clone()), vec![2, 3]);
        }
    }
}
