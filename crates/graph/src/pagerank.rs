//! PageRank by power iteration.
//!
//! Used by the influence-maximization baseline suite (`soi-influence`):
//! degree and PageRank seeding are the standard cheap heuristics the
//! influence-maximization literature compares greedy methods against.

use crate::DiGraph;

/// Options for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iters: usize,
    /// L1 convergence tolerance.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iters: 100,
            tolerance: 1e-9,
        }
    }
}

/// PageRank scores, summing to 1. Dangling nodes (out-degree 0)
/// redistribute uniformly. Empty graphs return an empty vector.
pub fn pagerank(g: &DiGraph, config: &PageRankConfig) -> Vec<f64> {
    assert!((0.0..1.0).contains(&config.damping), "damping in [0, 1)");
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iters {
        let mut dangling_mass = 0.0;
        next.fill(0.0);
        for (u, &r) in rank.iter().enumerate() {
            let d = g.out_degree(u as u32);
            if d == 0 {
                dangling_mass += r;
            } else {
                let share = r / d as f64;
                for &v in g.out_neighbors(u as u32) {
                    next[v as usize] += share;
                }
            }
        }
        let teleport = (1.0 - config.damping) * uniform;
        let dangling_share = config.damping * dangling_mass * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new = teleport + dangling_share + config.damping * next[v];
            delta += (new - rank[v]).abs();
            rank[v] = new;
        }
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn ranks_sum_to_one_and_are_positive() {
        let mut rng = { soi_util::rng::Xoshiro256pp::seed_from_u64(1) };
        let g = gen::gnm(50, 200, &mut rng);
        let pr = pagerank(&g, &PageRankConfig::default());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let pr = pagerank(&gen::cycle(10), &PageRankConfig::default());
        for &x in &pr {
            assert!((x - 0.1).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn star_center_collects_rank() {
        // Reverse star: all leaves point to node 0.
        let edges: Vec<(u32, u32)> = (1..10).map(|i| (i, 0)).collect();
        let g = DiGraph::from_edges(10, &edges).unwrap();
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr[0] > 5.0 * pr[1], "hub {} vs leaf {}", pr[0], pr[1]);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "dangling hub handled: {sum}");
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pagerank(&DiGraph::empty(0), &PageRankConfig::default()).is_empty());
        let pr = pagerank(&DiGraph::empty(1), &PageRankConfig::default());
        assert!((pr[0] - 1.0).abs() < 1e-9);
    }
}
