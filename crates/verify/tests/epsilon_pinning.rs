//! Estimator pinning against the exact BDD spread oracle.
//!
//! [`soi_verify::exact_spread_bdd`] computes `σ(S)` exactly on small
//! graphs (≤ 25 edges), so every estimator in the workspace can be held
//! to a *declared* tolerance instead of a hand-waved one: Monte-Carlo
//! sampling and the cascade backend within a standard-error budget,
//! bottom-k sketches within their world-sampling noise, RIS seed quality
//! against the BDD-evaluated true optimum, and typical cascades exactly
//! on deterministic graphs (where the sphere of influence *is* the
//! reachability set). Every test is deterministic in its pinned seeds.

use soi_graph::{gen, NodeId, ProbGraph};
use soi_influence::{infmax_ris, BackendKind, SpreadBackend};
use soi_sampling::estimate_spread;
use soi_sketch::{ReachSketches, SketchConfig};
use soi_util::rng::Xoshiro256pp;
use soi_util::runtime::Deadline;
use soi_verify::exact_spread_bdd;

/// A pinned 8-node, 18-edge test graph — comfortably inside the oracle's
/// 25-edge budget, dense enough that spreads are non-trivial.
fn graph(p: f64) -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(41);
    ProbGraph::fixed(gen::gnm(8, 18, &mut rng), p).expect("graph")
}

#[test]
fn monte_carlo_estimate_is_within_declared_epsilon_of_bdd() {
    // One cascade size lies in [1, n], so its standard deviation is at
    // most n/2 and the mean of N samples has SE ≤ n / (2√N). We declare
    // ε = 5·SE — a > 5σ event on a pinned seed would mean estimator bias,
    // not noise.
    let samples = 20_000usize;
    for p in [0.3, 0.5, 0.8] {
        let pg = graph(p);
        let eps = 5.0 * pg.num_nodes() as f64 / (2.0 * (samples as f64).sqrt());
        for seeds in [vec![0], vec![1, 4], vec![0, 3, 6]] {
            let exact = exact_spread_bdd(&pg, &seeds).expect("oracle");
            let mc = estimate_spread(&pg, &seeds, samples, 9);
            assert!(
                (mc - exact).abs() <= eps,
                "p {p} seeds {seeds:?}: mc {mc} vs bdd {exact} (ε {eps})"
            );
        }
    }
}

#[test]
fn sketch_set_spread_is_within_declared_epsilon_of_bdd() {
    // With k > ℓ·n the bottom-k sketches are exhaustive, so set_spread is
    // the *exact* mean spread over the ℓ sampled worlds; the only error
    // left is world sampling, SE ≤ n / (2√ℓ). Declared ε = 5·SE.
    let worlds = 1024usize;
    let pg = graph(0.4);
    let sk = ReachSketches::build(
        &pg,
        SketchConfig {
            num_worlds: worlds,
            k: worlds * pg.num_nodes() + 1,
            seed: 7,
            ..SketchConfig::default()
        },
    );
    let eps = 5.0 * pg.num_nodes() as f64 / (2.0 * (worlds as f64).sqrt());
    for seeds in [vec![0], vec![2, 5], vec![1, 3, 7]] {
        let exact = exact_spread_bdd(&pg, &seeds).expect("oracle");
        let est = sk.set_spread(&seeds);
        assert!(
            (est - exact).abs() <= eps,
            "seeds {seeds:?}: sketch {est} vs bdd {exact} (ε {eps})"
        );
    }
}

#[test]
fn both_spread_backends_answer_within_declared_epsilon_of_bdd() {
    // The serving layer's backend dispatch, held to the same budgets as
    // the estimators it wraps: MC noise for the cascade arm, world
    // sampling for the (exhaustive-k) sketch arm.
    let pg = graph(0.5);
    let n = pg.num_nodes() as f64;
    let samples = 20_000usize;
    let worlds = 1024usize;
    let index = soi_index::CascadeIndex::build(
        &pg,
        soi_index::IndexConfig {
            num_worlds: worlds,
            seed: 7,
            ..soi_index::IndexConfig::default()
        },
    );
    let sketches = ReachSketches::build(
        &pg,
        SketchConfig {
            num_worlds: worlds,
            k: worlds * pg.num_nodes() + 1,
            seed: 7,
            ..SketchConfig::default()
        },
    );
    let backends = [
        (
            SpreadBackend::Cascade(std::sync::Arc::new(index)),
            5.0 * n / (2.0 * (samples as f64).sqrt()),
        ),
        (
            SpreadBackend::Sketch(std::sync::Arc::new(sketches)),
            5.0 * n / (2.0 * (worlds as f64).sqrt()),
        ),
    ];
    for (backend, eps) in &backends {
        for seeds in [vec![0], vec![1, 6]] {
            let exact = exact_spread_bdd(&pg, &seeds).expect("oracle");
            let est = backend
                .estimate_spread(&pg, &seeds, samples, 9, &Deadline::unlimited())
                .value();
            assert!(
                (est - exact).abs() <= *eps,
                "{} seeds {seeds:?}: {est} vs bdd {exact} (ε {eps})",
                backend.kind().name()
            );
        }
    }
}

#[test]
fn ris_seeds_are_near_optimal_under_the_bdd_oracle() {
    // Enumerate every size-2 seed set, score each *exactly* with the BDD
    // oracle, and demand RIS lands within 5% of the true optimum — far
    // inside its (1 − 1/e) guarantee, which dense RR sampling on a tiny
    // graph should beat easily. Its own spread estimate must also agree
    // with the oracle within coverage-sampling noise.
    let pg = graph(0.4);
    let n = pg.num_nodes() as NodeId;
    let mut best = 0.0f64;
    for a in 0..n {
        for b in (a + 1)..n {
            best = best.max(exact_spread_bdd(&pg, &[a, b]).expect("oracle"));
        }
    }
    let num_rr = 30_000usize;
    let result = infmax_ris(&pg, 2, num_rr, 9);
    let achieved = exact_spread_bdd(&pg, &result.seeds).expect("oracle");
    assert!(
        achieved >= 0.95 * best,
        "ris picked {:?} (σ {achieved}) vs optimum σ {best}",
        result.seeds
    );
    // RIS estimates σ as n · coverage; coverage of R sets has
    // SE ≤ √(1/(4R)), so the estimate's SE ≤ n / (2√R). Declared ε = 5·SE.
    let eps = 5.0 * pg.num_nodes() as f64 / (2.0 * (num_rr as f64).sqrt());
    let self_estimate = *result.spread_curve.last().expect("curve");
    assert!(
        (self_estimate - achieved).abs() <= eps,
        "ris self-estimate {self_estimate} vs bdd {achieved} (ε {eps})"
    );
}

#[test]
fn typical_cascade_is_the_exact_reachability_sphere_when_deterministic() {
    // With every probability 1 there is a single possible world, so the
    // sphere of influence *is* the reachability set and σ(S) its size —
    // the oracle pins the typical cascade with ε = 0.
    let config = soi_core::TypicalCascadeConfig {
        median_samples: 32,
        cost_samples: 32,
        ..soi_core::TypicalCascadeConfig::default()
    };
    for g in [gen::path(6), gen::star(6), gen::cycle(6)] {
        let pg = ProbGraph::fixed(g, 1.0).expect("graph");
        for source in [0 as NodeId, 1, 3] {
            let tc = soi_core::typical_cascade(&pg, source, &config);
            let sigma = exact_spread_bdd(&pg, &[source]).expect("oracle");
            assert_eq!(tc.size() as f64, sigma, "source {source}");
            assert_eq!(tc.expected_cost, 0.0, "deterministic sphere is stable");
        }
    }
    let pg = graph(1.0);
    for source in 0..pg.num_nodes() as NodeId {
        let tc = soi_core::typical_cascade(&pg, source, &config);
        let sigma = exact_spread_bdd(&pg, &[source]).expect("oracle");
        assert_eq!(tc.size() as f64, sigma, "source {source}");
    }
}

#[test]
fn backend_kinds_round_trip() {
    // Keeps this integration suite honest about the names it pins above.
    assert_eq!(BackendKind::parse("cascade"), Some(BackendKind::Cascade));
    assert_eq!(BackendKind::parse("sketch"), Some(BackendKind::Sketch));
}
