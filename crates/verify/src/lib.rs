//! Differential correctness harness for the spheres-of-influence
//! serving stack.
//!
//! Three pieces, each usable on its own and composed by `soi fuzz`:
//!
//! * [`bdd`] — an exact influence-spread oracle built on binary
//!   decision diagrams over live-edge worlds. Ground truth for graphs
//!   up to [`bdd::MAX_EDGES`] edges, validated bit-for-bit against
//!   `exact_spread_bruteforce` and used to pin the typical-cascade,
//!   RIS, and sketch estimators within declared tolerances.
//! * [`reference`] — a deliberately naive engine answering the full v2
//!   server protocol by direct recomputation: no cache, no worker
//!   pool, no persisted index. Slow and obviously correct, it is the
//!   spec the real `ServerEngine` is diffed against.
//! * [`stream`] + [`fuzz`] — a seeded generator of random graphs and
//!   weighted random request streams (valid, boundary, malformed, and
//!   control traffic), a replay-file format for pinning repros, and
//!   the differential driver that runs each stream against the real
//!   engine (in-process and over TCP through the real binary) and the
//!   reference, masks nondeterministic fields, asserts byte-identical
//!   answers, and shrinks any divergence to a minimal repro.
//!
//! Everything here is deterministic: the same `--seed` produces a
//! byte-identical stream and verdict on every run.

pub mod bdd;
pub mod fuzz;
pub mod reference;
pub mod stream;

pub use bdd::{exact_spread_bdd, exact_spread_bdd_stats, BddStats, MAX_EDGES, MAX_NODES};
pub use fuzz::{run_fuzz, run_replay, run_stream, FuzzConfig, FuzzReport, StreamVerdict};
pub use reference::ReferenceEngine;
pub use stream::{FuzzStream, StreamConfig};
