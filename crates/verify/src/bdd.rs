//! Exact influence spread via binary decision diagrams over live-edge
//! worlds.
//!
//! Under the independent-cascade live-edge view, the spread of a seed
//! set `S` is `σ(S) = Σ_v Pr[v is reachable from S]`, where each edge
//! `e` is independently live with probability `p_e`. For each target
//! node `t` this module builds a reduced, ordered decision diagram over
//! the edge variables (in the graph's CSR edge order — the same
//! enumeration [`soi_sampling::exact_spread_bruteforce`] walks) whose
//! paths to the `1` terminal are exactly the edge subsets in which `t`
//! is reachable from `S`. `Pr[t reachable]` then falls out of one
//! weighted bottom-up traversal, and node merging keeps the diagram
//! exponentially smaller than the `2^m` world enumeration: graphs of
//! ~25 edges are exact in microseconds where brute force stops at 20.
//!
//! Construction recurses on the state `(i, reached, pending)`:
//!
//! * `i` — the next edge variable to decide;
//! * `reached` — the closure of `S` under the live decided edges;
//! * `pending` — decided-live edges whose source is not yet reached
//!   (they fire retroactively if a later edge reaches their source).
//!
//! The state is closed (pending edges whose source became reachable are
//! folded into `reached`, edges whose target is already reached are
//! dropped) before memoization, so equivalent prefixes share one
//! diagram node. The unique table on `(var, lo, hi)` plus `lo == hi`
//! elision gives the usual reduced-BDD invariants, and because elided
//! variables provably do not affect the function, the probability
//! recurrence `P(node) = (1 - p_var)·P(lo) + p_var·P(hi)` needs no
//! level-skip correction.

use soi_graph::{NodeId, ProbGraph};
use soi_util::SoiError;
use std::collections::HashMap;

/// Largest edge count the oracle accepts (pending sets are `u32` edge
/// masks; beyond this the diagrams stop being "tiny" anyway).
pub const MAX_EDGES: usize = 25;

/// Largest node count the oracle accepts (`u64` reachability bitsets).
pub const MAX_NODES: usize = 64;

/// Terminal id of the constant-false diagram node.
const TERM0: u32 = 0;
/// Terminal id of the constant-true diagram node.
const TERM1: u32 = 1;

/// Size accounting for one [`exact_spread_bdd_stats`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Internal nodes of the largest per-target diagram.
    pub max_nodes: usize,
    /// Internal nodes summed over every per-target diagram.
    pub total_nodes: usize,
}

/// One per-target diagram under construction.
struct Builder<'a> {
    /// Edges in CSR order, as `(source, target)` pairs.
    edges: &'a [(NodeId, NodeId)],
    /// Bit of the node whose reachability this diagram decides.
    target_bit: u64,
    /// `(i, reached, pending) -> node id` — closed states only.
    states: HashMap<(u32, u64, u32), u32>,
    /// `(var, lo, hi) -> node id` reduction table.
    unique: HashMap<(u32, u32, u32), u32>,
    /// Internal nodes as `(var, lo, hi)`; ids offset by the terminals.
    nodes: Vec<(u32, u32, u32)>,
}

impl<'a> Builder<'a> {
    fn new(edges: &'a [(NodeId, NodeId)], target: NodeId) -> Self {
        Builder {
            edges,
            target_bit: 1u64 << target,
            states: HashMap::new(),
            unique: HashMap::new(),
            nodes: Vec::new(),
        }
    }

    /// Folds `pending` live edges into `reached` to a fixpoint and drops
    /// pending edges that can no longer contribute.
    fn close(&self, mut reached: u64, mut pending: u32) -> (u64, u32) {
        loop {
            let mut grew = false;
            let mut keep = 0u32;
            let mut bits = pending;
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (u, v) = self.edges[j];
                if reached & (1u64 << v) != 0 {
                    continue; // target already reached: edge is spent
                }
                if reached & (1u64 << u) != 0 {
                    reached |= 1u64 << v;
                    grew = true;
                } else {
                    keep |= 1u32 << j;
                }
            }
            pending = keep;
            if !grew {
                return (reached, pending);
            }
        }
    }

    /// Builds the sub-diagram for a closed state, returning its node id.
    fn build(&mut self, i: u32, reached: u64, pending: u32) -> u32 {
        if reached & self.target_bit != 0 {
            return TERM1;
        }
        if i as usize == self.edges.len() {
            return TERM0;
        }
        if let Some(&id) = self.states.get(&(i, reached, pending)) {
            return id;
        }
        let lo = self.build(i + 1, reached, pending);
        let (u, v) = self.edges[i as usize];
        let hi = {
            let (mut r, mut p) = (reached, pending);
            if r & (1u64 << v) == 0 {
                if r & (1u64 << u) != 0 {
                    r |= 1u64 << v;
                    let closed = self.close(r, p);
                    r = closed.0;
                    p = closed.1;
                } else {
                    p |= 1u32 << i;
                }
            }
            self.build(i + 1, r, p)
        };
        let id = if lo == hi {
            lo
        } else {
            match self.unique.get(&(i, lo, hi)) {
                Some(&id) => id,
                None => {
                    self.nodes.push((i, lo, hi));
                    let id = (self.nodes.len() - 1) as u32 + 2;
                    self.unique.insert((i, lo, hi), id);
                    id
                }
            }
        };
        self.states.insert((i, reached, pending), id);
        id
    }

    /// `Pr[diagram = 1]` by one bottom-up weighted pass. Children are
    /// always created before their parents, so ascending-id evaluation
    /// needs no recursion.
    fn probability(&self, root: u32, probs: &[f64]) -> f64 {
        if root == TERM0 {
            return 0.0;
        }
        if root == TERM1 {
            return 1.0;
        }
        let mut value = vec![0.0f64; self.nodes.len() + 2];
        value[TERM1 as usize] = 1.0;
        for (idx, &(var, lo, hi)) in self.nodes.iter().enumerate() {
            let p = probs[var as usize];
            value[idx + 2] = (1.0 - p) * value[lo as usize] + p * value[hi as usize];
        }
        value[root as usize]
    }
}

/// Checks the oracle's size caps and seed validity, returning the CSR
/// edge list.
fn oracle_edges(pg: &ProbGraph, seeds: &[NodeId]) -> Result<Vec<(NodeId, NodeId)>, SoiError> {
    let n = pg.num_nodes();
    let m = pg.num_edges();
    if n > MAX_NODES {
        return Err(SoiError::invalid(format!(
            "BDD oracle limited to {MAX_NODES} nodes (graph has {n})"
        )));
    }
    if m > MAX_EDGES {
        return Err(SoiError::invalid(format!(
            "BDD oracle limited to {MAX_EDGES} edges (graph has {m})"
        )));
    }
    if let Some(&bad) = seeds.iter().find(|&&s| (s as usize) >= n) {
        return Err(SoiError::invalid(format!(
            "seed {bad} out of range (graph has {n} nodes)"
        )));
    }
    let g = pg.graph();
    let mut edges = Vec::with_capacity(m);
    for u in g.nodes() {
        for &v in g.out_neighbors(u) {
            edges.push((u, v));
        }
    }
    Ok(edges)
}

/// Exact influence spread `σ(seeds)` of `pg` under the independent
/// live-edge model, computed by per-target decision diagrams. Errors on
/// graphs past the [`MAX_EDGES`]/[`MAX_NODES`] caps or seeds out of
/// range; duplicate seeds are fine (the seed set is a set).
pub fn exact_spread_bdd(pg: &ProbGraph, seeds: &[NodeId]) -> Result<f64, SoiError> {
    exact_spread_bdd_stats(pg, seeds).map(|(spread, _)| spread)
}

/// [`exact_spread_bdd`] additionally reporting diagram sizes.
pub fn exact_spread_bdd_stats(
    pg: &ProbGraph,
    seeds: &[NodeId],
) -> Result<(f64, BddStats), SoiError> {
    let edges = oracle_edges(pg, seeds)?;
    let probs = pg.probs();
    let mut seed_mask = 0u64;
    for &s in seeds {
        seed_mask |= 1u64 << s;
    }
    let mut total = 0.0f64;
    let mut stats = BddStats::default();
    for t in 0..pg.num_nodes() as NodeId {
        if seed_mask & (1u64 << t) != 0 {
            total += 1.0; // seeds reach themselves with probability 1
            continue;
        }
        if seed_mask == 0 {
            break; // no seeds: nothing is ever reached
        }
        let mut builder = Builder::new(&edges, t);
        let (reached, pending) = builder.close(seed_mask, 0);
        let root = builder.build(0, reached, pending);
        total += builder.probability(root, probs);
        stats.max_nodes = stats.max_nodes.max(builder.nodes.len());
        stats.total_nodes += builder.nodes.len();
    }
    Ok((total, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;
    use soi_sampling::spread::exact_spread_bruteforce;
    use soi_util::rng::Xoshiro256pp;

    /// Dyadic edge probabilities keep both the brute-force sum and the
    /// BDD recurrence exact in f64, so `==` is the right assertion.
    fn dyadic(pg: &ProbGraph, seeds: &[NodeId]) {
        let exact = exact_spread_bruteforce(pg, seeds);
        let bdd = exact_spread_bdd(pg, seeds).expect("bdd");
        assert_eq!(bdd, exact, "seeds {seeds:?}");
    }

    #[test]
    fn agrees_exactly_with_bruteforce_on_fixtures() {
        for p in [0.25, 0.5, 0.75, 1.0] {
            for g in [gen::path(6), gen::cycle(6), gen::star(6), gen::complete(4)] {
                let pg = ProbGraph::fixed(g, p).expect("graph");
                dyadic(&pg, &[0]);
                dyadic(&pg, &[0, 2]);
                dyadic(&pg, &[1, 3, 5 % pg.num_nodes() as NodeId]);
            }
        }
    }

    #[test]
    fn agrees_exactly_on_random_dyadic_graphs() {
        for trial in 0..8u64 {
            let mut rng = Xoshiro256pp::seed_from_u64(100 + trial);
            use soi_util::rng::Rng;
            let n = rng.random_range(3usize..9);
            let m = rng.random_range(2usize..19.min(n * (n - 1) + 1));
            let g = gen::gnm(n, m, &mut rng);
            let p = [0.25, 0.5, 0.75][trial as usize % 3];
            let pg = ProbGraph::fixed(g, p).expect("graph");
            let seeds: Vec<NodeId> = (0..n as NodeId)
                .filter(|s| s % 2 == trial as u32 % 2)
                .collect();
            dyadic(&pg, &seeds);
        }
    }

    #[test]
    fn agrees_within_float_noise_on_weighted_cascade() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let g = gen::gnm(8, 18, &mut rng);
        let pg = ProbGraph::weighted_cascade(g);
        for seeds in [vec![0], vec![0, 3], vec![1, 4, 6]] {
            let exact = exact_spread_bruteforce(&pg, &seeds);
            let bdd = exact_spread_bdd(&pg, &seeds).expect("bdd");
            assert!(
                (bdd - exact).abs() <= 1e-9 * exact.max(1.0),
                "seeds {seeds:?}: bdd {bdd} vs brute {exact}"
            );
        }
    }

    #[test]
    fn handles_graphs_past_the_bruteforce_cap() {
        // 24 edges: brute force would need 2^24 worlds and asserts at 20;
        // the diagrams stay tiny. Sanity-bound the answer instead.
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let g = gen::gnm(10, 24, &mut rng);
        let pg = ProbGraph::fixed(g, 0.5).expect("graph");
        let (spread, stats) = exact_spread_bdd_stats(&pg, &[0, 1]).expect("bdd");
        assert!((2.0..=10.0).contains(&spread), "{spread}");
        assert!(stats.total_nodes > 0);
        assert!(stats.max_nodes <= 4096, "diagrams stay small: {stats:?}");
    }

    #[test]
    fn empty_seed_set_and_closed_forms() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).expect("graph");
        assert_eq!(exact_spread_bdd(&pg, &[]).expect("empty"), 0.0);
        // Path 0→1→2→3 at p = 1/2: σ({0}) = 1 + 1/2 + 1/4 + 1/8.
        assert_eq!(exact_spread_bdd(&pg, &[0]).expect("path"), 1.875);
        // Full seed set: every node is its own seed.
        assert_eq!(exact_spread_bdd(&pg, &[0, 1, 2, 3]).expect("all"), 4.0);
    }

    #[test]
    fn caps_and_bad_seeds_are_typed_errors() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let big = ProbGraph::fixed(gen::gnm(12, MAX_EDGES + 1, &mut rng), 0.5).expect("graph");
        assert!(exact_spread_bdd(&big, &[0]).is_err());
        let pg = ProbGraph::fixed(gen::path(3), 0.5).expect("graph");
        assert!(exact_spread_bdd(&pg, &[7]).is_err());
    }
}
