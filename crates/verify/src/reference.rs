//! The naive reference engine: the v2 server protocol answered by
//! direct recomputation.
//!
//! [`ReferenceEngine`] answers every request the real daemon answers —
//! `typical-cascade`, `spread-estimate` and `infmax-tc` on both
//! backends, degraded modes, deadlines, and the control verbs — but
//! with none of the serving machinery: no LRU cache, no last-good
//! fallback, no worker pool, no persisted state. Every compute request
//! rebuilds its cascade index or sketch set from scratch and runs the
//! estimator serially. Slow and obviously correct, it is the executable
//! spec the differential fuzzer diffs the real [`soi_server`] stack
//! against: after masking ([`crate::fuzz`]) the two must agree byte for
//! byte.
//!
//! Line handling mirrors the daemon exactly: an over-long line answers
//! a typed `oversized-line` error, bytes that are not UTF-8 answer a
//! typed `malformed-json` error, blank lines are skipped, and a parsed
//! `shutdown` stops the stream after its `draining` acknowledgement —
//! the same contract `daemon::run_stdio` implements.

use soi_core::EngineRunOpts;
use soi_graph::ProbGraph;
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::BackendKind;
use soi_server::json::fmt_num;
use soi_server::protocol::{self, Request};
use soi_server::EngineConfig;
use soi_sketch::{ReachSketches, SketchConfig};
use soi_util::runtime::{Deadline, Outcome, StopReason};
use soi_util::{ProtoErrorKind, SoiError};
use std::collections::BTreeMap;

/// One answered line: the response (None for skipped blank lines) and
/// whether the stream stops here (a parsed `shutdown`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineAnswer {
    /// The encoded response line, without trailing newline.
    pub response: Option<String>,
    /// True after a parsed `shutdown` request: no further lines are
    /// answered, matching `run_stdio` returning.
    pub stop: bool,
}

/// Direct-recomputation reference for the v2 serving protocol.
pub struct ReferenceEngine {
    graphs: BTreeMap<String, ProbGraph>,
    config: EngineConfig,
    max_line: usize,
}

/// A computed payload fragment plus partial-progress accounting,
/// mirroring the real engine's `ExecOutput`.
struct RefOutput {
    payload: String,
    partial: Option<(u64, u64, StopReason)>,
}

impl RefOutput {
    fn complete(payload: String) -> Self {
        RefOutput {
            payload,
            partial: None,
        }
    }

    fn from_outcome<T>(outcome: &Outcome<T>, payload: String) -> Self {
        match outcome {
            Outcome::Completed(_) => RefOutput::complete(payload),
            Outcome::Partial {
                progress, reason, ..
            } => RefOutput {
                payload,
                partial: Some((progress.done, progress.total, *reason)),
            },
        }
    }
}

impl ReferenceEngine {
    /// A reference engine sharing the real engine's tuning (worlds,
    /// seed, default deadline, default sketch k) and line cap — these
    /// define the *answers*, so both sides must agree on them. The
    /// config's cache and thread knobs are ignored: the reference always
    /// recomputes, serially.
    pub fn new(config: EngineConfig, max_line: usize) -> Self {
        ReferenceEngine {
            graphs: BTreeMap::new(),
            config,
            max_line,
        }
    }

    /// Registers a graph under `name`, replacing any previous binding.
    pub fn add_graph(&mut self, name: impl Into<String>, pg: ProbGraph) {
        self.graphs.insert(name.into(), pg);
    }

    /// Answers one raw request line (terminator already stripped),
    /// mirroring the daemon's line handling end to end.
    pub fn answer_line(&self, raw: &[u8]) -> LineAnswer {
        if raw.len() > self.max_line {
            let err = SoiError::protocol(
                ProtoErrorKind::OversizedLine,
                format!("request line exceeds {} bytes", self.max_line),
            );
            return LineAnswer {
                response: Some(protocol::encode_error(None, &err)),
                stop: false,
            };
        }
        let Ok(line) = std::str::from_utf8(raw) else {
            let err = SoiError::protocol(
                ProtoErrorKind::MalformedJson,
                "request line is not valid UTF-8",
            );
            return LineAnswer {
                response: Some(protocol::encode_error(None, &err)),
                stop: false,
            };
        };
        if line.trim().is_empty() {
            return LineAnswer {
                response: None,
                stop: false,
            };
        }
        let envelope = match protocol::parse_request(line) {
            Err(err) => {
                return LineAnswer {
                    response: Some(protocol::encode_error(None, &err)),
                    stop: false,
                }
            }
            Ok(envelope) => envelope,
        };
        if envelope.req.is_control() {
            let stop = envelope.req == Request::Shutdown;
            return LineAnswer {
                response: Some(self.control_response(envelope.id, &envelope.req)),
                stop,
            };
        }
        let response = match self.execute(&envelope.req) {
            Ok(out) => match out.partial {
                None => protocol::encode_ok(envelope.id, &out.payload, 0),
                Some((done, total, reason)) => {
                    protocol::encode_partial(envelope.id, &out.payload, done, total, reason, 0)
                }
            },
            Err(err) => protocol::encode_error(Some(envelope.id), &err),
        };
        LineAnswer {
            response: Some(response),
            stop: false,
        }
    }

    /// Control verbs, mirroring the daemon's `control_response`. The
    /// `stats` payload is a placeholder — live counters are inherently
    /// process-local, so the differential driver compares stats
    /// responses on their envelope only.
    fn control_response(&self, id: u64, req: &Request) -> String {
        match req {
            Request::Health => protocol::encode_ok(
                id,
                &format!("\"ok\":true,\"graphs\":{}", self.graphs.len()),
                0,
            ),
            Request::Stats => protocol::encode_ok(id, "\"stats\":\"reference\"", 0),
            Request::Shutdown => protocol::encode_ok(id, "\"draining\":true", 0),
            _ => protocol::encode_error(
                Some(id),
                &SoiError::protocol(
                    ProtoErrorKind::BadField,
                    "rebalance is a router control; this daemon holds no shard map",
                ),
            ),
        }
    }

    fn graph(&self, name: &str) -> Result<&ProbGraph, SoiError> {
        self.graphs.get(name).ok_or_else(|| {
            SoiError::protocol(
                ProtoErrorKind::UnknownGraph,
                format!("graph {name:?} is not loaded"),
            )
        })
    }

    /// A fresh cascade index — built serially on every call, never
    /// cached. Serial and pooled builds are byte-identical by the
    /// workspace determinism invariant, so the answers still match a
    /// multi-threaded daemon.
    fn fresh_index(&self, pg: &ProbGraph) -> CascadeIndex {
        CascadeIndex::build(
            pg,
            IndexConfig {
                num_worlds: self.config.num_worlds,
                seed: self.config.seed,
                transitive_reduction: self.config.transitive_reduction,
                threads: 1,
            },
        )
    }

    /// Fresh reachability sketches, same policy as [`Self::fresh_index`].
    fn fresh_sketches(&self, pg: &ProbGraph, k: usize) -> ReachSketches {
        ReachSketches::build(
            pg,
            SketchConfig {
                num_worlds: self.config.num_worlds,
                k,
                seed: self.config.seed,
                threads: 1,
            },
        )
    }

    fn deadline(&self, requested: Option<u64>) -> Deadline {
        match requested.unwrap_or(self.config.default_deadline_ticks) {
            0 => Deadline::unlimited(),
            ticks => Deadline::ticks(ticks),
        }
    }

    fn execute(&self, req: &Request) -> Result<RefOutput, SoiError> {
        match req {
            Request::TypicalCascade {
                graph,
                source,
                deadline_ticks,
                ..
            } => {
                let pg = self.graph(graph)?;
                let index = self.fresh_index(pg);
                if (*source as usize) >= index.num_nodes() {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "source {source} out of range (graph has {} nodes)",
                            index.num_nodes()
                        ),
                    ));
                }
                let deadline = self.deadline(*deadline_ticks);
                let samples = index.cascades_of(*source);
                let outcome = soi_jaccard::median::jaccard_median_budgeted(
                    &samples,
                    &self.config.median,
                    &deadline,
                );
                let fit = outcome.value_ref();
                let payload = format!(
                    "\"sphere\":{},\"cost\":{}",
                    encode_nodes(&fit.median),
                    fmt_num(fit.cost),
                );
                Ok(RefOutput::from_outcome(&outcome, payload))
            }
            Request::SpreadEstimate {
                graph,
                seeds,
                samples,
                seed,
                deadline_ticks,
                degrade,
                backend,
                sketch_k,
            } => {
                let pg = self.graph(graph)?;
                if let Some(&bad) = seeds.iter().find(|&&s| (s as usize) >= pg.num_nodes()) {
                    return Err(SoiError::protocol(
                        ProtoErrorKind::BadField,
                        format!(
                            "seed {bad} out of range (graph has {} nodes)",
                            pg.num_nodes()
                        ),
                    ));
                }
                if *backend == BackendKind::Sketch {
                    let k = sketch_k.unwrap_or(self.config.sketch_k);
                    let sk = self.fresh_sketches(pg, k);
                    let spread = sk.set_spread(seeds);
                    let payload = format!("\"spread\":{},\"backend\":\"sketch\"", fmt_num(spread));
                    return Ok(RefOutput::complete(payload));
                }
                let budget = deadline_ticks.unwrap_or(self.config.default_deadline_ticks);
                if *degrade && budget > 0 && (budget as usize) < *samples {
                    let reduced = budget as usize;
                    let outcome = soi_sampling::estimate_spread_budgeted(
                        pg,
                        seeds,
                        reduced,
                        *seed,
                        &Deadline::unlimited(),
                    );
                    let payload = format!(
                        "\"spread\":{},\"samples_used\":{reduced},\"degraded\":true,\"degraded_mode\":\"reduced-samples\"",
                        fmt_num(*outcome.value_ref()),
                    );
                    return Ok(RefOutput::complete(payload));
                }
                let deadline = self.deadline(*deadline_ticks);
                let outcome =
                    soi_sampling::estimate_spread_budgeted(pg, seeds, *samples, *seed, &deadline);
                let payload = format!("\"spread\":{}", fmt_num(*outcome.value_ref()));
                Ok(RefOutput::from_outcome(&outcome, payload))
            }
            Request::InfmaxTc {
                graph,
                k,
                deadline_ticks,
                backend,
                sketch_k,
                ..
            } => {
                let pg = self.graph(graph)?;
                let deadline = self.deadline(*deadline_ticks);
                if *backend == BackendKind::Sketch {
                    let sketch_k = sketch_k.unwrap_or(self.config.sketch_k);
                    let sk = self.fresh_sketches(pg, sketch_k);
                    let outcome = soi_sketch::select_seeds(pg, &sk, *k, &deadline);
                    let run = outcome.value_ref();
                    let coverage: Vec<String> = run.coverage.iter().map(|&c| fmt_num(c)).collect();
                    let payload = format!(
                        "\"seeds\":{},\"coverage\":[{}],\"backend\":\"sketch\"",
                        encode_nodes(&run.seeds),
                        coverage.join(","),
                    );
                    return Ok(RefOutput::from_outcome(&outcome, payload));
                }
                let index = self.fresh_index(pg);
                let opts = EngineRunOpts {
                    deadline: &deadline,
                    checkpoint: None,
                    checkpoint_every: 64,
                    resume: false,
                };
                let outcome = soi_core::all_typical_cascades_resumable(
                    &index,
                    &self.config.median,
                    1,
                    &opts,
                )?;
                let spheres: Vec<Vec<u32>> = outcome
                    .value_ref()
                    .iter()
                    .map(|tc| tc.median.clone())
                    .collect();
                let run = soi_influence::infmax_tc(&spheres, *k, 0);
                let coverage: Vec<String> =
                    run.coverage_curve.iter().map(|&c| fmt_num(c)).collect();
                let payload = format!(
                    "\"seeds\":{},\"coverage\":[{}]",
                    encode_nodes(&run.seeds),
                    coverage.join(","),
                );
                Ok(RefOutput::from_outcome(&outcome, payload))
            }
            control => Err(SoiError::invalid(format!(
                "control request {:?} routed to the reference compute path",
                control.type_name()
            ))),
        }
    }
}

fn encode_nodes(nodes: &[u32]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;
    use soi_obs::report::mask_wall_clock;
    use soi_server::ServerEngine;
    use soi_util::rng::Xoshiro256pp;

    fn pair() -> (ServerEngine, ReferenceEngine) {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let pg = ProbGraph::fixed(gen::gnm(24, 72, &mut rng), 0.3).expect("graph");
        let config = EngineConfig {
            num_worlds: 12,
            seed: 5,
            sketch_k: 8,
            ..EngineConfig::default()
        };
        let mut real = ServerEngine::new(config);
        real.add_graph("g", pg.clone());
        let mut reference = ReferenceEngine::new(config, protocol::DEFAULT_MAX_LINE);
        reference.add_graph("g", pg);
        (real, reference)
    }

    /// Runs one line through the real stdio daemon and the reference,
    /// asserting masked byte equality.
    fn diff_line(real: &ServerEngine, reference: &ReferenceEngine, line: &str) {
        let mut out = Vec::new();
        let input = format!("{line}\n{}\n", r#"{"v":1,"id":9999,"type":"shutdown"}"#);
        soi_server::run_stdio(
            real,
            protocol::DEFAULT_MAX_LINE,
            &mut input.as_bytes(),
            &mut out,
        )
        .expect("stdio");
        let sut = String::from_utf8(out).expect("utf8");
        let sut_first = sut.lines().next().expect("one response");
        let got = reference.answer_line(line.as_bytes());
        let want = got.response.expect("reference answered");
        assert_eq!(
            mask_wall_clock(sut_first),
            mask_wall_clock(&want),
            "line {line}"
        );
    }

    #[test]
    fn compute_answers_match_the_real_daemon() {
        let _g = soi_util::failpoint::test_guard();
        let (real, reference) = pair();
        for line in [
            r#"{"v":1,"id":1,"type":"typical-cascade","graph":"g","source":3}"#,
            r#"{"v":1,"id":2,"type":"spread-estimate","graph":"g","seeds":[0,1],"samples":16,"seed":7}"#,
            r#"{"v":1,"id":3,"type":"spread-estimate","graph":"g","seeds":[2],"samples":16,"seed":7,"backend":"sketch"}"#,
            r#"{"v":1,"id":4,"type":"infmax-tc","graph":"g","k":2}"#,
            r#"{"v":1,"id":5,"type":"infmax-tc","graph":"g","k":2,"backend":"sketch","sketch_k":4}"#,
            r#"{"v":1,"id":6,"type":"spread-estimate","graph":"g","seeds":[0],"samples":64,"seed":3,"deadline_ticks":8,"degrade":true}"#,
            r#"{"v":1,"id":7,"type":"spread-estimate","graph":"g","seeds":[0],"samples":64,"seed":3,"deadline_ticks":8}"#,
            r#"{"v":1,"id":8,"type":"typical-cascade","graph":"missing","source":0}"#,
            r#"{"v":1,"id":9,"type":"typical-cascade","graph":"g","source":99}"#,
            r#"{"v":1,"id":10,"type":"health"}"#,
            r#"{"v":1,"id":11,"type":"rebalance","graph":"g","shard":0}"#,
            r#"not json"#,
            r#"{"v":7,"id":12,"type":"health"}"#,
        ] {
            diff_line(&real, &reference, line);
        }
    }

    #[test]
    fn line_handling_mirrors_the_daemon() {
        let (_, reference) = pair();
        let blank = reference.answer_line(b"   ");
        assert_eq!(blank.response, None);
        assert!(!blank.stop);
        let shutdown = reference.answer_line(br#"{"v":1,"id":1,"type":"shutdown"}"#);
        assert!(shutdown.stop);
        assert!(shutdown
            .response
            .expect("ack")
            .contains("\"draining\":true"));
        let mut reference = reference;
        reference.max_line = 16;
        let oversized = reference.answer_line(&[b'x'; 32]);
        let resp = oversized.response.expect("typed");
        assert!(
            resp.contains("\"kind\":\"oversized-line\"") && resp.contains("\"id\":null"),
            "{resp}"
        );
        let invalid = reference.answer_line(&[0xff, 0xfe, b'{']);
        let resp = invalid.response.expect("typed");
        assert!(resp.contains("\"kind\":\"malformed-json\""), "{resp}");
    }
}
