//! Seeded fuzz-stream generation and the replay-file format.
//!
//! A [`FuzzStream`] is everything one differential run needs: a random
//! probabilistic graph (always registered under the name `net`), the
//! engine tuning both sides must share, and a sequence of raw request
//! *lines* — roughly 60% valid compute traffic, 15% boundary cases
//! (out-of-range ids, tiny deadlines, unknown graphs), 10% control
//! verbs, and 15% malformed bytes (broken JSON, duplicate and unknown
//! fields, non-finite numbers, invalid UTF-8, oversized lines). The
//! final line is always a `shutdown` request, so a stdio daemon, a TCP
//! daemon, and the reference all stop at the same point.
//!
//! Generation is a pure function of the seed: the same seed produces
//! byte-identical lines on every run, which is what makes a printed
//! `soi fuzz --seed N` invocation a complete repro. For divergences the
//! stream also round-trips through a plain-text replay file
//! ([`FuzzStream::serialize`] / [`FuzzStream::parse`]): edges carry
//! their exact probabilities (f64 `Display` is shortest-roundtrip) and
//! request lines are byte-escaped, so a parsed replay is byte-identical
//! to the stream that produced it.

use soi_graph::{gen, DiGraph, NodeId, ProbGraph};
use soi_util::rng::{Rng, Xoshiro256pp};
use soi_util::SoiError;

/// Tuning for stream generation. The engine fields are baked into the
/// stream (and its replay file) because they define the *answers*, not
/// just the questions.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Worlds ℓ for both engines' index and sketch builds.
    pub worlds: usize,
    /// Master sampling seed for both engines.
    pub engine_seed: u64,
    /// Default sketch size `k` for both engines.
    pub sketch_k: usize,
    /// Line-length cap for both engines (small, so the oversized arm
    /// does not need megabyte lines).
    pub max_line: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            worlds: 8,
            engine_seed: 42,
            sketch_k: 8,
            max_line: 384,
        }
    }
}

/// One generated (or replayed) fuzz stream.
#[derive(Clone, Debug)]
pub struct FuzzStream {
    /// The seed this stream was generated from (0 for hand-built
    /// replays; informational only).
    pub seed: u64,
    /// Engine tuning shared by every arm.
    pub config: StreamConfig,
    /// The graph, registered under the name `net` on every arm.
    pub pg: ProbGraph,
    /// Raw request lines, without terminators. The last line is always
    /// a parsed `shutdown`.
    pub lines: Vec<Vec<u8>>,
}

/// The graph name every stream registers and queries.
pub const GRAPH_NAME: &str = "net";

impl FuzzStream {
    /// Generates the stream for `seed` — a pure function of its
    /// arguments.
    pub fn generate(seed: u64, config: StreamConfig) -> Result<Self, SoiError> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let n = rng.random_range(4usize..17);
        let m = rng.random_range(n..3 * n + 1).min(n * (n - 1));
        let g = gen::gnm(n, m, &mut rng);
        let pg = match rng.random_range(0u32..3) {
            0 => ProbGraph::fixed(g, 0.25),
            1 => ProbGraph::fixed(g, 0.5),
            _ => Ok(ProbGraph::weighted_cascade(g)),
        }
        .map_err(|e| SoiError::invalid(format!("generated graph rejected: {e}")))?;
        let mut lines = Vec::new();
        let requests = rng.random_range(8usize..25);
        let mut reqs = RequestGen {
            rng,
            n: n as NodeId,
            next_id: 1,
            max_line: config.max_line,
        };
        for _ in 0..requests {
            let roll = reqs.rng.random_range(0u32..100);
            let line = if roll < 60 {
                reqs.valid_compute()
            } else if roll < 75 {
                reqs.boundary()
            } else if roll < 85 {
                reqs.control()
            } else {
                reqs.malformed()
            };
            lines.push(line);
        }
        lines.push(reqs.request("shutdown", String::new()).into_bytes());
        Ok(FuzzStream {
            seed,
            config,
            pg,
            lines,
        })
    }

    /// Serializes the stream to the plain-text replay format.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("max_line {}\n", self.config.max_line));
        out.push_str(&format!("worlds {}\n", self.config.worlds));
        out.push_str(&format!("engine_seed {}\n", self.config.engine_seed));
        out.push_str(&format!("sketch_k {}\n", self.config.sketch_k));
        out.push_str(&format!("nodes {}\n", self.pg.num_nodes()));
        out.push_str(&format!("edges {}\n", self.pg.num_edges()));
        for u in self.pg.graph().nodes() {
            for (v, p) in self.pg.out_arcs(u) {
                out.push_str(&format!("e {u} {v} {p}\n"));
            }
        }
        for line in &self.lines {
            out.push_str(&format!("l {}\n", escape_bytes(line)));
        }
        out
    }

    /// Parses a replay file produced by [`Self::serialize`] (or written
    /// by hand). The edge list is in CSR order, so the rebuilt graph
    /// assigns every edge the same index — and therefore the same
    /// sampled worlds — as the original.
    pub fn parse(text: &str) -> Result<Self, SoiError> {
        soi_util::failpoint!("verify.replay.read");
        let mut scalars = ReplayScalars::default();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        let mut lines: Vec<Vec<u8>> = Vec::new();
        for (no, raw) in text.lines().enumerate() {
            let raw = raw.trim_end();
            if raw.is_empty() || raw.starts_with('#') {
                continue;
            }
            let bad =
                |what: &str| SoiError::invalid(format!("replay line {}: {what}: {raw:?}", no + 1));
            let (key, rest) = raw.split_once(' ').ok_or_else(|| bad("missing value"))?;
            match key {
                "seed" => scalars.seed = Some(parse_u64(rest).ok_or_else(|| bad("bad seed"))?),
                "max_line" => {
                    scalars.max_line =
                        Some(parse_u64(rest).ok_or_else(|| bad("bad max_line"))? as usize)
                }
                "worlds" => {
                    scalars.worlds =
                        Some(parse_u64(rest).ok_or_else(|| bad("bad worlds"))? as usize)
                }
                "engine_seed" => {
                    scalars.engine_seed =
                        Some(parse_u64(rest).ok_or_else(|| bad("bad engine_seed"))?)
                }
                "sketch_k" => {
                    scalars.sketch_k =
                        Some(parse_u64(rest).ok_or_else(|| bad("bad sketch_k"))? as usize)
                }
                "nodes" => {
                    scalars.nodes = Some(parse_u64(rest).ok_or_else(|| bad("bad nodes"))? as usize)
                }
                "edges" => {
                    scalars.edges = Some(parse_u64(rest).ok_or_else(|| bad("bad edges"))? as usize)
                }
                "e" => {
                    let mut parts = rest.split(' ');
                    let u = parts
                        .next()
                        .and_then(parse_u64)
                        .ok_or_else(|| bad("bad edge source"))?;
                    let v = parts
                        .next()
                        .and_then(parse_u64)
                        .ok_or_else(|| bad("bad edge target"))?;
                    let p: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| bad("bad edge probability"))?;
                    edges.push((u as NodeId, v as NodeId));
                    probs.push(p);
                }
                "l" => lines.push(unescape_bytes(rest).ok_or_else(|| bad("bad escape"))?),
                _ => return Err(bad("unknown key")),
            }
        }
        let nodes = scalars
            .nodes
            .ok_or_else(|| SoiError::invalid("replay file missing nodes"))?;
        if scalars.edges != Some(edges.len()) {
            return Err(SoiError::invalid(format!(
                "replay file declares {:?} edges but lists {}",
                scalars.edges,
                edges.len()
            )));
        }
        let g = DiGraph::from_edges(nodes, &edges)
            .map_err(|e| SoiError::invalid(format!("replay graph: {e}")))?;
        let pg = ProbGraph::new(g, probs)
            .map_err(|e| SoiError::invalid(format!("replay probabilities: {e}")))?;
        let defaults = StreamConfig::default();
        Ok(FuzzStream {
            seed: scalars.seed.unwrap_or(0),
            config: StreamConfig {
                worlds: scalars.worlds.unwrap_or(defaults.worlds),
                engine_seed: scalars.engine_seed.unwrap_or(defaults.engine_seed),
                sketch_k: scalars.sketch_k.unwrap_or(defaults.sketch_k),
                max_line: scalars.max_line.unwrap_or(defaults.max_line),
            },
            pg,
            lines,
        })
    }

    /// The stream as one byte payload: every line newline-terminated,
    /// ready for a stdio daemon's stdin or one TCP write.
    pub fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for line in &self.lines {
            out.extend_from_slice(line);
            out.push(b'\n');
        }
        out
    }
}

#[derive(Default)]
struct ReplayScalars {
    seed: Option<u64>,
    max_line: Option<usize>,
    worlds: Option<usize>,
    engine_seed: Option<u64>,
    sketch_k: Option<usize>,
    nodes: Option<usize>,
    edges: Option<usize>,
}

fn parse_u64(s: &str) -> Option<u64> {
    s.parse().ok()
}

/// Escapes raw line bytes for the replay file: printable ASCII except
/// backslash is literal, everything else is `\xNN`.
fn escape_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len());
    for &b in bytes {
        if b == b'\\' {
            out.push_str("\\\\");
        } else if (0x20..0x7f).contains(&b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("\\x{b:02x}"));
        }
    }
    out
}

/// Inverse of [`escape_bytes`]; `None` on a malformed escape.
fn unescape_bytes(text: &str) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' {
            match bytes.get(i + 1)? {
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                b'x' => {
                    let hex = text.get(i + 2..i + 4)?;
                    out.push(u8::from_str_radix(hex, 16).ok()?);
                    i += 4;
                }
                _ => return None,
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

/// Per-stream request-line generator.
struct RequestGen {
    rng: Xoshiro256pp,
    n: NodeId,
    next_id: u64,
    max_line: usize,
}

impl RequestGen {
    /// A well-formed request envelope with the next sequential id.
    fn request(&mut self, type_name: &str, fields: String) -> String {
        let id = self.next_id;
        self.next_id += 1;
        if fields.is_empty() {
            format!("{{\"v\":1,\"id\":{id},\"type\":\"{type_name}\"}}")
        } else {
            format!("{{\"v\":1,\"id\":{id},\"type\":\"{type_name}\",{fields}}}")
        }
    }

    fn node(&mut self) -> NodeId {
        self.rng.random_range(0..self.n)
    }

    fn seeds_field(&mut self) -> String {
        let count = self.rng.random_range(1usize..5);
        let seeds: Vec<String> = (0..count).map(|_| self.node().to_string()).collect();
        format!("[{}]", seeds.join(","))
    }

    /// `deadline_ticks`/`degrade`/`trace` suffix fields, each sometimes
    /// present.
    fn deadline_suffix(&mut self) -> String {
        let mut out = String::new();
        if self.rng.random_bool(0.4) {
            out.push_str(&format!(
                ",\"deadline_ticks\":{}",
                self.rng.random_range(1u64..33)
            ));
        }
        if self.rng.random_bool(0.3) {
            out.push_str(",\"degrade\":true");
        }
        if self.rng.random_bool(0.15) {
            out.push_str(",\"trace\":true");
        }
        out
    }

    /// Sketch-backend suffix, sometimes with an explicit `sketch_k`.
    fn backend_suffix(&mut self) -> String {
        if !self.rng.random_bool(0.35) {
            return String::new();
        }
        match self.rng.random_range(0u32..3) {
            0 => ",\"backend\":\"sketch\"".to_string(),
            1 => ",\"backend\":\"sketch\",\"sketch_k\":4".to_string(),
            _ => ",\"backend\":\"cascade\"".to_string(),
        }
    }

    fn valid_compute(&mut self) -> Vec<u8> {
        let line = match self.rng.random_range(0u32..10) {
            0..=2 => {
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"source\":{}{}",
                    self.node(),
                    self.deadline_suffix()
                );
                self.request("typical-cascade", fields)
            }
            3..=6 => {
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"seeds\":{},\"samples\":{},\"seed\":{}{}{}",
                    self.seeds_field(),
                    self.rng.random_range(1usize..65),
                    self.rng.random_range(0u64..1000),
                    self.deadline_suffix(),
                    self.backend_suffix()
                );
                self.request("spread-estimate", fields)
            }
            _ => {
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"k\":{}{}{}",
                    self.rng.random_range(1usize..5),
                    self.deadline_suffix(),
                    self.backend_suffix()
                );
                self.request("infmax-tc", fields)
            }
        };
        line.into_bytes()
    }

    fn boundary(&mut self) -> Vec<u8> {
        let n = self.n;
        let line = match self.rng.random_range(0u32..7) {
            0 => {
                let fields = format!("\"graph\":\"ghost\",\"source\":{}", self.node());
                self.request("typical-cascade", fields)
            }
            1 => {
                // Source exactly one past the last node.
                let fields = format!("\"graph\":\"{GRAPH_NAME}\",\"source\":{n}");
                self.request("typical-cascade", fields)
            }
            2 => {
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"seeds\":[{}],\"samples\":4",
                    n + self.rng.random_range(0..5)
                );
                self.request("spread-estimate", fields)
            }
            3 => {
                // An explicit zero deadline means unlimited.
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"seeds\":{},\"samples\":64,\"seed\":7,\"deadline_ticks\":0",
                    self.seeds_field()
                );
                self.request("spread-estimate", fields)
            }
            4 => {
                // A one-tick budget: the smallest possible partial.
                let degrade = if self.rng.random_bool(0.5) {
                    ",\"degrade\":true"
                } else {
                    ""
                };
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"seeds\":{},\"samples\":64,\"seed\":7,\"deadline_ticks\":1{degrade}",
                    self.seeds_field()
                );
                self.request("spread-estimate", fields)
            }
            5 => {
                let fields = format!("\"graph\":\"{GRAPH_NAME}\",\"k\":0");
                self.request("infmax-tc", fields)
            }
            _ => {
                // k past the node count: greedy saturates early.
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"k\":{}{}",
                    n + 5,
                    self.backend_suffix()
                );
                self.request("infmax-tc", fields)
            }
        };
        line.into_bytes()
    }

    fn control(&mut self) -> Vec<u8> {
        let line = match self.rng.random_range(0u32..3) {
            0 => self.request("health", String::new()),
            1 => self.request("stats", String::new()),
            _ => {
                let fields = format!(
                    "\"graph\":\"{GRAPH_NAME}\",\"shard\":{}",
                    self.rng.random_range(0u64..4)
                );
                self.request("rebalance", fields)
            }
        };
        line.into_bytes()
    }

    fn malformed(&mut self) -> Vec<u8> {
        let id = self.next_id;
        self.next_id += 1;
        match self.rng.random_range(0u32..12) {
            0 => b"this is not json".to_vec(),
            1 => b"[1,2,3]".to_vec(),
            2 => format!("{{\"id\":{id},\"type\":\"health\"}}").into_bytes(),
            3 => format!("{{\"v\":9,\"id\":{id},\"type\":\"health\"}}").into_bytes(),
            4 => b"{\"v\":1,\"type\":\"health\"}".to_vec(),
            5 => format!("{{\"v\":1,\"id\":{id},\"type\":\"frobnicate\"}}").into_bytes(),
            6 => {
                // Duplicate key: rejected by the strict JSON layer.
                format!("{{\"v\":1,\"v\":1,\"id\":{id},\"type\":\"health\"}}").into_bytes()
            }
            7 => {
                // Unknown field: rejected by the per-type whitelist.
                format!("{{\"v\":1,\"id\":{id},\"type\":\"health\",\"bogus\":1}}").into_bytes()
            }
            8 => {
                // Non-finite number (1e999 overflows to infinity).
                format!(
                    "{{\"v\":1,\"id\":{id},\"type\":\"spread-estimate\",\"graph\":\"{GRAPH_NAME}\",\"seeds\":[0],\"samples\":1e999}}"
                )
                .into_bytes()
            }
            9 => {
                // Invalid UTF-8 in the middle of the line.
                let mut line = format!("{{\"v\":1,\"id\":{id},\"type\":\"").into_bytes();
                line.extend_from_slice(&[0xff, 0xfe]);
                line.extend_from_slice(b"\"}");
                line
            }
            10 => {
                // Oversized: one byte past the cap.
                vec![b'x'; self.max_line + 1]
            }
            _ => {
                // Wrong field types.
                format!(
                    "{{\"v\":1,\"id\":{id},\"type\":\"typical-cascade\",\"graph\":7,\"source\":\"zero\"}}"
                )
                .into_bytes()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_read_failpoint_is_a_typed_error() {
        let _guard = soi_util::failpoint::test_guard();
        let text = FuzzStream::generate(3, StreamConfig::default())
            .expect("gen")
            .serialize();
        soi_util::failpoint::install("verify.replay.read=error").expect("install");
        let err = FuzzStream::parse(&text).expect_err("armed parse must fault");
        assert!(
            err.to_string().contains("verify.replay.read"),
            "fault does not name its site: {err}"
        );
        soi_util::failpoint::clear();
        FuzzStream::parse(&text).expect("disarmed parse succeeds");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FuzzStream::generate(7, StreamConfig::default()).expect("gen");
        let b = FuzzStream::generate(7, StreamConfig::default()).expect("gen");
        assert_eq!(a.lines, b.lines);
        assert_eq!(a.serialize(), b.serialize());
        let c = FuzzStream::generate(8, StreamConfig::default()).expect("gen");
        assert_ne!(a.serialize(), c.serialize());
    }

    #[test]
    fn streams_end_in_shutdown_and_stay_bounded() {
        for seed in 0..24u64 {
            let s = FuzzStream::generate(seed, StreamConfig::default()).expect("gen");
            let last = s.lines.last().expect("non-empty");
            let text = std::str::from_utf8(last).expect("shutdown is ascii");
            assert!(text.contains("\"type\":\"shutdown\""), "{text}");
            assert!(
                !s.lines[..s.lines.len() - 1].iter().any(|l| {
                    std::str::from_utf8(l)
                        .map(|t| t.contains("\"type\":\"shutdown\""))
                        .unwrap_or(false)
                }),
                "shutdown only as the final line"
            );
            assert!(s.lines.len() >= 9 && s.lines.len() <= 25);
            assert!(s.pg.num_nodes() >= 4 && s.pg.num_nodes() <= 16);
        }
    }

    #[test]
    fn replay_round_trips_byte_identically() {
        for seed in [3u64, 11, 19] {
            let s = FuzzStream::generate(seed, StreamConfig::default()).expect("gen");
            let text = s.serialize();
            let back = FuzzStream::parse(&text).expect("parse");
            assert_eq!(back.seed, s.seed);
            assert_eq!(back.lines, s.lines);
            assert_eq!(back.pg.fingerprint(), s.pg.fingerprint());
            assert_eq!(back.serialize(), text);
        }
    }

    #[test]
    fn escaping_round_trips_arbitrary_bytes() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let escaped = escape_bytes(&bytes);
        assert_eq!(unescape_bytes(&escaped).expect("unescape"), bytes);
        assert!(!escaped.contains('\n'));
    }

    #[test]
    fn replay_parse_rejects_garbage() {
        assert!(FuzzStream::parse("nodes four\n").is_err());
        assert!(FuzzStream::parse("nodes 4\nedges 1\n").is_err());
        assert!(FuzzStream::parse("wat 1\n").is_err());
    }
}
