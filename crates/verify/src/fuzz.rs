//! The differential fuzzing driver: one stream, several arms, byte
//! equality after masking.
//!
//! Each generated [`FuzzStream`] is replayed against up to three arms:
//!
//! * **reference** — [`ReferenceEngine`], direct recomputation;
//! * **in-process** — the real [`soi_server::ServerEngine`] driven
//!   through `daemon::run_stdio`, the same code path the daemon's
//!   `--stdio` mode uses;
//! * **tcp** — the real `soi` binary, spawned with `soi serve` and
//!   driven over a real socket via [`soi_server::send_stream`].
//!
//! Every non-blank line produces exactly one response in every arm, so
//! responses align positionally. Before comparison each response is
//! **masked**: wall-clock fields are zeroed
//! (`soi_obs::report::mask_wall_clock`) and any `"trace":[…]` span is
//! stripped entirely (tick costs in the cache phase legitimately
//! differ between a cold reference and a warm SUT, and queue-wait wall
//! time differs between stdio and TCP). `stats` responses are compared
//! on their envelope only — live counters are process-local by design.
//! Everything else must match byte for byte.
//!
//! A divergence is shrunk by greedy line removal (the final `shutdown`
//! is always kept, so the arms keep terminating), the shrunk stream is
//! written as a replay file, and the exact
//! `soi fuzz --seed N --replay FILE` invocation is printed.
//!
//! When a `SOI_FAILPOINTS` spec is armed the reference is skipped —
//! failpoints make the SUT intentionally deviate from the naive spec —
//! and the two real arms (in-process vs TCP binary) are diffed against
//! each other instead: same engine, same faults, same bytes.

use crate::reference::ReferenceEngine;
use crate::stream::{FuzzStream, StreamConfig, GRAPH_NAME};
use soi_server::protocol::{self, Request};
use soi_server::{EngineConfig, ServerEngine};
use soi_util::SoiError;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One fuzzing campaign's configuration.
#[derive(Clone, Debug, Default)]
pub struct FuzzConfig {
    /// Seed of the first stream; stream `j` uses `seed + j`.
    pub seed: u64,
    /// Number of streams to run (0 is treated as 1).
    pub streams: usize,
    /// Path to the real `soi` binary for the TCP arm (None = skip it).
    pub soi_bin: Option<PathBuf>,
    /// Directory for replay files and transcripts on divergence.
    pub artifacts: Option<PathBuf>,
    /// `SOI_FAILPOINTS` spec armed in the TCP arm (reference skipped).
    pub failpoints: Option<String>,
    /// Stream generation tuning.
    pub stream: StreamConfig,
    /// Test-only: perturb the in-process arm's spread answers to prove
    /// the harness catches an estimator bug and shrinks its repro.
    pub inject_bug: bool,
}

/// The verdict for one stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamVerdict {
    /// The stream's generation seed.
    pub seed: u64,
    /// Request lines replayed.
    pub requests: usize,
    /// The first divergence found, if any.
    pub divergence: Option<Divergence>,
}

/// A masked byte-level disagreement between two arms.
#[derive(Clone, Debug, PartialEq)]
pub struct Divergence {
    /// The two arms that disagreed.
    pub arms: (&'static str, &'static str),
    /// Index of the first differing response.
    pub index: usize,
    /// The first arm's masked response at that index.
    pub left: String,
    /// The second arm's masked response at that index.
    pub right: String,
    /// The shrunk request lines (still ending in `shutdown`).
    pub shrunk_lines: Vec<Vec<u8>>,
    /// Where the shrunk replay file was written, when artifacts are on.
    pub replay_path: Option<PathBuf>,
}

/// The campaign summary.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzReport {
    /// Per-stream verdicts, in seed order.
    pub verdicts: Vec<StreamVerdict>,
}

impl FuzzReport {
    /// Number of streams that diverged.
    pub fn divergences(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| v.divergence.is_some())
            .count()
    }
}

/// Which engine answers a stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Arm {
    Reference,
    InProcess,
    Tcp,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::Reference => "reference",
            Arm::InProcess => "in-process",
            Arm::Tcp => "tcp-binary",
        }
    }
}

fn engine_config(stream: &FuzzStream) -> EngineConfig {
    EngineConfig {
        num_worlds: stream.config.worlds,
        seed: stream.config.engine_seed,
        sketch_k: stream.config.sketch_k,
        ..EngineConfig::default()
    }
}

/// Zeroes wall-clock fields and strips the `"trace":[…]` span — the
/// only legitimately nondeterministic parts of a response line.
pub fn mask_response(line: &str) -> String {
    strip_trace(&soi_obs::report::mask_wall_clock(line))
}

/// Removes a `,"trace":[…]` span (bracket-depth scan; trace arrays
/// contain no strings with brackets).
fn strip_trace(line: &str) -> String {
    let marker = ",\"trace\":[";
    let Some(start) = line.find(marker) else {
        return line.to_string();
    };
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = start + marker.len() - 1;
    while i < bytes.len() {
        match bytes[i] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return format!("{}{}", &line[..start], &line[i + 1..]);
                }
            }
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// True (with the request id) when `raw` parses as a `stats` request:
/// its response is compared on the envelope only.
fn is_stats_line(raw: &[u8]) -> (bool, u64) {
    let Ok(text) = std::str::from_utf8(raw) else {
        return (false, 0);
    };
    match protocol::parse_request(text) {
        Ok(envelope) if envelope.req == Request::Stats => (true, envelope.id),
        _ => (false, 0),
    }
}

/// Runs one arm over the stream, returning its raw response lines.
fn run_arm(stream: &FuzzStream, arm: Arm, config: &FuzzConfig) -> Result<Vec<String>, SoiError> {
    match arm {
        Arm::Reference => {
            let mut engine = ReferenceEngine::new(engine_config(stream), stream.config.max_line);
            engine.add_graph(GRAPH_NAME, stream.pg.clone());
            let mut responses = Vec::new();
            for line in &stream.lines {
                let answer = engine.answer_line(line);
                if let Some(resp) = answer.response {
                    responses.push(resp);
                }
                if answer.stop {
                    break;
                }
            }
            Ok(responses)
        }
        Arm::InProcess => {
            let mut engine = ServerEngine::new(engine_config(stream));
            engine.add_graph(GRAPH_NAME, stream.pg.clone());
            let payload = stream.payload();
            let mut out = Vec::new();
            soi_server::run_stdio(
                &engine,
                stream.config.max_line,
                &mut payload.as_slice(),
                &mut out,
            )?;
            let text = String::from_utf8(out)
                .map_err(|_| SoiError::invalid("daemon emitted non-UTF-8 output"))?;
            let mut responses: Vec<String> = text.lines().map(str::to_string).collect();
            if config.inject_bug {
                for resp in &mut responses {
                    // An off-by-prepended-digit estimator bug, test-only.
                    if let Some(at) = resp.find("\"spread\":") {
                        resp.insert(at + "\"spread\":".len(), '1');
                    }
                }
            }
            Ok(responses)
        }
        Arm::Tcp => run_tcp_arm(stream, config),
    }
}

/// Spawns the real binary, serves the stream's graph over TCP, drives
/// the whole payload through one connection, and collects responses.
fn run_tcp_arm(stream: &FuzzStream, config: &FuzzConfig) -> Result<Vec<String>, SoiError> {
    let soi_bin = config
        .soi_bin
        .as_ref()
        .ok_or_else(|| SoiError::invalid("TCP arm requested without a soi binary path"))?;
    let dir = std::env::temp_dir().join(format!("soi-fuzz-{}-{}", std::process::id(), stream.seed));
    std::fs::create_dir_all(&dir).map_err(|e| SoiError::io("fuzz temp dir", e))?;
    let result = run_tcp_arm_in(stream, config, soi_bin, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn run_tcp_arm_in(
    stream: &FuzzStream,
    config: &FuzzConfig,
    soi_bin: &Path,
    dir: &Path,
) -> Result<Vec<String>, SoiError> {
    let tsv = dir.join("net.tsv");
    let mut file = std::fs::File::create(&tsv).map_err(|e| SoiError::io("graph tsv", e))?;
    soi_graph::io::write_prob_graph(&stream.pg, &mut file)
        .map_err(|e| SoiError::io("write graph tsv", e))?;
    drop(file);
    let mut cmd = std::process::Command::new(soi_bin);
    cmd.arg("serve")
        .arg(format!("{GRAPH_NAME}={}", tsv.display()))
        .args(["--worlds", &stream.config.worlds.to_string()])
        .args(["--seed", &stream.config.engine_seed.to_string()])
        .args(["--sketch-k", &stream.config.sketch_k.to_string()])
        .args(["--max-line", &stream.config.max_line.to_string()])
        .args(["--port", "0"])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(spec) = &config.failpoints {
        cmd.env(soi_util::failpoint::ENV_VAR, spec);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| SoiError::io("spawn soi serve", e))?;
    let mut announce = String::new();
    {
        use std::io::BufRead;
        let stdout = child
            .stdout
            .as_mut()
            .ok_or_else(|| SoiError::invalid("serve stdout not captured"))?;
        std::io::BufReader::new(stdout)
            .read_line(&mut announce)
            .map_err(|e| SoiError::io("read announce", e))?;
    }
    let port: Option<u16> = announce
        .trim()
        .rsplit(':')
        .next()
        .and_then(|p| p.parse().ok());
    let responses = match port {
        Some(port) => soi_server::send_stream("127.0.0.1", port, &stream.payload()),
        None => Err(SoiError::invalid(format!(
            "bad serve announce line: {announce:?}"
        ))),
    };
    // The stream's final shutdown drains the daemon; kill covers
    // hand-written replays without one.
    let _ = child.kill();
    let _ = child.wait();
    responses
}

/// First masked difference between two arms' responses, if any.
fn first_divergence(
    lines: &[Vec<u8>],
    left: &[String],
    right: &[String],
) -> Option<(usize, String, String)> {
    let stats: Vec<(bool, u64)> = lines.iter().map(|l| is_stats_line(l)).collect();
    for i in 0..left.len().max(right.len()) {
        let (l, r) = (left.get(i), right.get(i));
        let (Some(l), Some(r)) = (l, r) else {
            return Some((
                i,
                l.cloned().unwrap_or_else(|| "<no response>".to_string()),
                r.cloned().unwrap_or_else(|| "<no response>".to_string()),
            ));
        };
        if let Some(&(true, id)) = stats.get(i) {
            // Stats payloads hold live process-local counters; only the
            // envelope and status must agree.
            let prefix = format!("{{\"v\":1,\"id\":{id},\"status\":\"ok\",");
            if l.starts_with(&prefix) && r.starts_with(&prefix) {
                continue;
            }
        }
        let (ml, mr) = (mask_response(l), mask_response(r));
        if ml != mr {
            return Some((i, ml, mr));
        }
    }
    None
}

/// Runs a pair of arms over `stream` and reports their first
/// divergence.
fn diff_arms(
    stream: &FuzzStream,
    pair: (Arm, Arm),
    config: &FuzzConfig,
) -> Result<Option<(usize, String, String)>, SoiError> {
    let left = run_arm(stream, pair.0, config)?;
    let right = run_arm(stream, pair.1, config)?;
    Ok(first_divergence(&stream.lines, &left, &right))
}

/// Greedy delta-debugging: repeatedly drop one line at a time (never
/// the final `shutdown`), keeping any removal under which the arm pair
/// still diverges, until no single removal preserves the divergence.
fn shrink(
    stream: &FuzzStream,
    pair: (Arm, Arm),
    config: &FuzzConfig,
) -> Result<FuzzStream, SoiError> {
    let mut shrunk = stream.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i + 1 < shrunk.lines.len() {
            let mut candidate = shrunk.clone();
            candidate.lines.remove(i);
            if diff_arms(&candidate, pair, config)?.is_some() {
                soi_obs::counter_add!("verify.shrink_steps", 1);
                shrunk = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            return Ok(shrunk);
        }
    }
}

/// Replays one stream across every configured arm pair; on divergence,
/// shrinks it and (when artifacts are on) writes the replay file and a
/// transcript of both sides.
pub fn run_stream(
    stream: &FuzzStream,
    config: &FuzzConfig,
    out: &mut impl Write,
) -> Result<StreamVerdict, SoiError> {
    soi_obs::counter_add!("verify.streams_run", 1);
    soi_obs::counter_add!("verify.requests_checked", stream.lines.len() as u64);
    let mut pairs: Vec<(Arm, Arm)> = Vec::new();
    if config.failpoints.is_none() {
        pairs.push((Arm::Reference, Arm::InProcess));
        if config.soi_bin.is_some() {
            pairs.push((Arm::Reference, Arm::Tcp));
        }
    } else if config.soi_bin.is_some() {
        pairs.push((Arm::InProcess, Arm::Tcp));
    } else {
        // Failpoints without a binary: nothing to diff against, but the
        // in-process arm must still answer every line without panicking.
        run_arm(stream, Arm::InProcess, config)?;
    }
    for pair in pairs {
        let Some((index, left, right)) = diff_arms(stream, pair, config)? else {
            continue;
        };
        soi_obs::counter_add!("verify.divergences", 1);
        let shrunk = shrink(stream, pair, config)?;
        let replay_path = if let Some(dir) = &config.artifacts {
            std::fs::create_dir_all(dir).map_err(|e| SoiError::io("artifacts dir", e))?;
            let path = dir.join(format!("divergence-seed-{}.replay", stream.seed));
            std::fs::write(&path, shrunk.serialize())
                .map_err(|e| SoiError::io("write replay", e))?;
            let transcript = dir.join(format!("divergence-seed-{}.transcript", stream.seed));
            let text = format!(
                "arms: {} vs {}\nfirst divergence at response {index}\n{}: {left}\n{}: {right}\n",
                pair.0.name(),
                pair.1.name(),
                pair.0.name(),
                pair.1.name(),
            );
            std::fs::write(&transcript, text).map_err(|e| SoiError::io("write transcript", e))?;
            Some(path)
        } else {
            None
        };
        writeln!(
            out,
            "divergence: {} vs {} at response {index} (stream seed {})",
            pair.0.name(),
            pair.1.name(),
            stream.seed
        )
        .map_err(|e| SoiError::io("report", e))?;
        writeln!(out, "  {}: {left}", pair.0.name()).map_err(|e| SoiError::io("report", e))?;
        writeln!(out, "  {}: {right}", pair.1.name()).map_err(|e| SoiError::io("report", e))?;
        if let Some(path) = &replay_path {
            writeln!(
                out,
                "  reproduce with: soi fuzz --seed {} --replay {}",
                stream.seed,
                path.display()
            )
            .map_err(|e| SoiError::io("report", e))?;
        }
        return Ok(StreamVerdict {
            seed: stream.seed,
            requests: stream.lines.len(),
            divergence: Some(Divergence {
                arms: (pair.0.name(), pair.1.name()),
                index,
                left,
                right,
                shrunk_lines: shrunk.lines,
                replay_path,
            }),
        });
    }
    Ok(StreamVerdict {
        seed: stream.seed,
        requests: stream.lines.len(),
        divergence: None,
    })
}

/// Arms the process-global failpoint registry for the in-process arm;
/// the TCP arm receives the same spec via the child's environment.
/// Only deterministic (always-firing) error specs keep the arms
/// comparable — probabilistic specs draw from per-process streams.
fn arm_failpoints(config: &FuzzConfig) -> Result<(), SoiError> {
    if let Some(spec) = &config.failpoints {
        soi_util::failpoint::install(spec).map_err(SoiError::invalid)?;
    }
    Ok(())
}

/// Runs the whole campaign: `streams` consecutive seeds starting at
/// `seed`, each generated, replayed, and diffed.
pub fn run_fuzz(config: &FuzzConfig, out: &mut impl Write) -> Result<FuzzReport, SoiError> {
    arm_failpoints(config)?;
    let mut verdicts = Vec::new();
    for j in 0..config.streams.max(1) as u64 {
        let seed = config.seed.wrapping_add(j);
        let stream = FuzzStream::generate(seed, config.stream)?;
        verdicts.push(run_stream(&stream, config, out)?);
    }
    let report = FuzzReport { verdicts };
    writeln!(
        out,
        "fuzz: {} stream(s), {} divergence(s)",
        report.verdicts.len(),
        report.divergences()
    )
    .map_err(|e| SoiError::io("report", e))?;
    Ok(report)
}

/// Replays a saved stream file across the configured arms.
pub fn run_replay(
    path: &Path,
    config: &FuzzConfig,
    out: &mut impl Write,
) -> Result<FuzzReport, SoiError> {
    arm_failpoints(config)?;
    let text = std::fs::read_to_string(path).map_err(|e| SoiError::io("read replay", e))?;
    let stream = FuzzStream::parse(&text)?;
    let verdict = run_stream(&stream, config, out)?;
    Ok(FuzzReport {
        verdicts: vec![verdict],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config(streams: usize, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            streams,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn reference_and_real_engine_agree_over_many_streams() {
        let _g = soi_util::failpoint::test_guard();
        let mut out = Vec::new();
        let report = run_fuzz(&quiet_config(6, 100), &mut out).expect("fuzz");
        assert_eq!(report.divergences(), 0, "{}", String::from_utf8_lossy(&out));
        assert_eq!(report.verdicts.len(), 6);
    }

    #[test]
    fn campaign_is_deterministic() {
        let _g = soi_util::failpoint::test_guard();
        let mut out_a = Vec::new();
        let a = run_fuzz(&quiet_config(3, 500), &mut out_a).expect("fuzz");
        let mut out_b = Vec::new();
        let b = run_fuzz(&quiet_config(3, 500), &mut out_b).expect("fuzz");
        assert_eq!(a, b);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn injected_estimator_bug_is_caught_and_shrunk() {
        let _g = soi_util::failpoint::test_guard();
        // Scan seeds (deterministically) for a stream whose real arm
        // answers at least one spread estimate.
        let mut config = quiet_config(1, 0);
        config.inject_bug = true;
        let dir = std::env::temp_dir().join(format!("soi-fuzz-bug-{}", std::process::id()));
        config.artifacts = Some(dir.clone());
        let mut caught = None;
        for seed in 0..32u64 {
            config.seed = seed;
            let mut out = Vec::new();
            let report = run_fuzz(&config, &mut out).expect("fuzz");
            if report.divergences() == 1 {
                caught = Some((report, String::from_utf8(out).expect("utf8")));
                break;
            }
        }
        let (report, log) = caught.expect("some stream answers a spread estimate");
        let divergence = report.verdicts[0].divergence.clone().expect("divergence");
        // Shrunk to the minimal repro: one guilty request + shutdown.
        assert_eq!(divergence.shrunk_lines.len(), 2, "{log}");
        let guilty = std::str::from_utf8(&divergence.shrunk_lines[0]).expect("ascii");
        assert!(guilty.contains("spread-estimate"), "{guilty}");
        assert!(log.contains("reproduce with: soi fuzz --seed"), "{log}");
        // The replay file round-trips and reproduces the divergence.
        let replay = divergence.replay_path.expect("replay written");
        let seed = report.verdicts[0].seed;
        config.seed = seed;
        let mut out = Vec::new();
        let again = run_replay(&replay, &config, &mut out).expect("replay");
        assert_eq!(again.divergences(), 1);
        // Without the bug the same replay is clean.
        config.inject_bug = false;
        let mut out = Vec::new();
        let clean = run_replay(&replay, &config, &mut out).expect("replay");
        assert_eq!(clean.divergences(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn masking_strips_trace_and_wall_clock() {
        let line = r#"{"v":1,"id":3,"status":"ok","spread":2.5,"trace":[{"name":"parse","ticks":10,"wall_ns":55}],"wall_ns":1234}"#;
        let masked = mask_response(line);
        assert!(!masked.contains("trace"), "{masked}");
        assert!(!masked.contains("1234"), "{masked}");
        assert!(masked.contains("\"spread\":2.5"), "{masked}");
    }
}
