//! Direct cascade sampling.
//!
//! The cascade from `s` in a random possible world is `R_s(G)` — the
//! reachability set of `s`. Materializing the whole world is wasteful when
//! only one source matters: by the principle of deferred decisions, we can
//! flip each arc's coin the first (and only) time the traversal considers
//! it. Every arc is examined at most once because each node is expanded at
//! most once, so the resulting set has exactly the distribution of
//! `R_s(G ~ 𝒢)`.

use soi_graph::{NodeId, ProbGraph};
use soi_util::rng::Rng;
use soi_util::runtime::{Deadline, Outcome};

/// Power-of-two buckets for the `sampling.cascade_size` histogram
/// (cascade sizes are counts, so bucket totals stay deterministic).
const SIZE_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0,
];

/// Reusable scratch for lazy cascade sampling (visited stamps + stack).
#[derive(Clone, Debug)]
pub struct CascadeSampler {
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
}

impl CascadeSampler {
    /// Creates scratch for graphs of up to `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        CascadeSampler {
            stamp: vec![0; num_nodes],
            epoch: 0,
            stack: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.stack.clear();
    }

    #[inline]
    fn visit(&mut self, v: NodeId) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }

    /// Samples one cascade from `source`, writing the activated nodes
    /// (including the source) into `out` in activation order.
    pub fn sample<R: Rng>(
        &mut self,
        pg: &ProbGraph,
        source: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        self.sample_multi(pg, std::slice::from_ref(&source), rng, out)
    }

    /// Samples one cascade from a seed set (all seeds active at time 0),
    /// writing activated nodes into `out`. Duplicate seeds are fine.
    pub fn sample_multi<R: Rng>(
        &mut self,
        pg: &ProbGraph,
        seeds: &[NodeId],
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        self.begin();
        out.clear();
        for &s in seeds {
            if self.visit(s) {
                out.push(s);
                self.stack.push(s);
            }
        }
        let g = pg.graph();
        let probs = pg.probs();
        soi_obs::counter_add!("sampling.cascades_sampled", 1);
        while let Some(v) = self.stack.pop() {
            for e in g.edge_range(v) {
                let w = g.edge_target(e);
                // Flip the coin even for already-active targets: the arc's
                // coin is consumed either way, and skipping the draw would
                // correlate this arc with traversal order. (For sampling a
                // *single* cascade the skipped flip is harmless, but the
                // uniform rule keeps the sampler's RNG stream identical to
                // the world-sampler's per-arc consumption, which the
                // equivalence tests rely on.)
                let success = rng.random::<f64>() < probs[e];
                if success && self.visit(w) {
                    out.push(w);
                    self.stack.push(w);
                }
            }
        }
        soi_obs::counter_add!("sampling.cascade_nodes", out.len());
        soi_obs::hist_observe!("sampling.cascade_size", SIZE_BUCKETS, out.len());
    }

    /// Samples `count` independent cascades from `source`, returning them
    /// as sorted node-id vectors (the canonical set representation used by
    /// the Jaccard machinery). Cascade `i` depends only on `(seed, i)`.
    pub fn sample_many(
        pg: &ProbGraph,
        source: NodeId,
        count: usize,
        seed: u64,
    ) -> Vec<Vec<NodeId>> {
        let mut sampler = CascadeSampler::new(pg.num_nodes());
        let mut out = Vec::new();
        (0..count)
            .map(|i| {
                let mut rng = crate::world::world_rng(seed, i);
                sampler.sample(pg, source, &mut rng, &mut out);
                let mut set = out.clone();
                set.sort_unstable();
                set
            })
            .collect()
    }

    /// Budgeted [`sample_many`](CascadeSampler::sample_many): one tick per
    /// cascade. On expiry returns the cascades sampled so far — cascade
    /// `i` depends only on `(seed, i)`, so a partial result is exactly the
    /// prefix an uninterrupted run would have produced.
    pub fn sample_many_budgeted(
        pg: &ProbGraph,
        source: NodeId,
        count: usize,
        seed: u64,
        deadline: &Deadline,
    ) -> Outcome<Vec<Vec<NodeId>>> {
        let mut sampler = CascadeSampler::new(pg.num_nodes());
        let mut out = Vec::new();
        let mut sets = Vec::with_capacity(count);
        for i in 0..count {
            if !deadline.tick(1) {
                break;
            }
            let mut rng = crate::world::world_rng(seed, i);
            sampler.sample(pg, source, &mut rng, &mut out);
            let mut set = out.clone();
            set.sort_unstable();
            sets.push(set);
        }
        let done = sets.len() as u64;
        deadline.outcome(sets, done, count as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder, Reachability};

    fn example1_graph() -> ProbGraph {
        // Figure 1 / Example 1 of the paper. Ids: v1=0, v2=1, v3=2, v4=3, v5=4.
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(4, 0, 0.7); // v5->v1
        b.add_weighted_edge(4, 1, 0.4); // v5->v2
        b.add_weighted_edge(4, 3, 0.3); // v5->v4
        b.add_weighted_edge(0, 1, 0.1); // v1->v2
        b.add_weighted_edge(3, 1, 0.6); // v4->v2
        b.add_weighted_edge(1, 2, 0.4); // v2->v3
        b.add_weighted_edge(1, 0, 0.1); // v2->v1 (the 0.1 arc into v1)
        b.build_prob().unwrap()
    }

    #[test]
    fn cascade_always_contains_source() {
        let pg = ProbGraph::fixed(gen::complete(10), 0.1).unwrap();
        let mut s = CascadeSampler::new(10);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(1);
        let mut out = Vec::new();
        for _ in 0..100 {
            s.sample(&pg, 4, &mut rng, &mut out);
            assert!(out.contains(&4));
        }
    }

    #[test]
    fn deterministic_graph_gives_full_reachability() {
        let g = gen::path(6);
        let pg = ProbGraph::fixed(g.clone(), 1.0).unwrap();
        let mut s = CascadeSampler::new(6);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(2);
        let mut out = Vec::new();
        s.sample(&pg, 2, &mut rng, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn example1_singleton_cascade_probability() {
        // P(cascade of v5 = {v5, v1}) = 0.7 * 0.6 * 0.7 * 0.9 = 0.2646.
        let pg = example1_graph();
        let mut s = CascadeSampler::new(5);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        let mut out = Vec::new();
        let trials = 200_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            s.sample(&pg, 4, &mut rng, &mut out);
            out.sort_unstable();
            if out == vec![0, 4] {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!((p - 0.2646).abs() < 0.006, "got {p}, want ~0.2646");
    }

    #[test]
    fn example1_impossible_cascade_never_appears() {
        // {v1, v3, v4} (+source) has probability 0: v3 is only reachable
        // via v2.
        let pg = example1_graph();
        let mut s = CascadeSampler::new(5);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let mut out = Vec::new();
        for _ in 0..50_000 {
            s.sample(&pg, 4, &mut rng, &mut out);
            out.sort_unstable();
            assert_ne!(out, vec![0, 2, 3, 4], "v3 without v2 is impossible");
        }
    }

    #[test]
    fn lazy_matches_world_based_distribution() {
        // Mean cascade size from the lazy sampler must match reachability
        // in materialized worlds (same seeds → same coin stream → identical
        // sets, since both consume one draw per arc in CSR order...
        // traversal order differs, so compare distributions statistically).
        let pg = ProbGraph::fixed(
            gen::gnm(40, 160, &mut soi_util::rng::Xoshiro256pp::seed_from_u64(7)),
            0.3,
        )
        .unwrap();
        let src: NodeId = 0;
        let runs = 4000;

        let mut lazy_mean = 0f64;
        let mut s = CascadeSampler::new(40);
        let mut out = Vec::new();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(5);
        for _ in 0..runs {
            s.sample(&pg, src, &mut rng, &mut out);
            lazy_mean += out.len() as f64;
        }
        lazy_mean /= runs as f64;

        let mut world_mean = 0f64;
        let mut ws = crate::WorldSampler::new();
        let mut reach = Reachability::new(40);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(6);
        for _ in 0..runs {
            let w = ws.sample(&pg, &mut rng);
            world_mean += reach.count_reachable(&w, src) as f64;
        }
        world_mean /= runs as f64;

        assert!(
            (lazy_mean - world_mean).abs() < 0.05 * world_mean.max(1.0),
            "lazy {lazy_mean} vs world {world_mean}"
        );
    }

    #[test]
    fn multi_seed_union_semantics() {
        // Two disconnected deterministic paths; seeding both heads
        // activates both paths.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            b.add_weighted_edge(u, v, 1.0);
        }
        let pg = b.build_prob().unwrap();
        let mut s = CascadeSampler::new(6);
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(8);
        let mut out = Vec::new();
        s.sample_multi(&pg, &[0, 3], &mut rng, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        // Duplicates don't double-activate.
        s.sample_multi(&pg, &[0, 0], &mut rng, &mut out);
        assert_eq!(out.iter().filter(|&&v| v == 0).count(), 1);
    }

    #[test]
    fn sample_many_returns_sorted_canonical_sets() {
        let pg = ProbGraph::fixed(gen::complete(8), 0.4).unwrap();
        let sets = CascadeSampler::sample_many(&pg, 0, 20, 11);
        assert_eq!(sets.len(), 20);
        for s in &sets {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            assert!(s.contains(&0));
        }
        // Determinism.
        let again = CascadeSampler::sample_many(&pg, 0, 20, 11);
        assert_eq!(sets, again);
    }

    #[test]
    fn budgeted_sample_many_is_a_prefix_of_the_full_run() {
        use soi_util::runtime::Deadline;
        let pg = ProbGraph::fixed(gen::complete(8), 0.4).unwrap();
        let full = CascadeSampler::sample_many(&pg, 0, 20, 11);

        let complete = CascadeSampler::sample_many_budgeted(&pg, 0, 20, 11, &Deadline::unlimited());
        assert!(complete.is_complete());
        assert_eq!(complete.value(), full);

        let d = Deadline::ticks(7);
        let partial = CascadeSampler::sample_many_budgeted(&pg, 0, 20, 11, &d);
        assert!(!partial.is_complete());
        let progress = partial.progress().unwrap();
        assert_eq!(progress, soi_util::runtime::Progress { done: 7, total: 20 });
        assert_eq!(partial.value(), full[..7].to_vec());
    }
}
