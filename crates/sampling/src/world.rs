//! Possible-world materialization.
//!
//! A possible world keeps each arc of the probabilistic graph
//! independently with its probability (Eq. 1 of the paper). The sampler
//! emits the surviving subgraph directly in CSR order — per-node target
//! slices of the input are already sorted, and filtering preserves order —
//! so no re-sort is needed.

use soi_graph::{DiGraph, NodeId, ProbGraph};
use soi_util::rng::Rng;

/// Samples possible worlds from a [`ProbGraph`], reusing internal buffers
/// across calls.
#[derive(Clone, Debug, Default)]
pub struct WorldSampler {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl WorldSampler {
    /// Creates a sampler (buffers grow on first use).
    pub fn new() -> Self {
        WorldSampler::default()
    }

    /// Draws one possible world `G ⊑ 𝒢`.
    ///
    /// Each arc survives independently with its probability. The returned
    /// graph has the same node set; only arcs differ.
    pub fn sample<R: Rng>(&mut self, pg: &ProbGraph, rng: &mut R) -> DiGraph {
        soi_obs::counter_add!("sampling.worlds_sampled", 1);
        let g = pg.graph();
        let n = g.num_nodes();
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.targets.clear();
        self.offsets.push(0);
        let probs = pg.probs();
        for v in 0..n as NodeId {
            let range = g.edge_range(v);
            for e in range {
                if rng.random::<f64>() < probs[e] {
                    self.targets.push(g.edge_target(e));
                }
            }
            self.offsets.push(self.targets.len());
        }
        DiGraph::from_csr_parts(
            std::mem::take(&mut self.offsets),
            std::mem::take(&mut self.targets),
        )
    }

    /// Draws `count` worlds with sub-seeds derived from `seed`, calling
    /// `f(i, world)` for each. World `i` depends only on `(seed, i)`, so
    /// callers can re-derive any single world independently.
    pub fn sample_each(
        pg: &ProbGraph,
        count: usize,
        seed: u64,
        mut f: impl FnMut(usize, &DiGraph),
    ) {
        let mut sampler = WorldSampler::new();
        for i in 0..count {
            let mut rng = world_rng(seed, i);
            let w = sampler.sample(pg, &mut rng);
            f(i, &w);
        }
    }
}

/// The RNG that generates world `i` of a run seeded with `seed`.
///
/// Exposed so tests and the cascade index can re-materialize a specific
/// world deterministically.
pub fn world_rng(seed: u64, world: usize) -> soi_util::rng::Xoshiro256pp {
    soi_util::rng::Xoshiro256pp::seed_from_u64(soi_util::rng::derive_seed(seed, world as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};

    #[test]
    fn world_is_subgraph_with_same_nodes() {
        let pg = ProbGraph::fixed(gen::complete(20), 0.3).unwrap();
        let mut s = WorldSampler::new();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10 {
            let w = s.sample(&pg, &mut rng);
            assert_eq!(w.num_nodes(), 20);
            assert!(w.num_edges() <= pg.num_edges());
            for (u, v) in w.edges() {
                assert!(pg.graph().has_edge(u, v), "phantom arc {u}->{v}");
            }
        }
    }

    #[test]
    fn extreme_probabilities() {
        let g = gen::path(10);
        let pg = ProbGraph::fixed(g.clone(), 1.0).unwrap();
        let mut s = WorldSampler::new();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(2);
        let w = s.sample(&pg, &mut rng);
        assert_eq!(w, g, "p = 1 keeps everything");

        let mut b = GraphBuilder::new(10);
        for i in 0..9 {
            b.add_weighted_edge(i, i + 1, 1e-12);
        }
        let pg = b.build_prob().unwrap();
        let w = s.sample(&pg, &mut rng);
        assert_eq!(w.num_edges(), 0, "p ≈ 0 keeps (almost surely) nothing");
    }

    #[test]
    fn survival_rate_matches_probability() {
        let pg = ProbGraph::fixed(gen::complete(30), 0.25).unwrap();
        let mut s = WorldSampler::new();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        let mut total = 0usize;
        let rounds = 200;
        for _ in 0..rounds {
            total += s.sample(&pg, &mut rng).num_edges();
        }
        let rate = total as f64 / (rounds * pg.num_edges()) as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn per_world_determinism() {
        let pg = ProbGraph::fixed(gen::complete(10), 0.5).unwrap();
        let mut worlds_a = Vec::new();
        WorldSampler::sample_each(&pg, 5, 99, |_, w| worlds_a.push(w.clone()));
        // Re-derive world 3 in isolation.
        let mut s = WorldSampler::new();
        let w3 = s.sample(&pg, &mut world_rng(99, 3));
        assert_eq!(w3, worlds_a[3]);
        // Different worlds differ (w.h.p. for 45 coin flips).
        assert_ne!(worlds_a[0], worlds_a[1]);
    }

    #[test]
    fn sampler_buffer_reuse_is_clean() {
        let pg1 = ProbGraph::fixed(gen::complete(8), 0.9).unwrap();
        let pg2 = ProbGraph::fixed(gen::path(3), 1.0).unwrap();
        let mut s = WorldSampler::new();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let _big = s.sample(&pg1, &mut rng);
        let small = s.sample(&pg2, &mut rng);
        assert_eq!(small.num_nodes(), 3);
        assert_eq!(small.num_edges(), 2);
    }
}
