//! # soi-sampling
//!
//! Monte-Carlo machinery over probabilistic graphs:
//!
//! * [`WorldSampler`] — materializes possible worlds `G ⊑ 𝒢` under the
//!   independent-edge semantics of §2.1 (Eq. 1), in CSR form ready for SCC
//!   and reachability;
//! * [`cascade`] — samples the random cascade `R_s(G)` from a source (or a
//!   seed set) *without* materializing the world, flipping each arc's coin
//!   lazily — distribution-equivalent and much faster for single queries;
//! * [`ic`] — the discrete-time Independent Cascade process itself, with
//!   activation timestamps, used by the influence-probability learners'
//!   synthetic action logs;
//! * [`spread`] — Monte-Carlo estimation of the expected spread `σ(S)`;
//! * [`reliability`] — 2-terminal reliability and reliability search, the
//!   related query family of §7;
//! * [`lt`] — the Linear Threshold model with Kempe et al.'s live-edge
//!   equivalence, so the typical-cascade pipeline applies beyond IC.

pub mod cascade;
pub mod ic;
pub mod lt;
pub mod reliability;
pub mod spread;
pub mod world;

pub use cascade::CascadeSampler;
pub use spread::{estimate_spread, estimate_spread_budgeted};
pub use world::WorldSampler;
