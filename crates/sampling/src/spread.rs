//! Monte-Carlo estimation of the expected spread `σ(S)`.
//!
//! The expected spread — the objective of influence maximization (§1) — is
//! `#P`-hard to compute exactly, so Kempe et al. estimate it by averaging
//! cascade sizes over sampled worlds. `soi-influence` has a faster,
//! index-backed estimator for greedy loops; this standalone one is the
//! reference implementation every other estimator is tested against.

use crate::CascadeSampler;
use soi_graph::{NodeId, ProbGraph};

/// Estimates `σ(seeds)` as the mean cascade size over `samples` independent
/// cascades. Deterministic in `seed`.
///
/// ```
/// use soi_graph::{gen, ProbGraph};
/// use soi_sampling::estimate_spread;
/// // Path 0 -> 1 -> 2 with p = 0.5: σ({0}) = 1 + 1/2 + 1/4.
/// let pg = ProbGraph::fixed(gen::path(3), 0.5).unwrap();
/// let sigma = estimate_spread(&pg, &[0], 20_000, 42);
/// assert!((sigma - 1.75).abs() < 0.05);
/// ```
pub fn estimate_spread(pg: &ProbGraph, seeds: &[NodeId], samples: usize, seed: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    soi_obs::counter_add!("sampling.spread_estimates", 1);
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut out = Vec::new();
    let mut total = 0usize;
    for i in 0..samples {
        let mut rng = crate::world::world_rng(seed, i as u64 as usize);
        sampler.sample_multi(pg, seeds, &mut rng, &mut out);
        total += out.len();
    }
    total as f64 / samples as f64
}

/// Budgeted [`estimate_spread`]: one tick per sampled cascade. On expiry
/// returns the mean over the cascades completed so far (0.0 when none
/// finished); sample `i` depends only on `(seed, i)`, so the partial mean
/// is over the same prefix an uninterrupted run would average first.
pub fn estimate_spread_budgeted(
    pg: &ProbGraph,
    seeds: &[NodeId],
    samples: usize,
    seed: u64,
    deadline: &soi_util::runtime::Deadline,
) -> soi_util::runtime::Outcome<f64> {
    soi_obs::counter_add!("sampling.spread_estimates", 1);
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut out = Vec::new();
    let mut total = 0usize;
    let mut done = 0usize;
    for i in 0..samples {
        if !deadline.tick(1) {
            break;
        }
        let mut rng = crate::world::world_rng(seed, i);
        sampler.sample_multi(pg, seeds, &mut rng, &mut out);
        total += out.len();
        done += 1;
    }
    let mean = if done == 0 {
        0.0
    } else {
        total as f64 / done as f64
    };
    deadline.outcome(mean, done as u64, samples as u64)
}

/// Exact expected spread by exhaustive world enumeration — `O(2^E)`, only
/// for graphs with very few edges; anchors the estimator tests.
pub fn exact_spread_bruteforce(pg: &ProbGraph, seeds: &[NodeId]) -> f64 {
    let m = pg.num_edges();
    assert!(m <= 20, "brute force limited to 20 edges");
    let g = pg.graph();
    let mut total = 0.0;
    let mut reach = soi_graph::Reachability::new(pg.num_nodes());
    let mut out = Vec::new();
    for mask in 0u32..(1 << m) {
        // Build the world for this mask.
        let mut edges = Vec::new();
        let mut prob = 1.0;
        let mut e = 0usize;
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                if mask & (1 << e) != 0 {
                    edges.push((u, v));
                    prob *= pg.edge_prob(e);
                } else {
                    prob *= 1.0 - pg.edge_prob(e);
                }
                e += 1;
            }
        }
        // World edges are a subset of pg's arcs, so ids are in range.
        // xtask-allow: panic_policy
        let world = soi_graph::DiGraph::from_edges(pg.num_nodes(), &edges).expect("subset of pg");
        reach.multi_source(&world, seeds, &mut out);
        total += prob * out.len() as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};

    #[test]
    fn path_spread_closed_form() {
        // Path 0->1->2->3 with p = 0.5: σ({0}) = 1 + 1/2 + 1/4 + 1/8.
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let est = estimate_spread(&pg, &[0], 60_000, 42);
        assert!((est - 1.875).abs() < 0.02, "est {est}");
    }

    #[test]
    fn estimator_matches_bruteforce() {
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 1, 0.3);
        b.add_weighted_edge(0, 2, 0.7);
        b.add_weighted_edge(1, 3, 0.5);
        b.add_weighted_edge(2, 3, 0.2);
        b.add_weighted_edge(3, 4, 0.9);
        let pg = b.build_prob().unwrap();
        let exact = exact_spread_bruteforce(&pg, &[0]);
        let est = estimate_spread(&pg, &[0], 100_000, 7);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn spread_is_monotone_in_seeds() {
        let pg = ProbGraph::fixed(
            gen::gnm(30, 90, &mut {
                soi_util::rng::Xoshiro256pp::seed_from_u64(1)
            }),
            0.2,
        )
        .unwrap();
        let s1 = estimate_spread(&pg, &[0], 2_000, 5);
        let s2 = estimate_spread(&pg, &[0, 1], 2_000, 5);
        let s3 = estimate_spread(&pg, &[0, 1, 2], 2_000, 5);
        assert!(s2 >= s1 - 1e-9, "{s2} < {s1}");
        assert!(s3 >= s2 - 1e-9, "{s3} < {s2}");
    }

    #[test]
    fn budgeted_spread_stops_at_the_sample_boundary() {
        use soi_util::runtime::Deadline;
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let complete = estimate_spread_budgeted(&pg, &[0], 500, 42, &Deadline::unlimited());
        assert!(complete.is_complete());
        assert_eq!(complete.value(), estimate_spread(&pg, &[0], 500, 42));

        let d = Deadline::ticks(100);
        let partial = estimate_spread_budgeted(&pg, &[0], 500, 42, &d);
        assert!(!partial.is_complete());
        assert_eq!(partial.progress().unwrap().done, 100);
        // The partial mean is over the same first 100 samples an
        // uninterrupted 100-sample run would draw.
        assert_eq!(partial.value(), estimate_spread(&pg, &[0], 100, 42));

        let none = estimate_spread_budgeted(&pg, &[0], 500, 42, &Deadline::ticks(0));
        assert_eq!(none.value_ref(), &0.0);
        assert!(!none.is_complete());
    }

    #[test]
    fn empty_seed_set_spreads_nothing() {
        let pg = ProbGraph::fixed(gen::complete(5), 0.5).unwrap();
        assert_eq!(estimate_spread(&pg, &[], 100, 1), 0.0);
    }

    #[test]
    fn seeds_count_themselves() {
        let pg = ProbGraph::fixed(gen::path(3), 1e-9).unwrap();
        let s = estimate_spread(&pg, &[0, 2], 500, 2);
        assert!((s - 2.0).abs() < 0.05, "isolated seeds still count: {s}");
    }
}
