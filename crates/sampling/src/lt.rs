//! The Linear Threshold (LT) propagation model.
//!
//! The second propagation model of Kempe et al. (the paper's §1 notes IC
//! is "the most studied"; LT is its companion). Each arc `(u, v)` carries
//! a weight `b(u, v) ≥ 0` with `Σ_u b(u, v) ≤ 1`; node `v` activates once
//! the weight of its active in-neighbors exceeds a uniform random
//! threshold `θ_v ∈ [0, 1]`.
//!
//! Kempe et al.'s live-edge equivalence: sampling, for every node, **at
//! most one** incoming arc — arc `(u, v)` with probability `b(u, v)`, no
//! arc with probability `1 − Σ_u b(u, v)` — yields a random subgraph whose
//! reachability sets are distributed exactly like LT cascades. That means
//! the whole typical-cascade pipeline (cascade index, Jaccard medians,
//! `InfMax_TC`) applies to LT unchanged: build worlds with
//! [`LtWorldSampler`] and feed them to
//! `soi_index::CascadeIndex::build_from_worlds`.

use soi_graph::{DiGraph, GraphBuilder, GraphError, NodeId};
use soi_util::rng::Rng;

/// An LT-weighted directed graph: per-arc weights with in-weight sums
/// `≤ 1` per node.
#[derive(Clone, Debug)]
pub struct LtGraph {
    /// Reverse topology: `in_arcs` of `v` are the arcs that can activate
    /// it. Stored reverse because live-edge sampling draws per *target*.
    reverse: DiGraph,
    /// `weights[e]` aligned with `reverse`'s CSR arcs: the weight of the
    /// original arc `(target_of_e, v)`.
    weights: Vec<f64>,
    /// Forward topology, for traversal and display.
    forward: DiGraph,
}

impl LtGraph {
    /// Builds an LT graph from weighted arcs `(u, v, b)`.
    ///
    /// Fails if any weight is not in `(0, 1]` or an in-weight sum exceeds
    /// 1 (beyond f64 slack).
    pub fn new(num_nodes: usize, arcs: &[(NodeId, NodeId, f64)]) -> Result<Self, GraphError> {
        let mut fwd = GraphBuilder::new(num_nodes);
        let mut rev = GraphBuilder::new(num_nodes);
        for &(u, v, w) in arcs {
            fwd.add_weighted_edge(u, v, w);
            rev.add_weighted_edge(v, u, w);
        }
        let forward = fwd.build_prob()?; // validates weights in (0, 1]
        let reverse = rev.build_prob()?;
        // Validate in-weight sums.
        for v in reverse.graph().nodes() {
            let sum: f64 = reverse.out_arcs(v).map(|(_, w)| w).sum();
            if sum > 1.0 + 1e-9 {
                return Err(GraphError::InvalidProbability {
                    edge_index: v as usize,
                    value: sum,
                });
            }
        }
        Ok(LtGraph {
            weights: reverse.probs().to_vec(),
            reverse: reverse.graph().clone(),
            forward: forward.graph().clone(),
        })
    }

    /// The standard *uniform* LT weighting on a topology:
    /// `b(u, v) = 1 / inDeg(v)` (in-weights sum to exactly 1).
    pub fn uniform(graph: &DiGraph) -> Self {
        let in_deg = graph.in_degrees();
        let arcs: Vec<(NodeId, NodeId, f64)> = graph
            .edges()
            .map(|(u, v)| (u, v, 1.0 / in_deg[v as usize] as f64))
            .collect();
        // Weights 1/inDeg(v) are in (0, 1] and sum to exactly 1 per node.
        // xtask-allow: panic_policy
        LtGraph::new(graph.num_nodes(), &arcs).expect("uniform weights are valid")
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.forward.num_nodes()
    }

    /// The forward topology.
    pub fn graph(&self) -> &DiGraph {
        &self.forward
    }

    /// Weight of arc `(u, v)`, if present.
    pub fn weight_between(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let r = self.reverse.edge_range(v);
        self.reverse
            .out_neighbors(v)
            .binary_search(&u)
            .ok()
            .map(|i| self.weights[r.start + i])
    }
}

/// Samples LT live-edge worlds: for every node, at most one incoming arc.
#[derive(Clone, Debug, Default)]
pub struct LtWorldSampler {
    edges: Vec<(NodeId, NodeId)>,
}

impl LtWorldSampler {
    /// Creates a sampler.
    pub fn new() -> Self {
        LtWorldSampler::default()
    }

    /// Draws one live-edge world of the LT process.
    pub fn sample<R: Rng>(&mut self, lt: &LtGraph, rng: &mut R) -> DiGraph {
        let n = lt.num_nodes();
        self.edges.clear();
        for v in 0..n as NodeId {
            // Pick at most one in-arc with probability = its weight.
            let x: f64 = rng.random();
            let mut acc = 0.0;
            let range = lt.reverse.edge_range(v);
            for (i, &u) in lt.reverse.out_neighbors(v).iter().enumerate() {
                acc += lt.weights[range.start + i];
                if x < acc {
                    self.edges.push((u, v));
                    break;
                }
            }
        }
        // Sampled arcs are a subset of lt's arcs, so ids are below n.
        // xtask-allow: panic_policy
        DiGraph::from_edges(n, &self.edges).expect("ids in range")
    }
}

/// Direct LT simulation (thresholds + frontier), for validating the
/// live-edge sampler. Returns the eventually-active set, sorted.
pub fn simulate_lt<R: Rng>(lt: &LtGraph, seeds: &[NodeId], rng: &mut R) -> Vec<NodeId> {
    let n = lt.num_nodes();
    let thresholds: Vec<f64> = (0..n).map(|_| rng.random()).collect();
    let mut active = vec![false; n];
    let mut weight_in = vec![0.0f64; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
        }
    }
    while let Some(u) = frontier.pop() {
        for &v in lt.forward.out_neighbors(u) {
            if active[v as usize] {
                continue;
            }
            // `v` is a forward out-neighbor of `u`, so the reverse
            // lookup always finds the arc. xtask-allow: panic_policy
            weight_in[v as usize] += lt.weight_between(u, v).expect("forward arc");
            if weight_in[v as usize] >= thresholds[v as usize] {
                active[v as usize] = true;
                frontier.push(v);
            }
        }
    }
    let mut out: Vec<NodeId> = (0..n as NodeId).filter(|&v| active[v as usize]).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, Reachability};
    use soi_util::rng::Xoshiro256pp;

    #[test]
    fn validation() {
        // In-weights of node 1 sum to 1.2: rejected.
        assert!(LtGraph::new(3, &[(0, 1, 0.7), (2, 1, 0.5)]).is_err());
        assert!(LtGraph::new(3, &[(0, 1, 0.7), (2, 1, 0.3)]).is_ok());
        assert!(LtGraph::new(2, &[(0, 1, 1.5)]).is_err());
    }

    #[test]
    fn uniform_weights_sum_to_one() {
        let g = gen::complete(5);
        let lt = LtGraph::uniform(&g);
        for v in 0..5u32 {
            let sum: f64 = (0..5u32).filter_map(|u| lt.weight_between(u, v)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "node {v}: {sum}");
        }
    }

    #[test]
    fn live_edge_worlds_have_in_degree_at_most_one() {
        let lt = LtGraph::uniform(&gen::complete(10));
        let mut s = LtWorldSampler::new();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..50 {
            let w = s.sample(&lt, &mut rng);
            for (v, &d) in w.in_degrees().iter().enumerate() {
                assert!(d <= 1, "node {v} has in-degree {d}");
            }
        }
    }

    #[test]
    fn arc_selection_frequency_matches_weight() {
        // Node 2 with in-arcs (0,2,w=0.3) and (1,2,w=0.5); no-arc w.p. 0.2.
        let lt = LtGraph::new(3, &[(0, 2, 0.3), (1, 2, 0.5)]).unwrap();
        let mut s = LtWorldSampler::new();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut from0 = 0;
        let mut from1 = 0;
        let mut none = 0;
        let rounds = 100_000;
        for _ in 0..rounds {
            let w = s.sample(&lt, &mut rng);
            match (w.has_edge(0, 2), w.has_edge(1, 2)) {
                (true, false) => from0 += 1,
                (false, true) => from1 += 1,
                (false, false) => none += 1,
                (true, true) => panic!("two in-arcs"),
            }
        }
        assert!((from0 as f64 / rounds as f64 - 0.3).abs() < 0.01);
        assert!((from1 as f64 / rounds as f64 - 0.5).abs() < 0.01);
        assert!((none as f64 / rounds as f64 - 0.2).abs() < 0.01);
    }

    #[test]
    fn live_edge_spread_matches_direct_lt_simulation() {
        // Kempe et al.'s equivalence: E|reachable from S in live-edge
        // world| = E|LT cascade from S|.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let topo = gen::gnm(30, 120, &mut rng);
        let lt = LtGraph::uniform(&topo);
        let seeds = [0u32, 1, 2];
        let rounds = 30_000;

        let mut live_mean = 0.0;
        let mut sampler = LtWorldSampler::new();
        let mut reach = Reachability::new(30);
        let mut out = Vec::new();
        let mut rng_a = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..rounds {
            let w = sampler.sample(&lt, &mut rng_a);
            reach.multi_source(&w, &seeds, &mut out);
            live_mean += out.len() as f64;
        }
        live_mean /= rounds as f64;

        let mut direct_mean = 0.0;
        let mut rng_b = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..rounds {
            direct_mean += simulate_lt(&lt, &seeds, &mut rng_b).len() as f64;
        }
        direct_mean /= rounds as f64;

        assert!(
            (live_mean - direct_mean).abs() < 0.03 * direct_mean.max(1.0),
            "live-edge {live_mean} vs direct {direct_mean}"
        );
    }

    // The integration of LT live-edge worlds with the cascade index
    // (`CascadeIndex::build_from_worlds`) is exercised in the workspace
    // integration tests (`tests/lt_model.rs`) — `soi-index` depends on
    // this crate, so the test cannot live here.
}
