//! Reliability queries over probabilistic graphs.
//!
//! The paper's related work (§7) situates typical cascades among
//! *reliability* problems: 2-terminal reliability `rel(s, t)` — the
//! probability that `t` is reachable from `s` — is `#P`-complete
//! (Valiant), and Theorem 1's hardness proof reduces from it. This module
//! provides the standard Monte-Carlo estimators, plus *reliability
//! search* (Khan et al., EDBT 2014): all nodes reachable from a source
//! set with probability at least a threshold.
//!
//! Reliability search connects directly to typical cascades: the
//! `η = 0.5` reliability-search result is exactly the majority median of
//! the cascade distribution, which Chierichetti et al. show is within
//! `ε + O(ε^{3/2})` of the optimal typical cascade (§5, observation 4).

use crate::CascadeSampler;
use soi_graph::{NodeId, ProbGraph};

/// Monte-Carlo estimate of the 2-terminal reliability `rel(source, target)`.
/// Deterministic in `seed`.
pub fn two_terminal(
    pg: &ProbGraph,
    source: NodeId,
    target: NodeId,
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(samples > 0);
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut out = Vec::new();
    let mut hits = 0usize;
    for i in 0..samples {
        let mut rng = crate::world::world_rng(seed, i);
        sampler.sample(pg, source, &mut rng, &mut out);
        if out.contains(&target) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Per-node reachability probabilities from a source set: index `v` holds
/// `Pr[v reachable from sources]`. One pass of `samples` cascades.
pub fn reachability_probabilities(
    pg: &ProbGraph,
    sources: &[NodeId],
    samples: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(samples > 0);
    let n = pg.num_nodes();
    let mut counts = vec![0u32; n];
    let mut sampler = CascadeSampler::new(n);
    let mut out = Vec::new();
    for i in 0..samples {
        let mut rng = crate::world::world_rng(seed, i);
        sampler.sample_multi(pg, sources, &mut rng, &mut out);
        for &v in &out {
            counts[v as usize] += 1;
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

/// Reliability search: nodes reachable from `sources` with probability
/// `>= eta`, as a canonical sorted set.
pub fn reliability_search(
    pg: &ProbGraph,
    sources: &[NodeId],
    eta: f64,
    samples: usize,
    seed: u64,
) -> Vec<NodeId> {
    assert!((0.0..=1.0).contains(&eta), "eta must be a probability");
    reachability_probabilities(pg, sources, samples, seed)
        .into_iter()
        .enumerate()
        .filter(|&(_, p)| p >= eta)
        .map(|(v, _)| v as NodeId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};

    #[test]
    fn two_terminal_on_a_path() {
        // rel(0, 2) on 0 -0.5-> 1 -0.5-> 2 is 0.25.
        let pg = ProbGraph::fixed(gen::path(3), 0.5).unwrap();
        let r = two_terminal(&pg, 0, 2, 100_000, 1);
        assert!((r - 0.25).abs() < 0.01, "{r}");
        assert_eq!(two_terminal(&pg, 0, 0, 100, 1), 1.0, "self-reliability");
        assert_eq!(two_terminal(&pg, 2, 0, 1000, 1), 0.0, "wrong direction");
    }

    #[test]
    fn two_terminal_parallel_paths() {
        // Two independent 2-hop routes 0->1->3 and 0->2->3, each p = 0.6:
        // per-route 0.36, combined 1 - (1 - 0.36)^2 = 0.5904.
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (1, 3), (0, 2), (2, 3)] {
            b.add_weighted_edge(u, v, 0.6);
        }
        let pg = b.build_prob().unwrap();
        let r = two_terminal(&pg, 0, 3, 200_000, 2);
        assert!((r - 0.5904).abs() < 0.005, "{r}");
    }

    #[test]
    fn reachability_probabilities_match_closed_form() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let probs = reachability_probabilities(&pg, &[0], 200_000, 3);
        for (v, expect) in [(0usize, 1.0), (1, 0.5), (2, 0.25), (3, 0.125)] {
            assert!((probs[v] - expect).abs() < 0.01, "node {v}: {}", probs[v]);
        }
    }

    #[test]
    fn reliability_search_thresholds() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        assert_eq!(reliability_search(&pg, &[0], 0.4, 50_000, 4), vec![0, 1]);
        assert_eq!(reliability_search(&pg, &[0], 0.2, 50_000, 4), vec![0, 1, 2]);
        assert_eq!(reliability_search(&pg, &[0], 1.0, 50_000, 4), vec![0]);
        assert_eq!(
            reliability_search(&pg, &[0], 0.0, 100, 4).len(),
            4,
            "eta = 0 keeps everything"
        );
    }

    #[test]
    fn majority_search_matches_majority_median_of_cascades() {
        // The η = 0.5 reliability search equals the majority median of the
        // same cascade sample (both = "in at least half the cascades").
        let pg = ProbGraph::fixed(gen::star(8), 0.7).unwrap();
        let samples = 10_001; // odd, avoids boundary ties
        let sets = crate::CascadeSampler::sample_many(&pg, 0, samples, 5);
        let maj = soi_jaccard_majority(&sets);
        let search = reliability_search(&pg, &[0], 0.5, samples, 5);
        assert_eq!(maj, search);
    }

    // Local copy of the majority rule (this crate cannot depend on
    // soi-jaccard without a cycle); mirrors soi_jaccard::median::majority.
    fn soi_jaccard_majority(samples: &[Vec<NodeId>]) -> Vec<NodeId> {
        let mut counts = std::collections::HashMap::new();
        for s in samples {
            for &v in s {
                *counts.entry(v).or_insert(0usize) += 1;
            }
        }
        let threshold = samples.len().div_ceil(2);
        let mut out: Vec<NodeId> = counts
            .into_iter()
            .filter(|&(_, c)| c >= threshold)
            .map(|(v, _)| v)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn multi_source_reliability() {
        let mut b = GraphBuilder::new(5);
        b.add_weighted_edge(0, 2, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        let pg = b.build_prob().unwrap();
        // From both sources: Pr[2 reachable] = 1 - 0.25 = 0.75.
        let probs = reachability_probabilities(&pg, &[0, 1], 100_000, 6);
        assert!((probs[2] - 0.75).abs() < 0.01, "{}", probs[2]);
        assert_eq!(probs[0], 1.0);
        assert_eq!(probs[4], 0.0);
    }
}
