//! The discrete-time Independent Cascade process.
//!
//! §1 of the paper: at time 0 the seeds are active; when a node first
//! becomes active at time `t` it gets one chance to activate each inactive
//! out-neighbor `v` with probability `p(u, v)`; successes activate at
//! `t + 1`. The set of eventually-active nodes has the same distribution
//! as live-edge reachability, but the *timestamps* matter for the
//! influence-probability learners (`soi-problog`), whose action logs
//! record when each user acted.

use soi_graph::{NodeId, ProbGraph};
use soi_util::rng::Rng;

/// One activation event of a simulated IC cascade.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Activation {
    /// The activated node.
    pub node: NodeId,
    /// Discrete activation time (seeds are at 0).
    pub time: u32,
}

/// Runs one IC simulation from `seeds`, returning activations in
/// chronological order (seeds first, ties broken by node id within a step).
pub fn simulate_ic<R: Rng>(pg: &ProbGraph, seeds: &[NodeId], rng: &mut R) -> Vec<Activation> {
    let g = pg.graph();
    let probs = pg.probs();
    let mut active = vec![false; g.num_nodes()];
    let mut events = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            frontier.push(s);
            events.push(Activation { node: s, time: 0 });
        }
    }
    let mut time = 0u32;
    let mut next: Vec<NodeId> = Vec::new();
    while !frontier.is_empty() {
        time += 1;
        next.clear();
        for &u in &frontier {
            for e in g.edge_range(u) {
                let v = g.edge_target(e);
                if !active[v as usize] && rng.random::<f64>() < probs[e] {
                    active[v as usize] = true;
                    next.push(v);
                }
            }
        }
        next.sort_unstable();
        for &v in &next {
            events.push(Activation { node: v, time });
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};

    #[test]
    fn deterministic_path_has_linear_times() {
        let pg = ProbGraph::fixed(gen::path(5), 1.0).unwrap();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(1);
        let events = simulate_ic(&pg, &[0], &mut rng);
        assert_eq!(
            events,
            (0..5)
                .map(|i| Activation {
                    node: i as NodeId,
                    time: i as u32
                })
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn seeds_are_time_zero_and_unique() {
        let pg = ProbGraph::fixed(gen::complete(6), 0.5).unwrap();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(2);
        let events = simulate_ic(&pg, &[3, 1, 3], &mut rng);
        let zeroes: Vec<_> = events
            .iter()
            .filter(|e| e.time == 0)
            .map(|e| e.node)
            .collect();
        assert_eq!(zeroes, vec![3, 1], "dup seed dropped, insertion order kept");
    }

    #[test]
    fn each_node_activates_at_most_once() {
        let pg = ProbGraph::fixed(gen::complete(20), 0.3).unwrap();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        for _ in 0..50 {
            let events = simulate_ic(&pg, &[0, 1], &mut rng);
            let mut nodes: Vec<_> = events.iter().map(|e| e.node).collect();
            nodes.sort_unstable();
            let before = nodes.len();
            nodes.dedup();
            assert_eq!(nodes.len(), before);
        }
    }

    #[test]
    fn times_are_bfs_layers() {
        // Every non-seed activation must have an in-neighbor activated at
        // exactly time - 1.
        let pg = ProbGraph::fixed(
            gen::gnm(30, 120, &mut soi_util::rng::Xoshiro256pp::seed_from_u64(9)),
            0.6,
        )
        .unwrap();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let events = simulate_ic(&pg, &[0], &mut rng);
        let time_of: std::collections::HashMap<NodeId, u32> =
            events.iter().map(|e| (e.node, e.time)).collect();
        for e in &events {
            if e.time == 0 {
                continue;
            }
            let has_parent = pg
                .graph()
                .nodes()
                .filter(|&u| pg.graph().has_edge(u, e.node))
                .any(|u| time_of.get(&u) == Some(&(e.time - 1)));
            assert!(
                has_parent,
                "node {} at t={} has no parent at t-1",
                e.node, e.time
            );
        }
    }

    #[test]
    fn final_set_distribution_matches_lazy_cascade() {
        // IC eventual actives ≍ live-edge reachability (Kempe et al.).
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        b.add_weighted_edge(0, 3, 0.2);
        let pg = b.build_prob().unwrap();
        let runs = 100_000;
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(5);
        let mut size_sum_ic = 0usize;
        for _ in 0..runs {
            size_sum_ic += simulate_ic(&pg, &[0], &mut rng).len();
        }
        // E|C| = 1 + 0.5 + 0.25 + 0.2 = 1.95.
        let mean = size_sum_ic as f64 / runs as f64;
        assert!((mean - 1.95).abs() < 0.02, "mean {mean}");
    }
}
