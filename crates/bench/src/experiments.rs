//! Shared experiment implementations: each function reproduces one table
//! or figure and writes TSV rows to the supplied writer. The per-figure
//! binaries and `run_all` are thin wrappers over these.

use crate::Args;
use soi_core::{all_typical_cascades, typical_cascade_of_set, TypicalCascadeConfig};
use soi_datasets::{all_configs, build, Dataset};
use soi_graph::NodeId;
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{infmax_std, infmax_tc, saturation, GreedyMode, SpreadOracle};
use soi_jaccard::median::MedianConfig;
use soi_util::stats::{percentile_sorted, RunningStats};
use soi_util::timer::Timer;
use soi_util::tsv::{fmt_f64, TsvWriter};
use std::io::Write;

/// Builds the selected dataset configurations at the requested scale.
pub fn datasets(args: &Args) -> Vec<Dataset> {
    all_configs()
        .into_iter()
        .filter(|&(n, s)| args.selects(&format!("{}-{}", n.name(), s.suffix())))
        .map(|(n, s)| {
            eprintln!(
                "building {}-{} (scale {})...",
                n.name(),
                s.suffix(),
                args.scale
            );
            build(n, s, args.scale, args.seed)
        })
        .collect()
}

fn index_of(data: &Dataset, args: &Args) -> CascadeIndex {
    CascadeIndex::build(
        &data.graph,
        IndexConfig {
            num_worlds: args.samples,
            seed: args.seed ^ 0x1d9,
            ..IndexConfig::default()
        },
    )
}

// ---------------------------------------------------------------- Table 1

/// Table 1: dataset characteristics.
pub fn table1<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["dataset", "nodes", "arcs", "type", "probabilities"])?;
    for data in datasets(args) {
        w.row(&[
            data.name(),
            data.graph.num_nodes().to_string(),
            data.graph.num_edges().to_string(),
            if data.network.directed() {
                "directed"
            } else {
                "undirected"
            }
            .to_string(),
            if data.source.is_learnt() {
                "learnt"
            } else {
                "assigned"
            }
            .to_string(),
        ])?;
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 3

/// Figure 3: CDF of edge probabilities per configuration (the paper skips
/// the fixed model, "not meaningful" — we do too).
pub fn figure3<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["dataset", "probability", "cdf"])?;
    for data in datasets(args) {
        if data.source == soi_datasets::ProbSource::Fixed {
            continue;
        }
        let name = data.name();
        let cdf = soi_util::stats::empirical_cdf(data.graph.probs());
        // Thin dense CDFs to ~200 plot points.
        let step = (cdf.len() / 200).max(1);
        for (i, &(x, f)) in cdf.iter().enumerate() {
            if i % step == 0 || i + 1 == cdf.len() {
                w.row(&[name.clone(), fmt_f64(x), fmt_f64(f)])?;
            }
        }
    }
    w.flush()
}

// ---------------------------------------------------------------- Table 2

/// Per-dataset sphere statistics (shared by Table 2 and Figure 5).
pub struct SphereStats {
    /// Configuration name.
    pub name: String,
    /// Typical cascades for every node.
    pub spheres: Vec<soi_core::NodeTypicalCascade>,
    /// The index used (for downstream experiments).
    pub index: CascadeIndex,
    /// The dataset (graph retained for cost estimation).
    pub dataset: Dataset,
}

/// Computes all typical cascades for every selected configuration.
pub fn compute_spheres(args: &Args) -> Vec<SphereStats> {
    datasets(args)
        .into_iter()
        .map(|data| {
            let name = data.name();
            eprintln!("indexing + spheres for {name}...");
            let index = index_of(&data, args);
            let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
            SphereStats {
                name,
                spheres,
                index,
                dataset: data,
            }
        })
        .collect()
}

/// Table 2: avg / sd / max of the typical-cascade size over all nodes.
pub fn table2<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["dataset", "avg_size", "sd_size", "max_size"])?;
    for s in compute_spheres(args) {
        let mut rs = RunningStats::new();
        for sphere in &s.spheres {
            rs.push(sphere.median.len() as f64);
        }
        w.row(&[
            s.name,
            format!("{:.1}", rs.mean()),
            format!("{:.1}", rs.sample_sd()),
            format!("{}", rs.max() as u64),
        ])?;
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 4

/// Figure 4: distribution of per-node time to compute the typical cascade
/// and its expected cost. Reports percentiles (ms) per dataset.
pub fn figure4<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(
        out,
        &[
            "dataset",
            "phase",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "max_ms",
            "mean_cost",
        ],
    )?;
    for data in datasets(args) {
        let name = data.name();
        eprintln!("figure4: {name}...");
        let index = index_of(&data, args);
        let n = index.num_nodes();
        // Probe every node at small scale, else a deterministic sample.
        let stride = (n / 2000).max(1);
        let mut median_times = Vec::new();
        let mut cost_times = Vec::new();
        let mut costs = RunningStats::new();
        let cost_samples = args.samples;
        for v in (0..n).step_by(stride) {
            let t = Timer::start();
            let samples = index.cascades_of(v as NodeId);
            let fit = soi_jaccard::median::jaccard_median_with(&samples, &MedianConfig::default());
            median_times.push(t.elapsed_ms());

            let t = Timer::start();
            let cost = soi_core::expected_cost(
                &data.graph,
                v as NodeId,
                &fit.median,
                cost_samples,
                args.seed ^ 0x5e,
            );
            cost_times.push(t.elapsed_ms());
            costs.push(cost);
        }
        for (phase, mut times) in [("median", median_times), ("expected_cost", cost_times)] {
            times.sort_by(f64::total_cmp);
            w.row(&[
                name.clone(),
                phase.to_string(),
                format!("{:.3}", percentile_sorted(&times, 50.0)),
                format!("{:.3}", percentile_sorted(&times, 90.0)),
                format!("{:.3}", percentile_sorted(&times, 99.0)),
                format!("{:.3}", percentile_sorted(&times, 100.0)),
                format!("{:.3}", costs.mean()),
            ])?;
        }
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 5

/// Figure 5: expected cost vs typical-cascade size, bucketed by size.
pub fn figure5<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(
        out,
        &[
            "dataset",
            "size_bucket_lo",
            "size_bucket_hi",
            "nodes",
            "mean_cost",
            "max_cost",
        ],
    )?;
    for s in compute_spheres(args) {
        // Evaluate expected cost on fresh cascades for a deterministic
        // node sample (full evaluation is quadratic on large configs).
        let n = s.spheres.len();
        let stride = (n / 1500).max(1);
        let max_size = s
            .spheres
            .iter()
            .map(|x| x.median.len())
            .max()
            .unwrap_or(1)
            .max(2);
        // Geometric size buckets: [1,2), [2,4), [4,8), ...
        let mut buckets: Vec<(usize, usize, RunningStats)> = Vec::new();
        let mut lo = 1usize;
        while lo <= max_size {
            buckets.push((lo, lo * 2, RunningStats::new()));
            lo *= 2;
        }
        for sphere in s.spheres.iter().step_by(stride) {
            let cost = soi_core::expected_cost(
                &s.dataset.graph,
                sphere.node,
                &sphere.median,
                args.samples,
                args.seed ^ 0xf5,
            );
            let size = sphere.median.len().max(1);
            let b = ((size as f64).log2().floor() as usize).min(buckets.len() - 1);
            buckets[b].2.push(cost);
        }
        for (lo, hi, rs) in &buckets {
            if rs.count() == 0 {
                continue;
            }
            w.row(&[
                s.name.clone(),
                lo.to_string(),
                hi.to_string(),
                rs.count().to_string(),
                format!("{:.3}", rs.mean()),
                format!("{:.3}", rs.max()),
            ])?;
        }
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 6

/// One Figure 6 panel: spread curves of the competing methods on one
/// dataset.
pub struct SpreadCurves {
    /// Configuration name.
    pub name: String,
    /// `σ(S_j)` for the paper's `InfMax_std` (CELF over fresh Monte-Carlo
    /// estimates — the baseline Figure 6 actually compares against).
    pub std_curve: Vec<f64>,
    /// `σ(S_j)` for the shared-world-pool greedy (a stronger, modern
    /// `InfMax_std` variant; reported as an extension).
    pub pool_curve: Vec<f64>,
    /// `σ(S_j)` for `InfMax_TC`.
    pub tc_curve: Vec<f64>,
    /// Seeds of the MC-estimate `InfMax_std` (used by Figure 8).
    pub std_seeds: Vec<NodeId>,
    /// Seeds of the pool-based greedy.
    pub pool_seeds: Vec<NodeId>,
    /// Seeds selected by `InfMax_TC`.
    pub tc_seeds: Vec<NodeId>,
}

/// Runs both influence-maximization methods on one prepared configuration.
///
/// Selection uses the index's world pool (the paper gives both methods the
/// same sampling budget); the reported spread curves are evaluated on a
/// *fresh* world pool. Evaluating on the selection pool would flatter
/// `InfMax_std`, which greedily overfits to exactly those worlds — the
/// saturation phenomenon of §6.4 is only visible under out-of-sample
/// evaluation.
pub fn spread_curves(s: &SphereStats, k: usize) -> SpreadCurves {
    let pool_run = infmax_std(&s.index, k, GreedyMode::Celf);
    let mc_run = soi_influence::infmax_std_mc(
        &s.dataset.graph,
        k,
        &soi_influence::McGreedyConfig {
            samples: s.index.num_worlds(),
            seed: s.index.config().seed ^ 0x3c3c,
            threads: 0,
            max_reevals_per_round: 30,
        },
    );
    let cascades: Vec<Vec<NodeId>> = s.spheres.iter().map(|x| x.median.clone()).collect();
    let tc_run = infmax_tc(&cascades, k, 0);

    let eval_index = CascadeIndex::build(
        &s.dataset.graph,
        IndexConfig {
            num_worlds: s.index.num_worlds(),
            seed: s.index.config().seed ^ 0xEEE1,
            ..IndexConfig::default()
        },
    );
    let eval_curve = |seeds: &[NodeId]| {
        let mut oracle = SpreadOracle::new(&eval_index);
        seeds
            .iter()
            .map(|&v| {
                oracle.commit(v);
                oracle.current_spread()
            })
            .collect::<Vec<f64>>()
    };
    SpreadCurves {
        name: s.name.clone(),
        std_curve: eval_curve(&mc_run.seeds),
        pool_curve: eval_curve(&pool_run.seeds),
        tc_curve: eval_curve(&tc_run.seeds),
        std_seeds: mc_run.seeds,
        pool_seeds: pool_run.seeds,
        tc_seeds: tc_run.seeds,
    }
}

/// Figure 6: expected spread of `InfMax_std` vs `InfMax_TC` for
/// `|S| = 1..=k` on every configuration.
pub fn figure6<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(
        out,
        &["dataset", "k", "sigma_std", "sigma_tc", "sigma_std_pool"],
    )?;
    for s in compute_spheres(args) {
        eprintln!("figure6: {}...", s.name);
        let curves = spread_curves(&s, args.k);
        let rows = curves
            .std_curve
            .len()
            .min(curves.tc_curve.len())
            .min(curves.pool_curve.len());
        for j in 0..rows {
            w.row(&[
                curves.name.clone(),
                (j + 1).to_string(),
                format!("{:.2}", curves.std_curve[j]),
                format!("{:.2}", curves.tc_curve[j]),
                format!("{:.2}", curves.pool_curve[j]),
            ])?;
        }
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 7

/// Figure 7: marginal-gain ratio `MG₁₀/MG₁` per iteration, plain greedy
/// (no optimizations), on the two small configurations the paper uses
/// (NetHEPT-F and Twitter-S analogues). Iterations 50..~85, like the
/// paper ("we start from the 50th iteration and compute the ratio for a
/// little more than 30 iterations").
pub fn figure7<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    use soi_datasets::{Network, ProbSource};
    let mut w = TsvWriter::new(out, &["dataset", "iteration", "ratio_std", "ratio_tc"])?;
    // The paper reports iterations 50..~85 (cost reasons: the unoptimized
    // greedy is what this experiment requires). Our synthetic spheres are
    // smaller relative to the graphs than the paper's, which shifts
    // InfMax_TC's discriminating phase earlier — so we emit the full
    // range from iteration 1 and EXPERIMENTS.md compares the phases.
    let start = 0usize;
    let iters = 85usize;
    let k = start + iters;
    for (net, src) in [
        (Network::NethepSyn, ProbSource::Fixed),
        (Network::TwitterSyn, ProbSource::Saito),
    ] {
        let name = format!("{}-{}", net.name(), src.suffix());
        if !args.selects(&name) {
            continue;
        }
        eprintln!("figure7: {name} (plain greedy, costly)...");
        let data = build(net, src, args.scale, args.seed);
        let index = index_of(&data, args);
        let std_run = infmax_std(&index, k, GreedyMode::Plain { capture_top: 10 });
        let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
        let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|x| x.median).collect();
        let tc_run = infmax_tc(&cascades, k, 10);
        for j in start..k {
            // Align ratios with iteration numbers (ratio_series would
            // silently skip degenerate iterations and shift indices).
            let fmt = |rankings: &[Vec<f64>]| {
                rankings
                    .get(j)
                    .and_then(|r| saturation::gain_ratio(r, 10))
                    .map_or("nan".into(), |x| format!("{x:.4}"))
            };
            w.row(&[
                name.clone(),
                (j + 1).to_string(),
                fmt(&std_run.gain_rankings),
                fmt(&tc_run.gain_rankings),
            ])?;
        }
    }
    w.flush()
}

// --------------------------------------------------------------- Figure 8

/// Figure 8: stability (expected cost of the seed set's typical cascade)
/// of the seed sets produced by both methods, at checkpoints of `|S|`.
pub fn figure8<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["dataset", "k", "cost_std", "cost_tc"])?;
    // The paper reports six datasets here; run whatever is selected.
    for s in compute_spheres(args) {
        eprintln!("figure8: {}...", s.name);
        let curves = spread_curves(&s, args.k);
        let config = TypicalCascadeConfig {
            median_samples: args.samples,
            cost_samples: args.samples.max(1000), // the paper uses 1000
            seed: args.seed ^ 0x8f8,
            ..TypicalCascadeConfig::default()
        };
        let checkpoints: Vec<usize> = [1, 2, 5, 10, 20, 50, 100, 150, 200]
            .into_iter()
            .filter(|&c| c <= curves.std_seeds.len() && c <= curves.tc_seeds.len())
            .collect();
        for c in checkpoints {
            let cost_std =
                typical_cascade_of_set(&s.dataset.graph, &curves.std_seeds[..c], &config)
                    .expected_cost;
            let cost_tc = typical_cascade_of_set(&s.dataset.graph, &curves.tc_seeds[..c], &config)
                .expected_cost;
            w.row(&[
                s.name.clone(),
                c.to_string(),
                format!("{cost_std:.4}"),
                format!("{cost_tc:.4}"),
            ])?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            scale: 0.03,
            samples: 24,
            seed: 1,
            k: 10,
            dataset: Some("nethept".into()),
            ..Args::default()
        }
    }

    fn run<F: FnOnce(&Args, &mut Vec<u8>) -> std::io::Result<()>>(f: F, args: &Args) -> String {
        let mut buf = Vec::new();
        f(args, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn table1_emits_selected_rows() {
        let out = run(|a, w| table1(a, w), &tiny_args());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "dataset\tnodes\tarcs\ttype\tprobabilities");
        assert_eq!(lines.len(), 3, "nethept-syn-W and nethept-syn-F");
        assert!(lines[1].starts_with("nethept-syn-W"));
        assert!(lines[2].starts_with("nethept-syn-F"));
    }

    #[test]
    fn figure3_skips_fixed_and_is_monotone() {
        let out = run(|a, w| figure3(a, w), &tiny_args());
        assert!(!out.contains("-F\t"), "fixed model skipped");
        // CDF values are within [0, 1].
        for line in out.lines().skip(1) {
            let cdf: f64 = line.split('\t').nth(2).unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&cdf));
        }
    }

    #[test]
    fn table2_reports_both_configs() {
        let out = run(|a, w| table2(a, w), &tiny_args());
        assert_eq!(out.lines().count(), 3);
        for line in out.lines().skip(1) {
            let avg: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
            assert!(avg >= 1.0, "spheres contain their source: {line}");
        }
    }

    #[test]
    fn figure6_curves_are_monotone() {
        let out = run(|a, w| figure6(a, w), &tiny_args());
        let mut last: Option<(String, f64, f64)> = None;
        for line in out.lines().skip(1) {
            let mut f = line.split('\t');
            let name = f.next().unwrap().to_string();
            let _k: usize = f.next().unwrap().parse().unwrap();
            let std: f64 = f.next().unwrap().parse().unwrap();
            let tc: f64 = f.next().unwrap().parse().unwrap();
            if let Some((lname, lstd, ltc)) = &last {
                if *lname == name {
                    assert!(std >= *lstd - 1e-9, "std curve monotone: {line}");
                    assert!(tc >= *ltc - 1e-9, "tc curve monotone: {line}");
                }
            }
            last = Some((name, std, tc));
        }
    }

    #[test]
    fn figure8_costs_are_probabilities() {
        let mut args = tiny_args();
        args.k = 10;
        let out = run(|a, w| figure8(a, w), &args);
        assert!(out.lines().count() > 1);
        for line in out.lines().skip(1) {
            let mut f = line.split('\t').skip(2);
            let a: f64 = f.next().unwrap().parse().unwrap();
            let b: f64 = f.next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b));
        }
    }
}
