//! Reproduces Figure6 of the paper. See `soi-bench` crate docs for flags.

fn main() {
    let args = soi_bench::Args::parse();
    let stdout = std::io::stdout();
    soi_bench::experiments::figure6(&args, stdout.lock()).expect("write to stdout");
}
