//! Reproduces Table2 of the paper. See `soi-bench` crate docs for flags.

fn main() {
    let args = soi_bench::Args::parse();
    let stdout = std::io::stdout();
    soi_bench::experiments::table2(&args, stdout.lock()).expect("write to stdout");
}
