//! Extension experiment (beyond the paper's suite); see `soi-bench` docs.

fn main() {
    let args = soi_bench::Args::parse();
    let stdout = std::io::stdout();
    soi_bench::extensions::table_learners(&args, stdout.lock()).expect("write to stdout");
}
