//! Runs the full experiment suite — every table and figure of §6 — and
//! writes one TSV per experiment under `--out` (default
//! `target/experiments/`). See the `soi-bench` crate docs for flags.
//!
//! The default scale/sample settings finish on a laptop; pass
//! `--samples 1000 --scale 1` for the paper's sampling budget (slower).

use std::fs::File;
use std::io::BufWriter;
use std::path::Path;

fn main() {
    let args = soi_bench::Args::parse();
    let dir = Path::new(&args.out);
    std::fs::create_dir_all(dir).expect("create output dir");

    type Runner = fn(&soi_bench::Args, BufWriter<File>) -> std::io::Result<()>;
    let suite: [(&str, Runner); 8] = [
        ("table1.tsv", |a, w| soi_bench::experiments::table1(a, w)),
        ("figure3.tsv", |a, w| soi_bench::experiments::figure3(a, w)),
        ("table2.tsv", |a, w| soi_bench::experiments::table2(a, w)),
        ("figure4.tsv", |a, w| soi_bench::experiments::figure4(a, w)),
        ("figure5.tsv", |a, w| soi_bench::experiments::figure5(a, w)),
        ("figure6.tsv", |a, w| soi_bench::experiments::figure6(a, w)),
        ("figure7.tsv", |a, w| soi_bench::experiments::figure7(a, w)),
        ("figure8.tsv", |a, w| soi_bench::experiments::figure8(a, w)),
    ];

    for (file, runner) in suite {
        let path = dir.join(file);
        eprintln!("=== {} ===", path.display());
        let t = soi_util::Timer::start();
        let out = BufWriter::new(File::create(&path).expect("create output file"));
        runner(&args, out).expect("experiment failed");
        eprintln!(
            "=== {} done in {} ===",
            file,
            soi_util::timer::format_duration(t.elapsed())
        );
    }
    eprintln!("all experiments written to {}", dir.display());
}
