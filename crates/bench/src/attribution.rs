//! Per-thread attribution capture for the scaling benches.
//!
//! The `scaling_*` groups answer "how much does tN cost over t1"; this
//! module answers "where those cycles went". [`capture`] runs one
//! instrumented pass of a workload under a clean `soi_obs::perthread`
//! plane and folds the snapshot into named series suitable for
//! [`crate::microbench::attach_extra`]:
//!
//! ```text
//! wall_capacity_ns = wall_busy_ns + wall_idle_ns + wall_merge_ns
//!                  + wall_lock_wait_ns + wall_untracked_ns
//!                  + wall_imbalance_ns
//! ```
//!
//! The identity holds by construction (`untracked` and `imbalance` are
//! residuals), so the series account for 100% of the measured parallel
//! region — in particular, the entire tN-vs-t1 wall-clock gap of a
//! scaling entry decomposes into the non-busy terms. The `*_ppm` series
//! restate each term as parts-per-million of capacity so curves at
//! different scales compare directly.

use soi_obs::perthread;

/// One attribution series: `(name, value)` ready for `attach_extra`.
pub type Series = Vec<(String, u128)>;

/// Runs `f` once with the per-thread plane freshly reset and returns
/// the attribution series for the region it executed.
pub fn capture(f: impl FnOnce()) -> Series {
    soi_obs::reset();
    f();
    let (threads, pool) = perthread::snapshot();
    let workers: Vec<&perthread::ThreadSnap> = threads
        .iter()
        .filter(|t| t.slot < perthread::MAX_SLOTS)
        .collect();
    let sum = |get: fn(&perthread::ThreadSnap) -> u64| -> u128 {
        workers.iter().map(|t| u128::from(get(t))).sum()
    };
    let busy = sum(|t| t.busy_ns);
    let idle = sum(|t| t.idle_ns);
    let merge = sum(|t| t.merge_ns);
    let lock_wait = sum(|t| t.lock_wait_ns);
    let lifetime = u128::from(pool.lifetime_ns);
    let capacity = u128::from(pool.capacity_ns);
    let imbalance = u128::from(pool.imbalance_ns);
    let untracked = lifetime.saturating_sub(busy + idle + merge + lock_wait);
    let ppm = |term: u128| -> u128 { (term * 1_000_000).checked_div(capacity).unwrap_or(0) };
    vec![
        ("threads".to_string(), workers.len() as u128),
        ("dispatches".to_string(), u128::from(pool.dispatches)),
        ("items".to_string(), u128::from(pool.items)),
        ("wall_capacity_ns".to_string(), capacity),
        ("wall_busy_ns".to_string(), busy),
        ("wall_idle_ns".to_string(), idle),
        ("wall_merge_ns".to_string(), merge),
        ("wall_lock_wait_ns".to_string(), lock_wait),
        ("wall_untracked_ns".to_string(), untracked),
        ("wall_imbalance_ns".to_string(), imbalance),
        ("busy_ppm".to_string(), ppm(busy)),
        ("idle_ppm".to_string(), ppm(idle)),
        ("merge_ppm".to_string(), ppm(merge)),
        ("lock_wait_ppm".to_string(), ppm(lock_wait)),
        ("untracked_ppm".to_string(), ppm(untracked)),
        ("imbalance_ppm".to_string(), ppm(imbalance)),
    ]
}

/// Looks one term up in a captured series (helper for assertions).
pub fn term(series: &Series, name: &str) -> u128 {
    series
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The capture identity must cover the whole region: every
    /// nanosecond of capacity lands in exactly one term.
    #[test]
    fn capture_decomposes_capacity_exactly() {
        let _g = crate::obs_test_lock();
        let series = capture(|| {
            let mut slots = vec![0u64; 64];
            soi_util::pool::for_each_indexed(&mut slots, 4, |i, slot| {
                *slot = (0..200u64).fold(i as u64, |a, b| a.wrapping_mul(31).wrapping_add(b));
            });
            std::hint::black_box(&slots);
        });
        assert_eq!(term(&series, "threads"), 4);
        assert_eq!(term(&series, "dispatches"), 1);
        assert_eq!(term(&series, "items"), 64);
        let capacity = term(&series, "wall_capacity_ns");
        assert!(capacity > 0, "instrumented pass saw no capacity");
        let parts = term(&series, "wall_busy_ns")
            + term(&series, "wall_idle_ns")
            + term(&series, "wall_merge_ns")
            + term(&series, "wall_lock_wait_ns")
            + term(&series, "wall_untracked_ns")
            + term(&series, "wall_imbalance_ns");
        assert_eq!(parts, capacity, "attribution identity broke");
        let ppm_total = term(&series, "busy_ppm")
            + term(&series, "idle_ppm")
            + term(&series, "merge_ppm")
            + term(&series, "lock_wait_ppm")
            + term(&series, "untracked_ppm")
            + term(&series, "imbalance_ppm");
        // Six floor divisions can each lose < 1 ppm.
        assert!(
            (999_994..=1_000_000).contains(&ppm_total),
            "ppm terms sum to {ppm_total}"
        );
    }

    #[test]
    fn capture_with_no_parallel_region_is_all_zero() {
        let _g = crate::obs_test_lock();
        let series = capture(|| {});
        assert_eq!(term(&series, "wall_capacity_ns"), 0);
        assert_eq!(term(&series, "busy_ppm"), 0);
        assert_eq!(term(&series, "threads"), 0);
    }
}
