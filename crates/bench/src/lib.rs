//! # soi-bench
//!
//! The experiment harness: one binary per table/figure of the paper's §6,
//! plus dependency-free micro-benchmarks (see [`microbench`]).
//!
//! Binaries (`cargo run --release -p soi-bench --bin <name>`):
//!
//! | binary | reproduces | output |
//! |---|---|---|
//! | `table1`  | Table 1 — dataset characteristics | TSV to stdout |
//! | `figure3` | Figure 3 — CDFs of edge probabilities | TSV |
//! | `table2`  | Table 2 — typical-cascade size stats | TSV |
//! | `figure4` | Figure 4 — per-node computation-time distributions | TSV |
//! | `figure5` | Figure 5 — expected cost vs sphere size | TSV |
//! | `figure6` | Figure 6 — spread: InfMax_std vs InfMax_TC, k = 1..200 | TSV |
//! | `figure7` | Figure 7 — marginal-gain-ratio saturation | TSV |
//! | `figure8` | Figure 8 — seed-set stability | TSV |
//! | `run_all` | everything above | TSVs under `target/experiments/` |
//!
//! Every binary accepts `--scale <f>` (dataset size multiplier, default
//! 1.0), `--samples <n>` (worlds/cascades, default 256; the paper uses
//! 1000), `--seed <n>`, and `--k <n>` where applicable. Determinism: same
//! flags, same output.

pub mod attribution;
pub mod cli;
pub mod experiments;
pub mod extensions;
pub mod microbench;
pub mod overhead;

pub use cli::Args;

/// Serializes tests that touch the process-global `soi_obs` state (the
/// per-thread plane and its enabled flag): [`attribution`] resets it,
/// [`overhead`] toggles it, and the two must not interleave.
#[cfg(test)]
pub(crate) fn obs_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
