//! # soi-bench
//!
//! The experiment harness: one binary per table/figure of the paper's §6,
//! plus dependency-free micro-benchmarks (see [`microbench`]).
//!
//! Binaries (`cargo run --release -p soi-bench --bin <name>`):
//!
//! | binary | reproduces | output |
//! |---|---|---|
//! | `table1`  | Table 1 — dataset characteristics | TSV to stdout |
//! | `figure3` | Figure 3 — CDFs of edge probabilities | TSV |
//! | `table2`  | Table 2 — typical-cascade size stats | TSV |
//! | `figure4` | Figure 4 — per-node computation-time distributions | TSV |
//! | `figure5` | Figure 5 — expected cost vs sphere size | TSV |
//! | `figure6` | Figure 6 — spread: InfMax_std vs InfMax_TC, k = 1..200 | TSV |
//! | `figure7` | Figure 7 — marginal-gain-ratio saturation | TSV |
//! | `figure8` | Figure 8 — seed-set stability | TSV |
//! | `run_all` | everything above | TSVs under `target/experiments/` |
//!
//! Every binary accepts `--scale <f>` (dataset size multiplier, default
//! 1.0), `--samples <n>` (worlds/cascades, default 256; the paper uses
//! 1000), `--seed <n>`, and `--k <n>` where applicable. Determinism: same
//! flags, same output.

pub mod cli;
pub mod experiments;
pub mod extensions;
pub mod microbench;

pub use cli::Args;
