//! Extension experiments beyond the paper's §6 — clearly separated from
//! the reproduction suite. Each is still a deterministic TSV emitter.
//!
//! * [`table_learners`] — learner recovery quality against the planted
//!   ground truth (possible here because our logs are synthetic; the
//!   paper could not measure this on crawled data);
//! * [`figure_lt`] — the typical-cascade pipeline under the Linear
//!   Threshold model;
//! * [`figure_baselines`] — a seeding shoot-out: greedy variants,
//!   `InfMax_TC`, RIS, and the cheap heuristics.

use crate::Args;
use soi_core::all_typical_cascades;
use soi_datasets::{build, Network, ProbSource};
use soi_graph::NodeId;
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{
    degree_discount_seeds, high_degree_seeds, infmax_ris, infmax_std, infmax_tc, pagerank_seeds,
    random_seeds, GreedyMode,
};
use soi_jaccard::median::MedianConfig;
use soi_problog::generate::LogGenConfig;
use soi_problog::{eval, generate_log, learn_goyal, learn_goyal_jaccard, learn_saito, SaitoConfig};
use soi_util::tsv::TsvWriter;
use std::io::Write;

/// Learner recovery quality: for each learnable network, plant a
/// ground-truth graph, generate a log, and score every learner.
pub fn table_learners<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["network", "learner", "mae", "rmse", "pearson"])?;
    for net in Network::all() {
        if !net.has_activity_log() || !args.selects(net.name()) {
            continue;
        }
        eprintln!("learners: {}...", net.name());
        // Reuse the registry's ground-truth construction (build a -S
        // config to get the planted truth + topology).
        let d = build(net, ProbSource::Saito, args.scale, args.seed);
        // xtask-allow: panic_policy — Saito datasets always carry truth.
        let truth = d.ground_truth.expect("learnt config carries truth");
        // The learnt ProbGraph drops zero arcs; re-learn on the topology
        // to get aligned vectors. Use the same log parameters as the
        // registry.
        let topology = net.build_graph(args.scale, args.seed);
        let mut rng = {
            soi_util::rng::Xoshiro256pp::seed_from_u64(soi_util::rng::derive_seed(
                args.seed, 0x6c6f67,
            ))
        };
        use soi_util::rng::Rng;
        let in_deg = topology.in_degrees();
        let truth_pg = soi_graph::ProbGraph::from_fn(topology, |_, v| {
            let factor = 0.3 + 1.7 * rng.random::<f64>();
            (factor / in_deg[v as usize] as f64).clamp(1e-6, 1.0)
        })
        // xtask-allow: panic_policy — clamped to [1e-6, 1] above.
        .expect("valid");
        debug_assert_eq!(truth_pg.probs(), &truth[..]);
        let items = ((300.0 * args.scale) as usize).clamp(100, 3000);
        let log = generate_log(
            &truth_pg,
            &LogGenConfig {
                num_items: items,
                seeds_per_item: 2,
                seed: soi_util::rng::derive_seed(args.seed, 0x6974656d),
            },
        );
        let learners: [(&str, Vec<f64>); 3] = [
            (
                "saito-em",
                learn_saito(truth_pg.graph(), &log, &SaitoConfig::default()),
            ),
            (
                "goyal-bernoulli",
                learn_goyal(truth_pg.graph(), &log, Some(1)),
            ),
            (
                "goyal-jaccard",
                learn_goyal_jaccard(truth_pg.graph(), &log, Some(1)),
            ),
        ];
        for (name, learned) in learners {
            w.row(&[
                net.name().to_string(),
                name.to_string(),
                format!("{:.4}", eval::mae(&learned, &truth)),
                format!("{:.4}", eval::rmse(&learned, &truth)),
                format!("{:.4}", eval::pearson(&learned, &truth)),
            ])?;
        }
    }
    w.flush()
}

/// Typical cascades and `InfMax_TC` under the Linear Threshold model.
pub fn figure_lt<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    use soi_sampling::lt::{simulate_lt, LtGraph, LtWorldSampler};
    let mut w = TsvWriter::new(
        out,
        &[
            "network",
            "avg_sphere",
            "max_sphere",
            "k",
            "lt_spread_tc",
            "lt_spread_degree",
            "lt_spread_random",
        ],
    )?;
    for net in [Network::DiggSyn, Network::NethepSyn] {
        if !args.selects(net.name()) {
            continue;
        }
        eprintln!("lt: {}...", net.name());
        let topo = net.build_graph(args.scale, args.seed);
        let lt = LtGraph::uniform(&topo);
        let mut sampler = LtWorldSampler::new();
        let worlds: Vec<soi_graph::DiGraph> = (0..args.samples)
            .map(|i| sampler.sample(&lt, &mut soi_sampling::world::world_rng(args.seed, i)))
            .collect();
        let index = CascadeIndex::build_from_worlds(
            topo.num_nodes(),
            worlds.iter(),
            IndexConfig {
                num_worlds: args.samples,
                seed: args.seed,
                ..IndexConfig::default()
            },
        );
        let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
        let sizes: Vec<f64> = spheres.iter().map(|s| s.median.len() as f64).collect();
        let avg = sizes.iter().sum::<f64>() / sizes.len() as f64;
        let max = sizes.iter().cloned().fold(0.0, f64::max);
        let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
        let k = args.k.min(20);
        let tc = infmax_tc(&cascades, k, 0);
        let deg = high_degree_seeds(&topo, k);
        let mut rng = { soi_util::rng::Xoshiro256pp::seed_from_u64(args.seed ^ 0x17) };
        let rand_seeds = random_seeds(&topo, k, &mut rng);
        let spread = |seeds: &[NodeId], rng: &mut soi_util::rng::Xoshiro256pp| {
            let rounds = 2000;
            (0..rounds)
                .map(|_| simulate_lt(&lt, seeds, rng).len())
                .sum::<usize>() as f64
                / rounds as f64
        };
        w.row(&[
            net.name().to_string(),
            format!("{avg:.1}"),
            format!("{max:.0}"),
            k.to_string(),
            format!("{:.1}", spread(&tc.seeds, &mut rng)),
            format!("{:.1}", spread(&deg, &mut rng)),
            format!("{:.1}", spread(&rand_seeds, &mut rng)),
        ])?;
    }
    w.flush()
}

/// Seeding shoot-out on two representative configs.
pub fn figure_baselines<W: Write>(args: &Args, out: W) -> std::io::Result<()> {
    let mut w = TsvWriter::new(out, &["dataset", "method", "k", "spread"])?;
    for (net, src) in [
        (Network::NethepSyn, ProbSource::WeightedCascade),
        (Network::EpinionsSyn, ProbSource::Fixed),
    ] {
        let name = format!("{}-{}", net.name(), src.suffix());
        if !args.selects(&name) {
            continue;
        }
        eprintln!("baselines: {name}...");
        let data = build(net, src, args.scale, args.seed);
        let pg = &data.graph;
        let index = CascadeIndex::build(
            pg,
            IndexConfig {
                num_worlds: args.samples,
                seed: args.seed ^ 0x1b,
                ..IndexConfig::default()
            },
        );
        let k = args.k.min(50);
        let spheres = all_typical_cascades(&index, &MedianConfig::default(), 0);
        let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
        let mut rng = { soi_util::rng::Xoshiro256pp::seed_from_u64(args.seed ^ 0x2d) };
        let methods: Vec<(&str, Vec<NodeId>)> = vec![
            ("greedy_pool", infmax_std(&index, k, GreedyMode::Celf).seeds),
            ("infmax_tc", infmax_tc(&cascades, k, 0).seeds),
            (
                "ris",
                infmax_ris(pg, k, 20 * pg.num_nodes(), args.seed ^ 0x3f).seeds,
            ),
            ("degree", high_degree_seeds(pg.graph(), k)),
            ("degree_discount", degree_discount_seeds(pg.graph(), k, 0.1)),
            ("pagerank", pagerank_seeds(pg.graph(), k)),
            ("random", random_seeds(pg.graph(), k, &mut rng)),
        ];
        for (method, seeds) in methods {
            for checkpoint in [k / 5, k] {
                if checkpoint == 0 {
                    continue;
                }
                let sigma = soi_sampling::estimate_spread(
                    pg,
                    &seeds[..checkpoint.min(seeds.len())],
                    2000,
                    args.seed ^ 0x55,
                );
                w.row(&[
                    name.clone(),
                    method.to_string(),
                    checkpoint.to_string(),
                    format!("{sigma:.1}"),
                ])?;
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            scale: 0.04,
            samples: 16,
            seed: 2,
            k: 10,
            ..Args::default()
        }
    }

    fn run<F: FnOnce(&Args, &mut Vec<u8>) -> std::io::Result<()>>(f: F, args: &Args) -> String {
        let mut buf = Vec::new();
        f(args, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn learners_table_scores_all_three() {
        let out = run(|a, w| table_learners(a, w), &tiny_args());
        assert_eq!(out.lines().count(), 1 + 3 * 3, "3 networks x 3 learners");
        for line in out.lines().skip(1) {
            let pearson: f64 = line.split('\t').nth(4).unwrap().parse().unwrap();
            assert!((-1.0..=1.0).contains(&pearson));
        }
    }

    #[test]
    fn lt_figure_runs_and_beats_random() {
        let out = run(|a, w| figure_lt(a, w), &tiny_args());
        assert_eq!(out.lines().count(), 3, "two networks");
        for line in out.lines().skip(1) {
            let f: Vec<&str> = line.split('\t').collect();
            let tc: f64 = f[4].parse().unwrap();
            let rnd: f64 = f[6].parse().unwrap();
            assert!(tc >= rnd * 0.8, "LT TC {tc} vs random {rnd}");
        }
    }

    #[test]
    fn baselines_figure_is_complete() {
        let out = run(|a, w| figure_baselines(a, w), &tiny_args());
        // 2 configs x 7 methods x 2 checkpoints + header.
        assert_eq!(out.lines().count(), 1 + 2 * 7 * 2);
    }
}
