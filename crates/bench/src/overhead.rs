//! Instrumentation-overhead guard for the per-thread timing plane.
//!
//! The introspection plane (`soi_obs::perthread`) promises to answer
//! "where do the cycles go" *without perturbing the answer*. This module
//! makes that promise checkable: [`measure`] times the same parallel
//! workload with the plane off and on, interleaved A/B so drift in
//! machine load hits both arms equally, and reports the relative cost.
//! The `bench_obs_overhead` target publishes the two arms as
//! `obs_overhead/*` entries in `BENCH_summary.json`; the unit test below
//! holds the measured overhead under [`MAX_OVERHEAD_FRACTION`].
//!
//! The plane's cost model is per-dispatch and per-chunk — never
//! per-item — so the workload here uses deliberately *small* dispatches
//! (many fan-outs of modest work) to stress the worst realistic case.

use std::time::Instant;

/// The guard threshold: the timing plane may cost at most 5% of the
/// uninstrumented runtime on the dispatch-heavy workload.
pub const MAX_OVERHEAD_FRACTION: f64 = 0.05;

/// One A/B comparison of the workload with the plane off and on.
#[derive(Clone, Copy, Debug)]
pub struct Overhead {
    /// Median workload time with the plane disabled, nanoseconds.
    pub disabled_ns: u128,
    /// Median workload time with the plane enabled, nanoseconds.
    pub enabled_ns: u128,
}

impl Overhead {
    /// Relative cost of the plane: `enabled / disabled - 1`, floored at
    /// zero (an enabled arm that measures faster is noise, not a
    /// negative cost).
    pub fn fraction(&self) -> f64 {
        if self.disabled_ns == 0 {
            return 0.0;
        }
        let ratio = self.enabled_ns as f64 / self.disabled_ns as f64;
        (ratio - 1.0).max(0.0)
    }
}

/// The measured workload: repeated 4-way fan-outs over a small slice
/// with real per-item compute. Dispatch-heavy relative to total work,
/// which is the plane's worst case (its cost is per-dispatch).
pub fn workload() {
    let mut slots = vec![0u64; 128];
    for round in 0..8u64 {
        soi_util::pool::for_each_indexed(&mut slots, 4, |i, slot| {
            let mut acc = round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            for step in 0..2_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(step);
            }
            *slot = acc;
        });
    }
    std::hint::black_box(&slots);
}

/// Times one run of [`workload`] in nanoseconds.
fn timed_run() -> u128 {
    let t = Instant::now();
    workload();
    t.elapsed().as_nanos()
}

/// Runs `rounds` interleaved disabled/enabled pairs (after one warmup
/// pair) and compares the per-arm medians. The plane is left enabled.
pub fn measure(rounds: usize) -> Overhead {
    let rounds = rounds.max(3);
    soi_obs::reset();
    // Warmup both arms once so allocator and cache state are settled.
    soi_obs::perthread::set_enabled(false);
    workload();
    soi_obs::perthread::set_enabled(true);
    workload();

    let mut disabled = Vec::with_capacity(rounds);
    let mut enabled = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        soi_obs::perthread::set_enabled(false);
        disabled.push(timed_run());
        soi_obs::perthread::set_enabled(true);
        enabled.push(timed_run());
    }
    soi_obs::perthread::set_enabled(true);
    disabled.sort_unstable();
    enabled.sort_unstable();
    Overhead {
        disabled_ns: disabled[disabled.len() / 2],
        enabled_ns: enabled[enabled.len() / 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_floors_at_zero_and_handles_degenerate_input() {
        let faster = Overhead {
            disabled_ns: 100,
            enabled_ns: 90,
        };
        assert_eq!(faster.fraction(), 0.0);
        let degenerate = Overhead {
            disabled_ns: 0,
            enabled_ns: 50,
        };
        assert_eq!(degenerate.fraction(), 0.0);
        let ten_pct = Overhead {
            disabled_ns: 1_000,
            enabled_ns: 1_100,
        };
        assert!((ten_pct.fraction() - 0.1).abs() < 1e-9);
    }

    /// The acceptance guard: the timing plane costs < 5% on the
    /// dispatch-heavy workload. One retry with more rounds absorbs a
    /// noisy first measurement on loaded CI machines.
    #[test]
    fn instrumentation_overhead_stays_under_five_percent() {
        let _g = crate::obs_test_lock();
        let mut measured = measure(5);
        if measured.fraction() >= MAX_OVERHEAD_FRACTION {
            measured = measure(15);
        }
        assert!(
            measured.fraction() < MAX_OVERHEAD_FRACTION,
            "timing plane costs {:.1}% (disabled {} ns, enabled {} ns)",
            measured.fraction() * 100.0,
            measured.disabled_ns,
            measured.enabled_ns
        );
        assert!(
            soi_obs::perthread::enabled(),
            "measure must leave the plane enabled"
        );
    }
}
