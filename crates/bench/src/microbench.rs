//! A minimal, dependency-free micro-benchmark harness.
//!
//! Replaces the former Criterion benches so the workspace builds with no
//! external registry dependencies (the hermeticity policy enforced by
//! `cargo xtask lint`). Each bench target under `benches/` is a plain
//! `fn main()` (`harness = false`) that times closures with
//! [`Bencher::bench`] and prints one TSV row per case:
//!
//! ```text
//! group/id<TAB>median_ns<TAB>mean_ns<TAB>min_ns<TAB>iters
//! ```
//!
//! Methodology: a warmup (3 iterations or ≥ 50 ms, whichever comes
//! first), then `sample_size` timed iterations; the median is the
//! headline number, which is robust to scheduler noise without needing
//! Criterion's bootstrap machinery.
//!
//! Every result is also recorded in-process; a bench `main` ends with
//! [`write_summary`], which merges its rows by name into the
//! machine-readable `BENCH_summary.json` at the repository root so CI
//! and regression tooling can diff runs without scraping stdout.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// One finished micro-benchmark case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// `group/id` of the case.
    pub name: String,
    /// Median of the timed samples, nanoseconds.
    pub median_ns: u128,
    /// 90th percentile (nearest-rank) of the timed samples, nanoseconds.
    pub p90_ns: u128,
    /// Mean of the timed samples, nanoseconds.
    pub mean_ns: u128,
    /// Fastest timed sample, nanoseconds.
    pub min_ns: u128,
    /// Number of timed iterations.
    pub iters: usize,
    /// Additional named numeric series attached after the timed run —
    /// e.g. the per-thread attribution terms the scaling benches record
    /// (`wall_busy_ns`, `wall_idle_ns`, `busy_ppm`, …). Serialized as
    /// extra JSON fields on the record's summary line.
    pub extra: Vec<(String, u128)>,
}

/// Results accumulated by every [`Bencher`] in this process.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(r: BenchRecord) {
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(r);
}

/// A named group of micro-benchmarks sharing a sample size.
pub struct Bencher {
    group: String,
    sample_size: usize,
}

impl Bencher {
    /// Creates a group; results print as `group/id`.
    pub fn group(name: &str) -> Self {
        Bencher {
            group: name.to_string(),
            sample_size: 20,
        }
    }

    /// Sets the number of timed iterations per case (default 20).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints one result row. The closure's return value is
    /// passed through [`std::hint::black_box`] so the computation is not
    /// optimized away.
    pub fn bench<T>(&self, id: impl std::fmt::Display, mut f: impl FnMut() -> T) {
        // Warmup: at least 3 runs or 50 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || (warm_start.elapsed().as_millis() < 50 && warm_iters < 1000) {
            std::hint::black_box(f());
            warm_iters += 1;
        }

        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            samples_ns.push(t.elapsed().as_nanos());
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let p90 = percentile(&samples_ns, 90);
        let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
        let min = samples_ns[0];
        println!(
            "{}/{}\t{}\t{}\t{}\t{}",
            self.group, id, median, mean, min, self.sample_size
        );
        record(BenchRecord {
            name: format!("{}/{}", self.group, id),
            median_ns: median,
            p90_ns: p90,
            mean_ns: mean,
            min_ns: min,
            iters: self.sample_size,
            extra: Vec::new(),
        });
    }
}

/// Attaches named numeric series to an already-recorded case (matched
/// by `group/id` name); a repeated key replaces the earlier value. The
/// scaling benches use this to land per-thread attribution next to the
/// timing they explain. Unknown names are ignored.
pub fn attach_extra(name: &str, entries: impl IntoIterator<Item = (String, u128)>) {
    let mut results = RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(r) = results.iter_mut().find(|r| r.name == name) else {
        return;
    };
    for (key, value) in entries {
        match r.extra.iter_mut().find(|(k, _)| k == &key) {
            Some(slot) => slot.1 = value,
            None => r.extra.push((key, value)),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample vector.
fn percentile(sorted_ns: &[u128], pct: usize) -> u128 {
    let rank = (sorted_ns.len() * pct).div_ceil(100).max(1);
    sorted_ns[rank - 1]
}

/// Serializes one record as a single JSON object line. The fixed timing
/// fields come first; any attached extras follow as additional numeric
/// fields.
fn render_record(r: &BenchRecord) -> String {
    let mut line = format!(
        "{{\"name\":\"{}\",\"median_ns\":{},\"p90_ns\":{},\"mean_ns\":{},\"min_ns\":{},\"iters\":{}",
        r.name, r.median_ns, r.p90_ns, r.mean_ns, r.min_ns, r.iters
    );
    for (key, value) in &r.extra {
        line.push_str(&format!(",\"{key}\":{value}"));
    }
    line.push('}');
    line
}

/// Parses a line previously emitted by [`render_record`]. Bench names
/// and extra keys never contain quotes, escapes, commas, or colons, so
/// plain field splitting suffices; fields beyond the fixed timing set
/// land in `extra` (preserving order).
fn parse_record(line: &str) -> Option<BenchRecord> {
    let body = line
        .trim()
        .trim_end_matches(',')
        .strip_prefix('{')?
        .strip_suffix('}')?;
    let mut name = None;
    let mut fields: Vec<(String, u128)> = Vec::new();
    for part in body.split(',') {
        let (key, value) = part.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        if key == "name" {
            name = Some(value.strip_prefix('"')?.strip_suffix('"')?.to_string());
        } else {
            fields.push((key.to_string(), value.parse().ok()?));
        }
    }
    let mut take = |key: &str| -> Option<u128> {
        let at = fields.iter().position(|(k, _)| k == key)?;
        Some(fields.remove(at).1)
    };
    Some(BenchRecord {
        name: name?,
        median_ns: take("median_ns")?,
        p90_ns: take("p90_ns")?,
        mean_ns: take("mean_ns")?,
        min_ns: take("min_ns")?,
        iters: take("iters")? as usize,
        extra: fields,
    })
}

/// Merges this process's results into the JSON summary at `path`:
/// existing entries with the same name are replaced, everything else is
/// kept, and the output is sorted by name.
pub fn write_summary_to(path: &std::path::Path) -> std::io::Result<()> {
    let fresh = RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let mut merged: Vec<BenchRecord> = std::fs::read_to_string(path)
        .map(|text| text.lines().filter_map(parse_record).collect())
        .unwrap_or_default();
    merged.retain(|old| !fresh.iter().any(|r| r.name == old.name));
    merged.extend(fresh);
    merged.sort_by(|a, b| a.name.cmp(&b.name));

    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "{{")?;
    writeln!(w, "\"benches\": [")?;
    for (i, r) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        writeln!(w, "{}{}", render_record(r), comma)?;
    }
    writeln!(w, "]")?;
    writeln!(w, "}}")?;
    Ok(())
}

/// [`write_summary_to`] targeting `BENCH_summary.json` at the workspace
/// root. Bench binaries call this at the end of `main`.
pub fn write_summary() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_summary.json");
    if let Err(e) = write_summary_to(&path) {
        eprintln!("BENCH_summary.json: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_and_does_not_panic() {
        let b = Bencher::group("smoke").sample_size(3);
        let mut count = 0u64;
        b.bench("counting", || {
            count += 1;
            count
        });
        // Warmup (>= 3) plus 3 timed iterations.
        assert!(count >= 6);
        // And the case was recorded for the summary.
        let results = RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(results.iter().any(|r| r.name == "smoke/counting"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u128> = (1..=10).collect();
        assert_eq!(percentile(&v, 90), 9);
        assert_eq!(percentile(&v, 50), 5);
        assert_eq!(percentile(&v, 100), 10);
        assert_eq!(percentile(&[7], 90), 7);
    }

    #[test]
    fn record_round_trips_through_json_line() {
        let r = BenchRecord {
            name: "group/1000".into(),
            median_ns: 123,
            p90_ns: 150,
            mean_ns: 130,
            min_ns: 110,
            iters: 20,
            extra: Vec::new(),
        };
        assert_eq!(parse_record(&render_record(&r)), Some(r));
        assert_eq!(parse_record("{\"benches\": ["), None);
        assert_eq!(parse_record("]"), None);
    }

    #[test]
    fn extras_render_parse_and_attach_by_name() {
        let r = BenchRecord {
            name: "scaling_x/t4".into(),
            median_ns: 9,
            p90_ns: 9,
            mean_ns: 9,
            min_ns: 9,
            iters: 5,
            extra: vec![("wall_busy_ns".into(), 400), ("busy_ppm".into(), 250_000)],
        };
        let line = render_record(&r);
        assert!(line.contains("\"wall_busy_ns\":400"), "{line}");
        assert_eq!(parse_record(&line), Some(r));

        // Trailing comma (every line but the file's last) still parses.
        assert!(parse_record(&format!("{line},")).is_some());

        let b = Bencher::group("attach_test").sample_size(1);
        b.bench("case", || 1);
        attach_extra(
            "attach_test/case",
            [("threads".to_string(), 4u128), ("threads".to_string(), 8)],
        );
        attach_extra("attach_test/missing", [("ignored".to_string(), 1u128)]);
        let results = RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let rec = results
            .iter()
            .find(|r| r.name == "attach_test/case")
            .expect("recorded");
        assert_eq!(rec.extra, vec![("threads".to_string(), 8u128)]);
    }

    #[test]
    fn summary_merges_by_name() {
        let path =
            std::env::temp_dir().join(format!("soi-bench-summary-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::fs::write(
            &path,
            "{\n\"benches\": [\n\
             {\"name\":\"kept/1\",\"median_ns\":9,\"p90_ns\":9,\"mean_ns\":9,\"min_ns\":9,\"iters\":5},\n\
             {\"name\":\"merge_test/overwritten\",\"median_ns\":1,\"p90_ns\":1,\"mean_ns\":1,\"min_ns\":1,\"iters\":1}\n\
             ]\n}\n",
        )
        .unwrap();
        record(BenchRecord {
            name: "merge_test/overwritten".into(),
            median_ns: 42,
            p90_ns: 43,
            mean_ns: 42,
            min_ns: 41,
            iters: 7,
            extra: Vec::new(),
        });
        write_summary_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let records: Vec<BenchRecord> = text.lines().filter_map(parse_record).collect();
        let kept = records.iter().find(|r| r.name == "kept/1").unwrap();
        assert_eq!(kept.median_ns, 9, "unrelated entries preserved");
        let over = records
            .iter()
            .find(|r| r.name == "merge_test/overwritten")
            .unwrap();
        assert_eq!((over.median_ns, over.iters), (42, 7), "same-name replaced");
        let mut names: Vec<&str> = records.iter().map(|r| r.name.as_str()).collect();
        let sorted = {
            let mut s = names.clone();
            s.sort();
            s
        };
        assert_eq!(names, sorted, "summary is name-sorted");
        names.dedup();
        assert_eq!(names.len(), records.len(), "no duplicate names");
        std::fs::remove_file(&path).unwrap();
    }
}
