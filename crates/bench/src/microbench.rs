//! A minimal, dependency-free micro-benchmark harness.
//!
//! Replaces the former Criterion benches so the workspace builds with no
//! external registry dependencies (the hermeticity policy enforced by
//! `cargo xtask lint`). Each bench target under `benches/` is a plain
//! `fn main()` (`harness = false`) that times closures with
//! [`Bencher::bench`] and prints one TSV row per case:
//!
//! ```text
//! group/id<TAB>median_ns<TAB>mean_ns<TAB>min_ns<TAB>iters
//! ```
//!
//! Methodology: a warmup (3 iterations or ≥ 50 ms, whichever comes
//! first), then `sample_size` timed iterations; the median is the
//! headline number, which is robust to scheduler noise without needing
//! Criterion's bootstrap machinery.

use std::time::Instant;

/// A named group of micro-benchmarks sharing a sample size.
pub struct Bencher {
    group: String,
    sample_size: usize,
}

impl Bencher {
    /// Creates a group; results print as `group/id`.
    pub fn group(name: &str) -> Self {
        Bencher {
            group: name.to_string(),
            sample_size: 20,
        }
    }

    /// Sets the number of timed iterations per case (default 20).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints one result row. The closure's return value is
    /// passed through [`std::hint::black_box`] so the computation is not
    /// optimized away.
    pub fn bench<T>(&self, id: impl std::fmt::Display, mut f: impl FnMut() -> T) {
        // Warmup: at least 3 runs or 50 ms.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3 || (warm_start.elapsed().as_millis() < 50 && warm_iters < 1000) {
            std::hint::black_box(f());
            warm_iters += 1;
        }

        let mut samples_ns: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(f());
            samples_ns.push(t.elapsed().as_nanos());
        }
        samples_ns.sort_unstable();
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<u128>() / samples_ns.len() as u128;
        let min = samples_ns[0];
        println!(
            "{}/{}\t{}\t{}\t{}\t{}",
            self.group, id, median, mean, min, self.sample_size
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_closure_and_does_not_panic() {
        let b = Bencher::group("smoke").sample_size(3);
        let mut count = 0u64;
        b.bench("counting", || {
            count += 1;
            count
        });
        // Warmup (>= 3) plus 3 timed iterations.
        assert!(count >= 6);
    }
}
