//! Minimal flag parsing shared by every experiment binary.
//!
//! No external CLI dependency: the flags are few and uniform
//! (`--scale`, `--samples`, `--seed`, `--k`, `--out`, `--dataset`).

/// Parsed common flags.
#[derive(Clone, Debug)]
pub struct Args {
    /// Dataset size multiplier (default 1.0).
    pub scale: f64,
    /// Sampled worlds / cascades ℓ (default 256; the paper uses 1000).
    pub samples: usize,
    /// Master seed (default 42).
    pub seed: u64,
    /// Seed-set size for influence-maximization experiments (default 200,
    /// matching the paper).
    pub k: usize,
    /// Restrict to configurations whose name contains this substring.
    pub dataset: Option<String>,
    /// Output directory for `run_all` (default `target/experiments`).
    pub out: String,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1.0,
            samples: 256,
            seed: 42,
            k: 200,
            dataset: None,
            out: "target/experiments".to_string(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Args {
        match Args::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale F] [--samples N] [--seed N] [--k N] \
                     [--dataset SUBSTR] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--scale" => {
                    out.scale = value("--scale")?
                        .parse()
                        .map_err(|e| format!("--scale: {e}"))?;
                    if out.scale <= 0.0 {
                        return Err("--scale must be positive".into());
                    }
                }
                "--samples" => {
                    out.samples = value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?;
                    if out.samples == 0 {
                        return Err("--samples must be positive".into());
                    }
                }
                "--seed" => {
                    out.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?;
                }
                "--k" => {
                    out.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                    if out.k == 0 {
                        return Err("--k must be positive".into());
                    }
                }
                "--dataset" => out.dataset = Some(value("--dataset")?),
                "--out" => out.out = value("--out")?,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(out)
    }

    /// Whether a configuration name passes the `--dataset` filter.
    pub fn selects(&self, name: &str) -> bool {
        self.dataset.as_ref().is_none_or(|d| name.contains(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::try_parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("").unwrap();
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.samples, 256);
        assert_eq!(a.seed, 42);
        assert_eq!(a.k, 200);
        assert!(a.selects("anything"));
    }

    #[test]
    fn full_flags() {
        let a = parse("--scale 0.5 --samples 1000 --seed 7 --k 50 --dataset digg --out /tmp/x")
            .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.samples, 1000);
        assert_eq!(a.seed, 7);
        assert_eq!(a.k, 50);
        assert!(a.selects("digg-syn-S"));
        assert!(!a.selects("twitter-syn-S"));
        assert_eq!(a.out, "/tmp/x");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("--scale 0").is_err());
        assert!(parse("--scale -1").is_err());
        assert!(parse("--samples 0").is_err());
        assert!(parse("--samples").is_err());
        assert!(parse("--mystery 3").is_err());
        assert!(parse("--k nope").is_err());
    }
}
