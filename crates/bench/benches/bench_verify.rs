//! Micro-benchmarks for the differential-correctness harness
//! (`soi-verify`): the exact BDD spread oracle at its 25-edge budget,
//! head-to-head with the 2^m world-enumeration brute force it replaces,
//! and the naive reference engine's per-request answering cost.
//!
//! Entries land in `BENCH_summary.json` as `verify_*` rows:
//!
//! * `verify_oracle_25edges/*` — `exact_spread_bdd` at the oracle's
//!   full edge budget, where brute force (2^25 worlds) is intractable;
//! * `verify_oracle_vs_bruteforce_18edges/*` — both oracles on the same
//!   18-edge graph (2^18 worlds keeps brute force measurable);
//! * `verify_reference_engine/*` — one protocol request recomputed from
//!   scratch by the reference arm of the fuzzer.

use soi_bench::microbench::Bencher;
use soi_graph::{gen, NodeId, ProbGraph};
use soi_sampling::spread::exact_spread_bruteforce;
use soi_util::rng::Xoshiro256pp;
use soi_verify::{exact_spread_bdd, ReferenceEngine};
use std::hint::black_box;

fn graph(nodes: usize, edges: usize, graph_seed: u64) -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(graph_seed);
    ProbGraph::fixed(gen::gnm(nodes, edges, &mut rng), 0.5).unwrap()
}

fn bench_oracle_at_budget() {
    let pg = graph(12, 25, 3);
    let many: Vec<NodeId> = vec![0, 3, 7];
    let b = Bencher::group("verify_oracle_25edges").sample_size(3);
    b.bench("bdd_1seed", || {
        exact_spread_bdd(black_box(&pg), black_box(&[0])).unwrap()
    });
    b.bench("bdd_3seeds", || {
        exact_spread_bdd(black_box(&pg), black_box(&many)).unwrap()
    });
}

fn bench_oracle_vs_bruteforce() {
    let pg = graph(9, 18, 4);
    let b = Bencher::group("verify_oracle_vs_bruteforce_18edges").sample_size(5);
    b.bench("bdd", || {
        exact_spread_bdd(black_box(&pg), black_box(&[0, 4])).unwrap()
    });
    b.bench("bruteforce_2e18_worlds", || {
        exact_spread_bruteforce(black_box(&pg), black_box(&[0, 4]))
    });
}

fn bench_reference_engine() {
    let pg = graph(32, 96, 5);
    let mut engine = ReferenceEngine::new(
        soi_server::EngineConfig {
            num_worlds: 8,
            seed: 42,
            sketch_k: 8,
            ..soi_server::EngineConfig::default()
        },
        384,
    );
    engine.add_graph("net", pg);
    let spread = r#"{"v":1,"id":1,"type":"spread-estimate","graph":"net","seeds":[0,5],"samples":8,"seed":7}"#;
    let tc = r#"{"v":1,"id":2,"type":"typical-cascade","graph":"net","source":3}"#;
    let b = Bencher::group("verify_reference_engine").sample_size(20);
    b.bench("spread_estimate", || {
        engine.answer_line(black_box(spread.as_bytes()))
    });
    b.bench("typical_cascade", || {
        engine.answer_line(black_box(tc.as_bytes()))
    });
}

fn main() {
    bench_oracle_at_budget();
    bench_oracle_vs_bruteforce();
    bench_reference_engine();
    soi_bench::microbench::write_summary();
}
