//! Micro-benchmarks for the cascade index (Algorithm 1): construction
//! (with and without transitive reduction — the §4 design choice), and
//! cascade-extraction queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use soi_graph::{gen, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use std::hint::black_box;

fn pg(seed: u64) -> ProbGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(3_000, 15_000, &mut rng), 0.15).unwrap()
}

fn bench_build(c: &mut Criterion) {
    let pg = pg(1);
    let mut group = c.benchmark_group("index_build_64_worlds");
    group.sample_size(10);
    for (label, reduce) in [("with_reduction", true), ("without_reduction", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &reduce, |b, &r| {
            b.iter(|| {
                CascadeIndex::build(
                    black_box(&pg),
                    IndexConfig {
                        num_worlds: 64,
                        seed: 2,
                        transitive_reduction: r,
                        threads: 1,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_build_parallel(c: &mut Criterion) {
    let pg = pg(3);
    let mut group = c.benchmark_group("index_build_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                CascadeIndex::build(
                    black_box(&pg),
                    IndexConfig {
                        num_worlds: 64,
                        seed: 4,
                        transitive_reduction: true,
                        threads: t,
                    },
                )
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let pg = pg(5);
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 256,
            seed: 6,
            ..IndexConfig::default()
        },
    );
    c.bench_function("index_cascades_of_one_node", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % 3_000;
            index.cascades_of(black_box(v))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_build_parallel, bench_query
);
criterion_main!(benches);
