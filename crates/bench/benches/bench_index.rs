//! Micro-benchmarks for the cascade index (Algorithm 1): construction
//! (with and without transitive reduction — the §4 design choice), and
//! cascade-extraction queries.

use soi_bench::microbench::Bencher;
use soi_graph::{gen, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;

fn pg(seed: u64) -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(3_000, 15_000, &mut rng), 0.15).unwrap()
}

fn bench_build() {
    let pg = pg(1);
    let b = Bencher::group("index_build_64_worlds").sample_size(10);
    for (label, reduce) in [("with_reduction", true), ("without_reduction", false)] {
        b.bench(label, || {
            CascadeIndex::build(
                black_box(&pg),
                IndexConfig {
                    num_worlds: 64,
                    seed: 2,
                    transitive_reduction: reduce,
                    threads: 1,
                },
            )
        });
    }
}

fn bench_build_parallel() {
    let pg = pg(3);
    let b = Bencher::group("index_build_threads").sample_size(10);
    for &threads in &[1usize, 4] {
        b.bench(threads, || {
            CascadeIndex::build(
                black_box(&pg),
                IndexConfig {
                    num_worlds: 64,
                    seed: 4,
                    transitive_reduction: true,
                    threads,
                },
            )
        });
    }
}

fn bench_query() {
    let pg = pg(5);
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 256,
            seed: 6,
            ..IndexConfig::default()
        },
    );
    let b = Bencher::group("index_query").sample_size(10);
    let mut v = 0u32;
    b.bench("cascades_of_one_node", || {
        v = (v + 1) % 3_000;
        index.cascades_of(black_box(v))
    });
}

fn main() {
    bench_build();
    bench_build_parallel();
    bench_query();
    soi_bench::microbench::write_summary();
}
