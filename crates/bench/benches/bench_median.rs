//! Micro-benchmarks for the Jaccard-median pipeline — the per-node work
//! of Algorithm 2 (the paper's Figure 4 reports this as a per-node time
//! distribution; these benches isolate it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use soi_graph::{gen, ProbGraph};
use soi_jaccard::median::{jaccard_median_with, MedianConfig};
use soi_sampling::CascadeSampler;
use std::hint::black_box;

/// Realistic inputs: actual sampled cascades, not synthetic sets.
fn cascade_collection(ell: usize, p: f64, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pg = ProbGraph::fixed(gen::gnm(2_000, 10_000, &mut rng), p).unwrap();
    CascadeSampler::sample_many(&pg, 0, ell, seed)
}

fn bench_median_by_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard_median_samples");
    for &ell in &[100usize, 256, 1000] {
        let samples = cascade_collection(ell, 0.15, 1);
        group.bench_with_input(BenchmarkId::from_parameter(ell), &samples, |b, s| {
            b.iter(|| jaccard_median_with(black_box(s), &MedianConfig::default()))
        });
    }
    group.finish();
}

fn bench_median_by_regime(c: &mut Criterion) {
    let mut group = c.benchmark_group("jaccard_median_regime");
    for &(p, label) in &[(0.05, "small_cascades"), (0.3, "large_cascades")] {
        let samples = cascade_collection(256, p, 2);
        group.bench_with_input(BenchmarkId::from_parameter(label), &samples, |b, s| {
            b.iter(|| jaccard_median_with(black_box(s), &MedianConfig::default()))
        });
    }
    group.finish();
}

fn bench_sweep_vs_polish(c: &mut Criterion) {
    let samples = cascade_collection(256, 0.15, 3);
    let mut group = c.benchmark_group("median_ablation");
    group.bench_function("sweep_only", |b| {
        let cfg = MedianConfig {
            local_search_rounds: 0,
            ..MedianConfig::default()
        };
        b.iter(|| jaccard_median_with(black_box(&samples), &cfg))
    });
    group.bench_function("sweep_plus_local_search", |b| {
        b.iter(|| jaccard_median_with(black_box(&samples), &MedianConfig::default()))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_median_by_samples, bench_median_by_regime, bench_sweep_vs_polish
);
criterion_main!(benches);
