//! Micro-benchmarks for the Jaccard-median pipeline — the per-node work
//! of Algorithm 2 (the paper's Figure 4 reports this as a per-node time
//! distribution; these benches isolate it).

use soi_bench::microbench::Bencher;
use soi_graph::{gen, ProbGraph};
use soi_jaccard::median::{jaccard_median_with, MedianConfig};
use soi_sampling::CascadeSampler;
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;

/// Realistic inputs: actual sampled cascades, not synthetic sets.
fn cascade_collection(ell: usize, p: f64, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let pg = ProbGraph::fixed(gen::gnm(2_000, 10_000, &mut rng), p).unwrap();
    CascadeSampler::sample_many(&pg, 0, ell, seed)
}

fn bench_median_by_samples() {
    let b = Bencher::group("jaccard_median_samples");
    for &ell in &[100usize, 256, 1000] {
        let samples = cascade_collection(ell, 0.15, 1);
        b.bench(ell, || {
            jaccard_median_with(black_box(&samples), &MedianConfig::default())
        });
    }
}

fn bench_median_by_regime() {
    let b = Bencher::group("jaccard_median_regime");
    for &(p, label) in &[(0.05, "small_cascades"), (0.3, "large_cascades")] {
        let samples = cascade_collection(256, p, 2);
        b.bench(label, || {
            jaccard_median_with(black_box(&samples), &MedianConfig::default())
        });
    }
}

fn bench_sweep_vs_polish() {
    let samples = cascade_collection(256, 0.15, 3);
    let b = Bencher::group("median_ablation");
    let sweep_only = MedianConfig {
        local_search_rounds: 0,
        ..MedianConfig::default()
    };
    b.bench("sweep_only", || {
        jaccard_median_with(black_box(&samples), &sweep_only)
    });
    b.bench("sweep_plus_local_search", || {
        jaccard_median_with(black_box(&samples), &MedianConfig::default())
    });
}

fn main() {
    bench_median_by_samples();
    bench_median_by_regime();
    bench_sweep_vs_polish();
    soi_bench::microbench::write_summary();
}
