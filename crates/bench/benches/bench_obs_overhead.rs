//! Publishes the instrumentation-overhead guard numbers as
//! `obs_overhead/*` entries in `BENCH_summary.json`.
//!
//! Two arms time the identical dispatch-heavy workload
//! (`soi_bench::overhead::workload`) with the per-thread timing plane
//! disabled and enabled; the interleaved A/B measurement's relative
//! cost is attached to the enabled arm as `overhead_ppm`. The hard
//! `< 5%` assertion lives in `soi_bench::overhead::tests`, so CI fails
//! on regressions even when this bench target is not run.

use soi_bench::microbench::{attach_extra, Bencher};
use soi_bench::overhead;

fn main() {
    let b = Bencher::group("obs_overhead").sample_size(10);
    soi_obs::perthread::set_enabled(false);
    b.bench("disabled", overhead::workload);
    soi_obs::perthread::set_enabled(true);
    b.bench("enabled", overhead::workload);

    let measured = overhead::measure(9);
    let ppm = (measured.fraction() * 1_000_000.0) as u128;
    attach_extra("obs_overhead/enabled", [("overhead_ppm".to_string(), ppm)]);
    println!(
        "obs_overhead/fraction\t{:.2}%\t(limit {:.0}%)",
        measured.fraction() * 100.0,
        overhead::MAX_OVERHEAD_FRACTION * 100.0
    );
    soi_bench::microbench::write_summary();
}
