//! Micro-benchmarks for the influence-maximization algorithms: CELF vs
//! plain greedy (`InfMax_std`), `InfMax_TC` max-cover, and the RIS
//! comparator — the per-method costs behind Figure 6.

use soi_bench::microbench::Bencher;
use soi_core::all_typical_cascades;
use soi_graph::{gen, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{infmax_ris, infmax_std, infmax_tc, GreedyMode};
use soi_jaccard::median::MedianConfig;
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;

fn setup() -> (ProbGraph, CascadeIndex, Vec<Vec<NodeId>>) {
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let pg = ProbGraph::fixed(gen::barabasi_albert(1_000, 3, true, &mut rng), 0.15).unwrap();
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 128,
            seed: 2,
            ..IndexConfig::default()
        },
    );
    let cascades = all_typical_cascades(&index, &MedianConfig::default(), 0)
        .into_iter()
        .map(|s| s.median)
        .collect();
    (pg, index, cascades)
}

fn bench_infmax() {
    let (pg, index, cascades) = setup();
    let b = Bencher::group("infmax_k10").sample_size(10);
    b.bench("std_celf", || {
        infmax_std(black_box(&index), 10, GreedyMode::Celf)
    });
    b.bench("std_plain", || {
        infmax_std(black_box(&index), 10, GreedyMode::Plain { capture_top: 0 })
    });
    b.bench("tc_cover", || infmax_tc(black_box(&cascades), 10, 0));
    b.bench("ris_5000_rr", || infmax_ris(black_box(&pg), 10, 5_000, 3));
}

fn bench_all_typical_cascades() {
    let (_pg, index, _cascades) = setup();
    let b = Bencher::group("all_typical_cascades_1000_nodes").sample_size(10);
    for &threads in &[1usize, 4] {
        b.bench(format!("threads_{threads}"), || {
            all_typical_cascades(black_box(&index), &MedianConfig::default(), threads)
        });
    }
}

fn main() {
    bench_infmax();
    bench_all_typical_cascades();
    soi_bench::microbench::write_summary();
}
