//! Micro-benchmarks for the influence-maximization algorithms: CELF vs
//! plain greedy (`InfMax_std`), `InfMax_TC` max-cover, and the RIS
//! comparator — the per-method costs behind Figure 6.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use soi_core::all_typical_cascades;
use soi_graph::{gen, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{infmax_ris, infmax_std, infmax_tc, GreedyMode};
use soi_jaccard::median::MedianConfig;
use std::hint::black_box;

fn setup() -> (ProbGraph, CascadeIndex, Vec<Vec<NodeId>>) {
    let mut rng = SmallRng::seed_from_u64(1);
    let pg = ProbGraph::fixed(gen::barabasi_albert(1_000, 3, true, &mut rng), 0.15).unwrap();
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 128,
            seed: 2,
            ..IndexConfig::default()
        },
    );
    let cascades = all_typical_cascades(&index, &MedianConfig::default(), 0)
        .into_iter()
        .map(|s| s.median)
        .collect();
    (pg, index, cascades)
}

fn bench_infmax(c: &mut Criterion) {
    let (pg, index, cascades) = setup();
    let mut group = c.benchmark_group("infmax_k10");
    group.sample_size(10);
    group.bench_function("std_celf", |b| {
        b.iter(|| infmax_std(black_box(&index), 10, GreedyMode::Celf))
    });
    group.bench_function("std_plain", |b| {
        b.iter(|| infmax_std(black_box(&index), 10, GreedyMode::Plain { capture_top: 0 }))
    });
    group.bench_function("tc_cover", |b| {
        b.iter(|| infmax_tc(black_box(&cascades), 10, 0))
    });
    group.bench_function("ris_5000_rr", |b| {
        b.iter(|| infmax_ris(black_box(&pg), 10, 5_000, 3))
    });
    group.finish();
}

fn bench_all_typical_cascades(c: &mut Criterion) {
    let (_pg, index, _cascades) = setup();
    let mut group = c.benchmark_group("all_typical_cascades_1000_nodes");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| all_typical_cascades(black_box(&index), &MedianConfig::default(), threads))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_infmax, bench_all_typical_cascades
);
criterion_main!(benches);
