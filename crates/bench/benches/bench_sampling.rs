//! Micro-benchmarks for Monte-Carlo machinery: possible-world
//! materialization, lazy cascade sampling, and spread estimation.

use soi_bench::microbench::Bencher;
use soi_graph::{gen, ProbGraph};
use soi_sampling::{estimate_spread, CascadeSampler, WorldSampler};
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;

fn pg_with(n: usize, avg_deg: usize, p: f64, seed: u64) -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(n, n * avg_deg, &mut rng), p).unwrap()
}

fn bench_world_sampling() {
    let b = Bencher::group("world_sample");
    for &n in &[1_000usize, 10_000] {
        let pg = pg_with(n, 5, 0.1, 1);
        let mut sampler = WorldSampler::new();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        b.bench(n, || sampler.sample(black_box(&pg), &mut rng));
    }
}

fn bench_cascade_sampling() {
    let b = Bencher::group("lazy_cascade");
    for &(p, label) in &[(0.05, "subcritical"), (0.3, "supercritical")] {
        let pg = pg_with(5_000, 5, p, 3);
        let mut sampler = CascadeSampler::new(pg.num_nodes());
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut out = Vec::new();
        b.bench(label, || {
            sampler.sample(black_box(&pg), 0, &mut rng, &mut out);
            out.len()
        });
    }
}

fn bench_spread_estimation() {
    let b = Bencher::group("estimate_spread");
    let pg = pg_with(2_000, 5, 0.1, 5);
    let seeds: Vec<u32> = (0..10).collect();
    b.bench("1000_samples", || {
        estimate_spread(black_box(&pg), black_box(&seeds), 1000, 6)
    });
}

fn main() {
    bench_world_sampling();
    bench_cascade_sampling();
    bench_spread_estimation();
    soi_bench::microbench::write_summary();
}
