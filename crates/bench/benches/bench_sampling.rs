//! Micro-benchmarks for Monte-Carlo machinery: possible-world
//! materialization, lazy cascade sampling, and spread estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use soi_graph::{gen, ProbGraph};
use soi_sampling::{estimate_spread, CascadeSampler, WorldSampler};
use std::hint::black_box;

fn pg_with(n: usize, avg_deg: usize, p: f64, seed: u64) -> ProbGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(n, n * avg_deg, &mut rng), p).unwrap()
}

fn bench_world_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_sample");
    for &n in &[1_000usize, 10_000] {
        let pg = pg_with(n, 5, 0.1, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pg, |b, pg| {
            let mut sampler = WorldSampler::new();
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| sampler.sample(black_box(pg), &mut rng))
        });
    }
    group.finish();
}

fn bench_cascade_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_cascade");
    for &(p, label) in &[(0.05, "subcritical"), (0.3, "supercritical")] {
        let pg = pg_with(5_000, 5, p, 3);
        group.bench_with_input(BenchmarkId::from_parameter(label), &pg, |b, pg| {
            let mut sampler = CascadeSampler::new(pg.num_nodes());
            let mut rng = SmallRng::seed_from_u64(4);
            let mut out = Vec::new();
            b.iter(|| {
                sampler.sample(black_box(pg), 0, &mut rng, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

fn bench_spread_estimation(c: &mut Criterion) {
    let pg = pg_with(2_000, 5, 0.1, 5);
    let seeds: Vec<u32> = (0..10).collect();
    c.bench_function("estimate_spread_1000_samples", |b| {
        b.iter(|| estimate_spread(black_box(&pg), black_box(&seeds), 1000, 6))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_world_sampling, bench_cascade_sampling, bench_spread_estimation
);
criterion_main!(benches);
