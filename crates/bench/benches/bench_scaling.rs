//! Thread-scaling curves for the three parallel pipelines, the baseline
//! the ROADMAP's pool refactor is measured against.
//!
//! Each group runs the same fixed workload at 1/2/4/8 workers and lands
//! in `BENCH_summary.json` as `scaling_*/t{n}` entries, so a future
//! change to `soi_util::pool` (or the server's worker loop) shows up as
//! a shift in the t1→t8 curve rather than an anecdote:
//!
//! * `scaling_cascade` — Algorithm 2 batch typical cascades over a
//!   shared index (`all_typical_cascades`);
//! * `scaling_index_build` — Algorithm 1 world sampling
//!   (`CascadeIndex::build`);
//! * `scaling_serve_batch` — 128 mixed requests through the bounded
//!   queue and worker pool (no sockets; hermeticity confines `std::net`
//!   to `crates/server`).
//!
//! Thread counts never change *what* is computed — per-unit seeds come
//! from `(seed, unit-id)` — so every entry measures distribution
//! overhead only.
//!
//! After the timed samples, each case runs **one instrumented pass**
//! under a fresh `soi_obs::perthread` plane and attaches the full
//! attribution decomposition (`wall_busy_ns`, `wall_idle_ns`,
//! `wall_merge_ns`, `wall_lock_wait_ns`, `wall_untracked_ns`,
//! `wall_imbalance_ns`, plus `*_ppm` fractions of capacity) to its
//! summary entry — so the t1→t8 curve carries its own explanation of
//! where the non-busy cycles went. The terms sum to `wall_capacity_ns`
//! by construction, covering the entire tN-vs-t1 gap.

use soi_bench::attribution;
use soi_bench::microbench::{attach_extra, Bencher};
use soi_core::all_typical_cascades;
use soi_graph::{gen, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_jaccard::MedianConfig;
use soi_server::protocol::parse_request;
use soi_server::worker::{Job, WorkerPool};
use soi_server::{EngineConfig, ServerEngine};
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;
use std::sync::{mpsc, Arc};

/// The worker counts every group sweeps.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn pg(seed: u64, nodes: usize, edges: usize) -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    ProbGraph::fixed(gen::gnm(nodes, edges, &mut rng), 0.15).unwrap()
}

/// Algorithm 2 over a shared 64-world index: one median per node.
fn bench_cascade_scaling() {
    let pg = pg(21, 1_000, 5_000);
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: 64,
            seed: 2,
            ..IndexConfig::default()
        },
    );
    let median = MedianConfig::default();
    let b = Bencher::group("scaling_cascade").sample_size(5);
    for threads in THREADS {
        b.bench(format!("t{threads}"), || {
            all_typical_cascades(black_box(&index), &median, threads)
        });
        let series = attribution::capture(|| {
            black_box(all_typical_cascades(black_box(&index), &median, threads));
        });
        attach_extra(&format!("scaling_cascade/t{threads}"), series);
    }
}

/// Algorithm 1: ℓ sampled worlds, fanned out world-per-worker.
fn bench_index_build_scaling() {
    let pg = pg(22, 2_000, 10_000);
    let b = Bencher::group("scaling_index_build").sample_size(5);
    for threads in THREADS {
        let config = IndexConfig {
            num_worlds: 64,
            seed: 4,
            transitive_reduction: true,
            threads,
        };
        b.bench(format!("t{threads}"), || {
            CascadeIndex::build(black_box(&pg), config)
        });
        let series = attribution::capture(|| {
            black_box(CascadeIndex::build(black_box(&pg), config));
        });
        attach_extra(&format!("scaling_index_build/t{threads}"), series);
    }
}

/// 128 mixed requests through the bounded queue at each pool width.
fn bench_serve_batch_scaling() {
    let engine = {
        let mut engine = ServerEngine::new(EngineConfig {
            num_worlds: 64,
            seed: 2,
            ..EngineConfig::default()
        });
        engine.add_graph("net", pg(23, 1_000, 5_000));
        engine.warm();
        Arc::new(engine)
    };
    let run_batch = |threads: usize| {
        let pool = WorkerPool::start(Arc::clone(&engine), threads, 128);
        let handle = pool.handle();
        let (tx, rx) = mpsc::channel();
        for id in 0..128u64 {
            let node = (id % 1_000) as u32;
            let line = if id % 2 == 0 {
                format!(
                    "{{\"v\":1,\"id\":{id},\"type\":\"typical-cascade\",\
                     \"graph\":\"net\",\"source\":{node}}}"
                )
            } else {
                format!(
                    "{{\"v\":1,\"id\":{id},\"type\":\"spread-estimate\",\
                     \"graph\":\"net\",\"seeds\":[{node}],\"samples\":64,\"seed\":7}}"
                )
            };
            handle.submit(Job::new(parse_request(&line).unwrap(), tx.clone()));
        }
        drop(tx);
        pool.shutdown();
        rx.iter().count()
    };
    let b = Bencher::group("scaling_serve_batch").sample_size(5);
    for threads in THREADS {
        b.bench(format!("t{threads}"), || run_batch(threads));
        let series = attribution::capture(|| {
            // The server pool is long-lived and never notes dispatches
            // itself; here the bench is the dispatcher, so the batch's
            // start-to-join span defines the region capacity.
            let started = std::time::Instant::now();
            black_box(run_batch(threads));
            soi_obs::perthread::note_dispatch(
                threads,
                128,
                soi_obs::perthread::clamp_ns(started.elapsed().as_nanos()),
            );
        });
        attach_extra(&format!("scaling_serve_batch/t{threads}"), series);
    }
}

fn main() {
    bench_cascade_scaling();
    bench_index_build_scaling();
    bench_serve_batch_scaling();
    soi_bench::microbench::write_summary();
}
