//! Micro-benchmarks for the graph substrate: Tarjan SCC, condensation,
//! and transitive reduction — the per-world work inside Algorithm 1's
//! index construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use soi_graph::{gen, scc::Condensation, transitive, DiGraph};
use std::hint::black_box;

fn graph_with(n: usize, avg_deg: usize, seed: u64) -> DiGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    gen::gnm(n, n * avg_deg, &mut rng)
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("tarjan_scc");
    for &n in &[1_000usize, 10_000, 50_000] {
        let g = graph_with(n, 4, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| soi_graph::scc::tarjan_scc(black_box(g)))
        });
    }
    group.finish();
}

fn bench_condensation(c: &mut Criterion) {
    let mut group = c.benchmark_group("condensation");
    for &n in &[1_000usize, 10_000] {
        let g = graph_with(n, 4, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| Condensation::new(black_box(g)))
        });
    }
    group.finish();
}

fn bench_transitive_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_reduction");
    // The realistic input is the condensation of a *sampled possible
    // world* (p = 0.15 keeps worlds sparse, so condensations stay large —
    // a dense deterministic graph collapses to one giant SCC).
    for &n in &[500usize, 2_000] {
        let pg = soi_graph::ProbGraph::fixed(graph_with(n, 6, 9), 0.15).unwrap();
        let mut sampler = soi_sampling::WorldSampler::new();
        let mut rng = SmallRng::seed_from_u64(10);
        let world = sampler.sample(&pg, &mut rng);
        let dag = Condensation::new(&world).dag;
        group.bench_with_input(
            BenchmarkId::new("dag_comps", dag.num_nodes()),
            &dag,
            |b, dag| b.iter(|| transitive::transitive_reduction(black_box(dag)).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scc, bench_condensation, bench_transitive_reduction
);
criterion_main!(benches);
