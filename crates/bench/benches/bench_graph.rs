//! Micro-benchmarks for the graph substrate: Tarjan SCC, condensation,
//! and transitive reduction — the per-world work inside Algorithm 1's
//! index construction.

use soi_bench::microbench::Bencher;
use soi_graph::{gen, scc::Condensation, transitive, DiGraph};
use soi_util::rng::Xoshiro256pp;
use std::hint::black_box;

fn graph_with(n: usize, avg_deg: usize, seed: u64) -> DiGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    gen::gnm(n, n * avg_deg, &mut rng)
}

fn bench_scc() {
    let b = Bencher::group("tarjan_scc");
    for &n in &[1_000usize, 10_000, 50_000] {
        let g = graph_with(n, 4, 7);
        b.bench(n, || soi_graph::scc::tarjan_scc(black_box(&g)));
    }
}

fn bench_condensation() {
    let b = Bencher::group("condensation");
    for &n in &[1_000usize, 10_000] {
        let g = graph_with(n, 4, 8);
        b.bench(n, || Condensation::new(black_box(&g)));
    }
}

fn bench_transitive_reduction() {
    let b = Bencher::group("transitive_reduction");
    // The realistic input is the condensation of a *sampled possible
    // world* (p = 0.15 keeps worlds sparse, so condensations stay large —
    // a dense deterministic graph collapses to one giant SCC).
    for &n in &[500usize, 2_000] {
        let pg = soi_graph::ProbGraph::fixed(graph_with(n, 6, 9), 0.15).unwrap();
        let mut sampler = soi_sampling::WorldSampler::new();
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let world = sampler.sample(&pg, &mut rng);
        let dag = Condensation::new(&world).dag;
        b.bench(format!("dag_comps_{}", dag.num_nodes()), || {
            transitive::transitive_reduction(black_box(&dag)).unwrap()
        });
    }
}

fn main() {
    bench_scc();
    bench_condensation();
    bench_transitive_reduction();
    soi_bench::microbench::write_summary();
}
