//! Micro-benchmarks for the serving path: per-request latency through
//! the warmed query engine (p50 = `median_ns`, p90 = `p90_ns` in
//! `BENCH_summary.json`) and batch throughput through the worker pool.
//!
//! Everything runs in-memory against `worker::execute_job` and
//! `WorkerPool` — no sockets, so the numbers isolate compute + queue
//! overhead from kernel networking, and the bench stays runnable in a
//! fully sandboxed environment (the hermeticity lint confines `std::net`
//! to `crates/server` itself).

use soi_bench::microbench::Bencher;
use soi_graph::{gen, ProbGraph};
use soi_server::protocol::parse_request;
use soi_server::worker::{execute_job, Job, WorkerPool};
use soi_server::{EngineConfig, ServerEngine};
use soi_util::rng::Xoshiro256pp;
use std::sync::{mpsc, Arc};
use std::time::Instant;

fn engine() -> Arc<ServerEngine> {
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let pg = ProbGraph::fixed(gen::gnm(1_000, 5_000, &mut rng), 0.15).unwrap();
    let mut engine = ServerEngine::new(EngineConfig {
        num_worlds: 64,
        seed: 2,
        ..EngineConfig::default()
    });
    engine.add_graph("net", pg);
    engine.warm();
    Arc::new(engine)
}

fn request(kind: &str, id: u64, node: u32) -> soi_server::Envelope {
    let line = match kind {
        "typical-cascade" => format!(
            "{{\"v\":1,\"id\":{id},\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":{node}}}"
        ),
        "spread-estimate" => format!(
            "{{\"v\":1,\"id\":{id},\"type\":\"spread-estimate\",\"graph\":\"net\",\
             \"seeds\":[{node}],\"samples\":64,\"seed\":7}}"
        ),
        other => panic!("unknown bench request kind {other}"),
    };
    parse_request(&line).unwrap()
}

/// Per-request latency through the warmed engine; `median_ns`/`p90_ns`
/// in the summary are the serving p50/p90.
fn bench_request_latency(engine: &Arc<ServerEngine>) {
    let b = Bencher::group("serve_request_latency").sample_size(20);
    for kind in ["typical-cascade", "spread-estimate"] {
        let mut node = 0u32;
        b.bench(kind, || {
            node = (node + 1) % 1_000;
            execute_job(engine, &request(kind, u64::from(node), node))
        });
    }
}

/// Batch throughput: 256 mixed requests through the bounded queue and a
/// fixed worker pool; `median_ns / 256` is per-request wall time.
fn bench_batch_throughput(engine: &Arc<ServerEngine>) {
    let b = Bencher::group("serve_batch_256_mixed").sample_size(10);
    for workers in [1usize, 4] {
        b.bench(format!("{workers}_workers"), || {
            let pool = WorkerPool::start(Arc::clone(engine), workers, 256);
            let handle = pool.handle();
            let (tx, rx) = mpsc::channel();
            for id in 0..256u64 {
                let kind = if id % 2 == 0 {
                    "typical-cascade"
                } else {
                    "spread-estimate"
                };
                handle.submit(Job::new(request(kind, id, (id % 1_000) as u32), tx.clone()));
            }
            drop(tx);
            pool.shutdown();
            rx.iter().count()
        });
    }

    // Headline requests/sec from one measured batch on 4 workers.
    let pool = WorkerPool::start(Arc::clone(engine), 4, 256);
    let handle = pool.handle();
    let (tx, rx) = mpsc::channel();
    let started = Instant::now();
    for id in 0..256u64 {
        handle.submit(Job::new(
            request("spread-estimate", id, (id % 1_000) as u32),
            tx.clone(),
        ));
    }
    drop(tx);
    pool.shutdown();
    let answered = rx.iter().count();
    let secs = started.elapsed().as_secs_f64();
    println!(
        "serve_batch_256_mixed/requests_per_sec\t{:.0}\t({answered} answered)",
        answered as f64 / secs.max(1e-9)
    );
}

fn main() {
    let engine = engine();
    bench_request_latency(&engine);
    bench_batch_throughput(&engine);
    soi_bench::microbench::write_summary();
}
