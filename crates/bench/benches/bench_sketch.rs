//! Micro-benchmarks for the bottom-k sketch backend (`soi-sketch`) at
//! serving scale: a 10⁵-node graph, measuring the three phases the
//! backend adds — sketch build (with its t1→t8 thread-scaling curve),
//! spread estimation, and SKIM-style seed selection — against the
//! existing RIS and index-backed TC-cover selection paths.
//!
//! Entries land in `BENCH_summary.json` as `sketch_*` rows:
//!
//! * `sketch_build_1e5/t{n}` — `ReachSketches::build` at 1/2/4/8
//!   threads (byte-identical output per the block-deterministic build,
//!   so the curve measures distribution overhead only);
//! * `sketch_estimate_1e5/*` — one `set_spread` lookup vs the
//!   Monte-Carlo estimator answering the same question;
//! * `sketch_vs_baselines_1e5_k10/*` — seed selection through the
//!   sketches vs `infmax_ris` and `infmax_tc` over the same worlds
//!   (index build and cascade extraction are untimed setup).

use soi_bench::microbench::Bencher;
use soi_core::all_typical_cascades;
use soi_graph::{gen, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{infmax_ris, infmax_tc};
use soi_jaccard::median::MedianConfig;
use soi_sketch::{select_seeds, ReachSketches, SketchConfig};
use soi_util::rng::Xoshiro256pp;
use soi_util::Deadline;
use std::hint::black_box;

const NODES: usize = 100_000;
const WORLDS: usize = 32;
const SKETCH_K: usize = 16;

fn setup_graph() -> ProbGraph {
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    ProbGraph::fixed(gen::barabasi_albert(NODES, 2, true, &mut rng), 0.1).unwrap()
}

fn config(threads: usize) -> SketchConfig {
    SketchConfig {
        num_worlds: WORLDS,
        k: SKETCH_K,
        seed: 2,
        threads,
    }
}

fn bench_build(pg: &ProbGraph) {
    let b = Bencher::group("sketch_build_1e5").sample_size(3);
    for threads in [1usize, 2, 4, 8] {
        b.bench(format!("t{threads}"), || {
            ReachSketches::build(black_box(pg), config(threads))
        });
    }
}

fn bench_estimate(pg: &ProbGraph, sk: &ReachSketches) {
    let seeds: Vec<NodeId> = (0..10).map(|i| (i * 97) as NodeId).collect();
    let b = Bencher::group("sketch_estimate_1e5").sample_size(20);
    b.bench("set_spread_10seeds", || {
        black_box(sk.set_spread(black_box(&seeds)))
    });
    b.bench("node_spread", || black_box(sk.node_spread(black_box(42))));
    b.bench("mc_32_samples_10seeds", || {
        soi_sampling::estimate_spread(black_box(pg), black_box(&seeds), WORLDS, 7)
    });
}

fn bench_selection(pg: &ProbGraph, sk: &ReachSketches) {
    // Untimed setup for the TC-cover comparator: the cascade index over
    // the same ℓ sampled worlds, reduced to its typical cascades.
    let index = CascadeIndex::build(
        pg,
        IndexConfig {
            num_worlds: WORLDS,
            seed: 2,
            ..IndexConfig::default()
        },
    );
    let cascades: Vec<Vec<NodeId>> = all_typical_cascades(&index, &MedianConfig::default(), 0)
        .into_iter()
        .map(|s| s.median)
        .collect();
    let b = Bencher::group("sketch_vs_baselines_1e5_k10").sample_size(5);
    b.bench("sketch_select", || {
        select_seeds(black_box(pg), black_box(sk), 10, &Deadline::unlimited())
    });
    b.bench("ris_10000_rr", || infmax_ris(black_box(pg), 10, 10_000, 3));
    b.bench("tc_cover", || infmax_tc(black_box(&cascades), 10, 0));
}

fn main() {
    let pg = setup_graph();
    bench_build(&pg);
    let sk = ReachSketches::build(&pg, config(0));
    bench_estimate(&pg, &sk);
    bench_selection(&pg, &sk);
    soi_bench::microbench::write_summary();
}
