//! The frequentist learner of Goyal, Bonchi & Lakshmanan (WSDM 2010).
//!
//! The paper uses their simplest (static, Bernoulli) model: the influence
//! probability of arc `(u, v)` is the number of items on which `v` acted
//! *after* `u`, divided by the number of items `u` acted on:
//! `p(u, v) = A_{u2v} / A_u` (§6.2).

use crate::log::ActionLog;
use soi_graph::DiGraph;
use std::collections::HashMap;

/// Learns per-edge probabilities from `log` for the arcs of `graph`.
///
/// Returns a vector aligned with `graph`'s CSR edge order; arcs with no
/// evidence (`A_u = 0`) get probability 0. Feed the result to
/// [`crate::to_prob_graph`] to obtain a usable [`soi_graph::ProbGraph`].
///
/// `max_lag`: if `Some(τ)`, only actions with `0 < t_v - t_u <= τ` count
/// as propagation (Goyal et al.'s time-window refinement); `None` counts
/// any strictly-later action.
pub fn learn_goyal(graph: &DiGraph, log: &ActionLog, max_lag: Option<u32>) -> Vec<f64> {
    let a_u = log.actions_per_user();
    let mut a_u2v: HashMap<(u32, u32), u32> = HashMap::new();

    for (_, episode) in log.episodes() {
        // Episodes are sorted by (time, user); for every ordered pair
        // (earlier u, later v) connected by an arc u -> v, credit u.
        for (i, later) in episode.iter().enumerate() {
            for earlier in &episode[..i] {
                if earlier.time >= later.time {
                    continue; // same-time actions are not propagation
                }
                if let Some(lag) = max_lag {
                    if later.time - earlier.time > lag {
                        continue;
                    }
                }
                if graph.has_edge(earlier.user, later.user) {
                    *a_u2v.entry((earlier.user, later.user)).or_insert(0) += 1;
                }
            }
        }
    }

    let mut probs = Vec::with_capacity(graph.num_edges());
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            let denom = a_u[u as usize];
            let num = a_u2v.get(&(u, v)).copied().unwrap_or(0);
            probs.push(if denom == 0 {
                0.0
            } else {
                (num as f64 / denom as f64).min(1.0)
            });
        }
    }
    probs
}

/// The *Jaccard index* variant from the same paper:
/// `p(u, v) = A_{u2v} / |A_u ∪ A_v|` — the propagation count normalized by
/// the union of both users' activity, which penalizes pairs whose
/// activity barely overlaps. Goyal et al. report it as a more robust
/// alternative to the Bernoulli estimator on noisy logs.
pub fn learn_goyal_jaccard(graph: &DiGraph, log: &ActionLog, max_lag: Option<u32>) -> Vec<f64> {
    let a_u = log.actions_per_user();
    let mut a_u2v: HashMap<(u32, u32), u32> = HashMap::new();
    let mut a_common: HashMap<(u32, u32), u32> = HashMap::new();

    for (_, episode) in log.episodes() {
        for (i, later) in episode.iter().enumerate() {
            for earlier in &episode[..i] {
                // Any co-occurrence counts toward the union denominator's
                // intersection term (both directions of the arc).
                for (a, b) in [(earlier.user, later.user), (later.user, earlier.user)] {
                    if graph.has_edge(a, b) {
                        *a_common.entry((a, b)).or_insert(0) += 1;
                    }
                }
                if earlier.time >= later.time {
                    continue;
                }
                if let Some(lag) = max_lag {
                    if later.time - earlier.time > lag {
                        continue;
                    }
                }
                if graph.has_edge(earlier.user, later.user) {
                    *a_u2v.entry((earlier.user, later.user)).or_insert(0) += 1;
                }
            }
        }
    }

    let mut probs = Vec::with_capacity(graph.num_edges());
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            let num = a_u2v.get(&(u, v)).copied().unwrap_or(0) as f64;
            let common = a_common.get(&(u, v)).copied().unwrap_or(0) as f64;
            let union = a_u[u as usize] as f64 + a_u[v as usize] as f64 - common;
            probs.push(if union <= 0.0 {
                0.0
            } else {
                (num / union).min(1.0)
            });
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Action;
    use soi_graph::gen;

    fn act(user: u32, item: u32, time: u32) -> Action {
        Action { user, item, time }
    }

    #[test]
    fn counts_follower_fraction() {
        // Graph 0 -> 1. User 0 acts on items 0..4 (4 items); user 1
        // follows on items 0 and 2. p(0,1) = 2/4.
        let g = gen::path(2);
        let log = ActionLog::new(
            2,
            vec![
                act(0, 0, 0),
                act(1, 0, 1),
                act(0, 1, 0),
                act(0, 2, 0),
                act(1, 2, 3),
                act(0, 3, 0),
            ],
        )
        .unwrap();
        let p = learn_goyal(&g, &log, None);
        assert_eq!(p, vec![0.5]);
    }

    #[test]
    fn lag_window_excludes_stale_follows() {
        let g = gen::path(2);
        let log = ActionLog::new(
            2,
            vec![act(0, 0, 0), act(1, 0, 10), act(0, 1, 0), act(1, 1, 1)],
        )
        .unwrap();
        assert_eq!(learn_goyal(&g, &log, None), vec![1.0]);
        assert_eq!(learn_goyal(&g, &log, Some(2)), vec![0.5]);
    }

    #[test]
    fn same_time_actions_do_not_count() {
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(0, 0, 5), act(1, 0, 5)]).unwrap();
        assert_eq!(learn_goyal(&g, &log, None), vec![0.0]);
    }

    #[test]
    fn direction_matters() {
        // Arc 0 -> 1 only; user 1 acts before user 0, so no credit.
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(1, 0, 0), act(0, 0, 1)]).unwrap();
        assert_eq!(learn_goyal(&g, &log, None), vec![0.0]);
    }

    #[test]
    fn inactive_influencer_gets_zero_not_nan() {
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(1, 0, 0)]).unwrap();
        let p = learn_goyal(&g, &log, None);
        assert_eq!(p, vec![0.0]);
    }

    #[test]
    fn jaccard_variant_penalizes_disjoint_activity() {
        // u acts on 4 items; v follows once but also acts on 6 unrelated
        // items. Bernoulli: 1/4. Jaccard: 1 / |A_u ∪ A_v| = 1 / (4+7-1).
        let g = gen::path(2);
        let mut actions = vec![
            act(0, 0, 0),
            act(1, 0, 1), // the one follow
            act(0, 1, 0),
            act(0, 2, 0),
            act(0, 3, 0),
        ];
        for item in 10..16 {
            actions.push(act(1, item, 0));
        }
        let log = ActionLog::new(2, actions).unwrap();
        let bernoulli = learn_goyal(&g, &log, None);
        let jaccard = learn_goyal_jaccard(&g, &log, None);
        assert_eq!(bernoulli, vec![0.25]);
        assert!((jaccard[0] - 0.1).abs() < 1e-9, "{}", jaccard[0]);
        assert!(jaccard[0] < bernoulli[0]);
    }

    #[test]
    fn jaccard_variant_handles_empty_evidence() {
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![]).unwrap();
        assert_eq!(learn_goyal_jaccard(&g, &log, None), vec![0.0]);
    }

    #[test]
    fn recovers_rough_magnitude_from_simulated_logs() {
        // Ground truth p = 0.8 on a chain; many single-seed cascades from
        // random nodes. The frequentist estimate should land near 0.8 for
        // well-observed arcs.
        use crate::generate::{generate_log, LogGenConfig};
        use soi_graph::ProbGraph;
        let truth = ProbGraph::fixed(gen::path(6), 0.8).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 3000,
                seeds_per_item: 1,
                seed: 5,
            },
        );
        let learned = learn_goyal(truth.graph(), &log, Some(1));
        // Arc (0,1): every time 0 acted (as seed), 1 followed w.p. 0.8;
        // when 0 itself was downstream... on a path node 0 only acts as a
        // seed, so the estimate is clean.
        assert!(
            (learned[0] - 0.8).abs() < 0.05,
            "learned p(0,1) = {}",
            learned[0]
        );
    }
}
