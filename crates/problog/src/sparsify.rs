//! Influence-network sparsification.
//!
//! Mathioudakis et al. (KDD 2011), discussed in the paper's related work
//! (§7): keep only `k` arcs of a learned influence graph while maximizing
//! the likelihood of the observed propagation log. We implement the
//! greedy per-node variant: for each node `v`, arcs into `v` are ranked
//! by their marginal contribution to the log-likelihood of `v`'s observed
//! activations (and non-activations), and the top arcs are kept subject
//! to the global budget.
//!
//! Sparsification matters to this workspace because the sphere-of-
//! influence pipeline costs scale with arc count: a sparsified graph
//! yields nearly identical typical cascades at a fraction of the sampling
//! cost (tested below).

use crate::log::ActionLog;
use soi_graph::{DiGraph, GraphBuilder, GraphError, NodeId, ProbGraph};
use std::collections::HashMap;

/// Per-arc evidence extracted from a log: how often the arc could have
/// caused an activation, and how often it observably failed.
#[derive(Clone, Copy, Debug, Default)]
struct ArcEvidence {
    /// Episodes where the source was active one step before the target's
    /// activation.
    successes: u32,
    /// Episodes where the source fired at the target and the target never
    /// activated in time.
    failures: u32,
}

fn collect_evidence(graph: &DiGraph, log: &ActionLog) -> HashMap<(NodeId, NodeId), ArcEvidence> {
    let reverse = graph.reverse();
    let mut evidence: HashMap<(NodeId, NodeId), ArcEvidence> = HashMap::new();
    let mut time_of: HashMap<NodeId, u32> = HashMap::new();
    for (_, episode) in log.episodes() {
        time_of.clear();
        for a in episode {
            time_of.insert(a.user, a.time);
        }
        for a in episode {
            if a.time > 0 {
                for &w in reverse.out_neighbors(a.user) {
                    if time_of.get(&w) == Some(&(a.time - 1)) {
                        evidence.entry((w, a.user)).or_default().successes += 1;
                    }
                }
            }
            for &v in graph.out_neighbors(a.user) {
                let failed = match time_of.get(&v) {
                    None => true,
                    Some(&tv) => tv > a.time + 1,
                };
                if failed {
                    evidence.entry((a.user, v)).or_default().failures += 1;
                }
            }
        }
    }
    evidence
}

/// Scores an arc's log-likelihood contribution if kept with its MLE
/// probability `s / (s + f)`: `s·ln(p) + f·ln(1 − p)` against the
/// baseline of explaining nothing. Higher is better; arcs with no
/// successes score `0` (they only ever failed — dropping them *increases*
/// likelihood).
fn arc_score(e: ArcEvidence) -> f64 {
    let s = e.successes as f64;
    let f = e.failures as f64;
    if e.successes == 0 {
        return 0.0;
    }
    let p = (s / (s + f)).clamp(1e-9, 1.0 - 1e-9);
    // The trailing `+ s` breaks ties between arcs with equal likelihood in
    // favor of more explanatory arcs (more successes) — the greedy rule of
    // the per-node step.
    s * p.ln() + f * (1.0 - p).ln() + s
}

/// Keeps the `budget` highest-scoring arcs of `pg` (by log evidence),
/// returning the sparsified probabilistic graph. Arcs retain their
/// original probabilities. Errors only if the surviving graph fails
/// validation (it cannot, but the signature is honest).
pub fn sparsify_by_log(
    pg: &ProbGraph,
    log: &ActionLog,
    budget: usize,
) -> Result<ProbGraph, GraphError> {
    let evidence = collect_evidence(pg.graph(), log);
    let mut scored: Vec<(f64, NodeId, NodeId, f64)> = Vec::with_capacity(pg.num_edges());
    for u in pg.graph().nodes() {
        for (v, p) in pg.out_arcs(u) {
            let e = evidence.get(&(u, v)).copied().unwrap_or_default();
            scored.push((arc_score(e), u, v, p));
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut b = GraphBuilder::new(pg.num_nodes());
    for &(score, u, v, p) in scored.iter().take(budget) {
        if score <= 0.0 {
            break; // nothing below this explains any activation
        }
        b.add_weighted_edge(u, v, p);
    }
    b.build_prob()
}

/// Keeps the `budget` highest-probability arcs — the log-free baseline
/// sparsifier the KDD paper compares against.
pub fn sparsify_by_probability(pg: &ProbGraph, budget: usize) -> Result<ProbGraph, GraphError> {
    let mut scored: Vec<(f64, NodeId, NodeId)> = Vec::with_capacity(pg.num_edges());
    for u in pg.graph().nodes() {
        for (v, p) in pg.out_arcs(u) {
            scored.push((p, u, v));
        }
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut b = GraphBuilder::new(pg.num_nodes());
    for &(p, u, v) in scored.iter().take(budget) {
        b.add_weighted_edge(u, v, p);
    }
    b.build_prob()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_log, LogGenConfig};
    use crate::log::Action;
    use soi_graph::gen;

    fn act(user: u32, item: u32, time: u32) -> Action {
        Action { user, item, time }
    }

    #[test]
    fn keeps_explanatory_arcs_first() {
        // Arcs 0->2 and 1->2. The log only ever shows 0 causing 2.
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 2, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        let pg = b.build_prob().unwrap();
        let log = ActionLog::new(
            3,
            vec![
                act(0, 0, 0),
                act(2, 0, 1),
                act(0, 1, 0),
                act(2, 1, 1),
                act(1, 2, 0), // 1 active, 2 never follows
            ],
        )
        .unwrap();
        let sparse = sparsify_by_log(&pg, &log, 1).unwrap();
        assert_eq!(sparse.num_edges(), 1);
        assert!(sparse.edge_prob_between(0, 2).is_some());
        assert!(sparse.edge_prob_between(1, 2).is_none());
    }

    #[test]
    fn unexplanatory_arcs_are_dropped_even_under_budget() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        let pg = b.build_prob().unwrap();
        // Log never shows any propagation: both arcs only fail.
        let log = ActionLog::new(3, vec![act(0, 0, 0), act(1, 1, 0)]).unwrap();
        let sparse = sparsify_by_log(&pg, &log, 10).unwrap();
        assert_eq!(sparse.num_edges(), 0, "pure-failure arcs add nothing");
    }

    #[test]
    fn probability_baseline_keeps_heaviest() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 0.9);
        b.add_weighted_edge(1, 2, 0.2);
        b.add_weighted_edge(2, 3, 0.5);
        let pg = b.build_prob().unwrap();
        let sparse = sparsify_by_probability(&pg, 2).unwrap();
        assert_eq!(sparse.num_edges(), 2);
        assert!(sparse.edge_prob_between(0, 1).is_some());
        assert!(sparse.edge_prob_between(2, 3).is_some());
        assert!(sparse.edge_prob_between(1, 2).is_none());
    }

    #[test]
    fn sparsified_graph_preserves_spread_shape() {
        // Generate a log from a ground-truth graph, sparsify to 60% of
        // arcs, and check expected spread from a hub survives roughly.
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let truth = crate::assign::uniform_random(
            gen::barabasi_albert(120, 3, true, &mut rng),
            0.1,
            0.7,
            &mut rng,
        )
        .unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 1500,
                seeds_per_item: 2,
                seed: 6,
            },
        );
        let budget = truth.num_edges() * 6 / 10;
        let sparse = sparsify_by_log(&truth, &log, budget).unwrap();
        assert!(sparse.num_edges() <= budget);
        assert!(sparse.num_edges() > 0);
        let full = soi_sampling::estimate_spread(&truth, &[0, 1, 2], 3000, 7);
        let thin = soi_sampling::estimate_spread(&sparse, &[0, 1, 2], 3000, 7);
        assert!(
            thin > 0.55 * full,
            "sparse spread {thin} collapsed vs full {full}"
        );
        assert!(thin <= full + 1.0, "sparsification cannot increase spread");
    }

    #[test]
    fn budget_zero_empties_the_graph() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let log = ActionLog::new(4, vec![]).unwrap();
        let sparse = sparsify_by_log(&pg, &log, 0).unwrap();
        assert_eq!(sparse.num_edges(), 0);
        assert_eq!(sparse.num_nodes(), 4, "nodes survive");
    }
}
