//! Artificial probability-assignment models (§6.2).
//!
//! Thin, discoverable wrappers over the constructors in
//! [`soi_graph::ProbGraph`], so callers working with the learning pipeline
//! find both paths (learnt / assigned) in one crate, plus a uniform-random
//! assignment used as ground truth by the dataset registry.

use soi_graph::{DiGraph, GraphError, ProbGraph};
use soi_util::rng::Rng;

/// Weighted cascade: `p(u, v) = 1 / inDeg(v)` (suffix `-W` in the paper).
pub fn weighted_cascade(graph: DiGraph) -> ProbGraph {
    ProbGraph::weighted_cascade(graph)
}

/// Fixed probability `p` on every arc (suffix `-F`; the paper uses 0.1).
pub fn fixed(graph: DiGraph, p: f64) -> Result<ProbGraph, GraphError> {
    ProbGraph::fixed(graph, p)
}

/// Trivalency: each arc uniformly from `{0.1, 0.01, 0.001}`.
pub fn trivalency<R: Rng>(graph: DiGraph, rng: &mut R) -> ProbGraph {
    ProbGraph::trivalency(graph, rng)
}

/// Independent uniform probabilities in `[lo, hi]` — the ground-truth
/// model the dataset registry plants before generating logs, so learners
/// face heterogeneous arc strengths.
pub fn uniform_random<R: Rng>(
    graph: DiGraph,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Result<ProbGraph, GraphError> {
    assert!(lo > 0.0 && hi <= 1.0 && lo <= hi, "need 0 < lo <= hi <= 1");
    let probs = (0..graph.num_edges())
        .map(|_| lo + (hi - lo) * rng.random::<f64>())
        .collect();
    ProbGraph::new(graph, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;
    use soi_util::rng::Xoshiro256pp;

    #[test]
    fn uniform_random_stays_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let pg = uniform_random(gen::complete(10), 0.05, 0.4, &mut rng).unwrap();
        assert!(pg.probs().iter().all(|&p| (0.05..=0.4).contains(&p)));
        // Heterogeneous: not all equal.
        let first = pg.probs()[0];
        assert!(pg.probs().iter().any(|&p| (p - first).abs() > 1e-6));
    }

    #[test]
    #[should_panic(expected = "need 0 < lo <= hi <= 1")]
    fn uniform_random_validates_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = uniform_random(gen::path(3), 0.5, 0.2, &mut rng);
    }

    #[test]
    fn wrappers_delegate() {
        let pg = weighted_cascade(gen::star(4));
        assert_eq!(pg.edge_prob_between(0, 1), Some(1.0));
        let pg = fixed(gen::star(4), 0.1).unwrap();
        assert!(pg.probs().iter().all(|&p| p == 0.1));
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let pg = trivalency(gen::star(4), &mut rng);
        assert!(pg.probs().iter().all(|&p| [0.1, 0.01, 0.001].contains(&p)));
    }
}
