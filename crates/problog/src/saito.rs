//! The EM learner of Saito, Nakano & Kimura (KES 2008).
//!
//! Models the log as realizations of the discrete-time IC process and
//! maximizes the likelihood of the observed episodes over the edge
//! probabilities. For arc `(u, v)`:
//!
//! * a **success context** is an episode where `u` was active at `t_v − 1`
//!   when `v` activated at `t_v` — one of possibly several parents that
//!   could have caused the activation;
//! * a **failure context** is an episode where `u` activated at `t_u` but
//!   `v` was not active at any time `≤ t_u + 1` — the one attempt `u` got
//!   at `v` observably failed.
//!
//! The E-step attributes each activation fractionally to its possible
//! parents (`p_uv / P_v` with `P_v = 1 − Π_w (1 − p_wv)`); the M-step
//! divides by the total number of attempts. Iterated to convergence, the
//! likelihood is non-decreasing (a property the tests check).

use crate::log::ActionLog;
use soi_graph::{DiGraph, NodeId};
use std::collections::HashMap;

/// EM hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SaitoConfig {
    /// Maximum EM iterations.
    pub max_iters: usize,
    /// Stop when the largest per-edge update falls below this.
    pub tolerance: f64,
    /// Initial probability for every arc.
    pub init_p: f64,
}

impl Default for SaitoConfig {
    fn default() -> Self {
        SaitoConfig {
            max_iters: 100,
            tolerance: 1e-6,
            init_p: 0.3,
        }
    }
}

/// Precomputed sufficient statistics of a (graph, log) pair.
struct Contexts {
    /// One entry per explained activation: the CSR edge ids of all
    /// candidate parent arcs.
    success_records: Vec<Vec<u32>>,
    /// Per-edge count of success records containing the edge (`|A+|`).
    plus: Vec<u32>,
    /// Per-edge count of observed failed attempts (`|A−|`).
    minus: Vec<u32>,
}

fn edge_id(graph: &DiGraph, u: NodeId, v: NodeId) -> Option<u32> {
    let r = graph.edge_range(u);
    graph
        .out_neighbors(u)
        .binary_search(&v)
        .ok()
        .map(|i| (r.start + i) as u32)
}

fn build_contexts(graph: &DiGraph, log: &ActionLog) -> Contexts {
    let m = graph.num_edges();
    let mut success_records = Vec::new();
    let mut plus = vec![0u32; m];
    let mut minus = vec![0u32; m];
    let reverse = graph.reverse();

    let mut time_of: HashMap<NodeId, u32> = HashMap::new();
    for (_, episode) in log.episodes() {
        time_of.clear();
        for a in episode {
            time_of.insert(a.user, a.time);
        }
        // Success contexts: each non-seed activation's candidate parents.
        for a in episode {
            if a.time == 0 {
                continue;
            }
            let mut parents: Vec<u32> = Vec::new();
            for &w in reverse.out_neighbors(a.user) {
                if time_of.get(&w) == Some(&(a.time - 1)) {
                    if let Some(e) = edge_id(graph, w, a.user) {
                        parents.push(e);
                    }
                }
            }
            if parents.is_empty() {
                // Activation unexplained by the topology (possible when the
                // log did not come from this graph); carries no information
                // about any arc.
                continue;
            }
            for &e in &parents {
                plus[e as usize] += 1;
            }
            success_records.push(parents);
        }
        // Failure contexts: u active at t_u, v not active by t_u + 1.
        for a in episode {
            for &v in graph.out_neighbors(a.user) {
                let failed = match time_of.get(&v) {
                    None => true,
                    Some(&tv) => tv > a.time + 1,
                };
                if failed {
                    // `v` comes from out_neighbors(a.user), so the arc
                    // exists. xtask-allow: panic_policy
                    let e = edge_id(graph, a.user, v).expect("iterating real arcs");
                    minus[e as usize] += 1;
                }
            }
        }
    }
    Contexts {
        success_records,
        plus,
        minus,
    }
}

/// Learns per-edge probabilities by EM. Returns a vector aligned with
/// `graph`'s CSR edge order (zeros for arcs with no positive evidence).
/// Feed the result to [`crate::to_prob_graph`].
pub fn learn_saito(graph: &DiGraph, log: &ActionLog, config: &SaitoConfig) -> Vec<f64> {
    assert!(config.init_p > 0.0 && config.init_p <= 1.0);
    let ctx = build_contexts(graph, log);
    let m = graph.num_edges();
    let mut p = vec![config.init_p; m];
    // Arcs never observed in a success context converge to 0 in one step;
    // set them now so the loop only touches informative arcs.
    for (slot, &plus) in p.iter_mut().zip(&ctx.plus) {
        if plus == 0 {
            *slot = 0.0;
        }
    }
    let mut acc = vec![0.0f64; m];
    for _ in 0..config.max_iters {
        acc.fill(0.0);
        for record in &ctx.success_records {
            let mut q = 1.0;
            for &e in record {
                q *= 1.0 - p[e as usize];
            }
            let p_v = (1.0 - q).max(1e-12);
            for &e in record {
                acc[e as usize] += p[e as usize] / p_v;
            }
        }
        let mut max_delta = 0.0f64;
        for e in 0..m {
            let attempts = ctx.plus[e] + ctx.minus[e];
            if attempts == 0 {
                continue;
            }
            let new_p = (acc[e] / attempts as f64).clamp(0.0, 1.0);
            max_delta = max_delta.max((new_p - p[e]).abs());
            p[e] = new_p;
        }
        if max_delta < config.tolerance {
            break;
        }
    }
    p
}

/// Log-likelihood of the episodes under edge probabilities `p` (aligned
/// with `graph`'s CSR edges), using the same context definitions as the
/// learner. Unexplained activations are skipped, matching the learner.
pub fn log_likelihood(graph: &DiGraph, log: &ActionLog, p: &[f64]) -> f64 {
    assert_eq!(p.len(), graph.num_edges());
    let ctx = build_contexts(graph, log);
    let mut ll = 0.0;
    for record in &ctx.success_records {
        let mut q = 1.0;
        for &e in record {
            q *= 1.0 - p[e as usize];
        }
        ll += (1.0 - q).max(1e-300).ln();
    }
    for (e, &count) in ctx.minus.iter().enumerate() {
        if count > 0 {
            ll += count as f64 * (1.0 - p[e]).max(1e-300).ln();
        }
    }
    ll
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_log, LogGenConfig};
    use crate::log::Action;
    use soi_graph::{gen, ProbGraph};

    fn act(user: u32, item: u32, time: u32) -> Action {
        Action { user, item, time }
    }

    #[test]
    fn single_edge_closed_form() {
        // Arc 0 -> 1. In 10 episodes user 0 acts at t=0; user 1 follows at
        // t=1 in 3 of them. MLE: p = 3/10.
        let g = gen::path(2);
        let mut actions = Vec::new();
        for item in 0..10u32 {
            actions.push(act(0, item, 0));
            if item < 3 {
                actions.push(act(1, item, 1));
            }
        }
        let log = ActionLog::new(2, actions).unwrap();
        let p = learn_saito(&g, &log, &SaitoConfig::default());
        assert!((p[0] - 0.3).abs() < 1e-6, "p = {}", p[0]);
    }

    #[test]
    fn no_positive_evidence_gives_zero() {
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(0, 0, 0), act(0, 1, 0)]).unwrap();
        let p = learn_saito(&g, &log, &SaitoConfig::default());
        assert_eq!(p, vec![0.0]);
    }

    #[test]
    fn late_follow_is_a_failure_not_success() {
        // v activates at t=5 after u at t=0: u's attempt failed; the
        // activation is unexplained (no parent at t=4) and skipped.
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(0, 0, 0), act(1, 0, 5)]).unwrap();
        let p = learn_saito(&g, &log, &SaitoConfig::default());
        assert_eq!(p, vec![0.0]);
    }

    #[test]
    fn shared_credit_between_parents() {
        // Arcs 0 -> 2 and 1 -> 2; both parents always active at t=0, child
        // always activates at t=1. EM shares credit; by symmetry both arcs
        // converge to the same value, and the pair must explain every
        // activation: 1 - (1-p)^2 should be close to 1 given infinite
        // evidence... with 100% success contexts and no failures, the MLE
        // pushes both to 1? No: acc[e] = p/(1-(1-p)^2) per record, and
        // attempts = plus only. Fixed point: p = p / (1 - (1-p)^2) / 1 →
        // 1 - (1-p)^2 = 1 → p = 1.
        let g = soi_graph::DiGraph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let mut actions = Vec::new();
        for item in 0..20u32 {
            actions.push(act(0, item, 0));
            actions.push(act(1, item, 0));
            actions.push(act(2, item, 1));
        }
        let log = ActionLog::new(3, actions).unwrap();
        let p = learn_saito(&g, &log, &SaitoConfig::default());
        assert!((p[0] - p[1]).abs() < 1e-9, "symmetric arcs stay equal");
        assert!(p[0] > 0.9, "all-success evidence drives p up: {}", p[0]);
    }

    #[test]
    fn em_is_likelihood_nondecreasing() {
        let truth = ProbGraph::fixed(gen::cycle(12), 0.4).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 150,
                seeds_per_item: 1,
                seed: 11,
            },
        );
        let g = truth.graph();
        let mut prev = f64::NEG_INFINITY;
        for iters in [1usize, 2, 4, 8, 16, 32] {
            let p = learn_saito(
                g,
                &log,
                &SaitoConfig {
                    max_iters: iters,
                    tolerance: 0.0,
                    init_p: 0.3,
                },
            );
            let ll = log_likelihood(g, &log, &p);
            assert!(
                ll >= prev - 1e-6,
                "likelihood decreased at {iters} iters: {prev} -> {ll}"
            );
            prev = ll;
        }
    }

    #[test]
    fn recovers_ground_truth_on_simulated_logs() {
        let truth = ProbGraph::fixed(gen::path(6), 0.7).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 4000,
                seeds_per_item: 1,
                seed: 13,
            },
        );
        let learned = learn_saito(truth.graph(), &log, &SaitoConfig::default());
        for (e, &p) in learned.iter().enumerate() {
            assert!((p - 0.7).abs() < 0.06, "edge {e}: learned {p}, truth 0.7");
        }
    }
}
