//! STRIP-style streaming learning of influence probabilities.
//!
//! Kutzkov et al. (KDD 2013; reference [26] of the paper) learn the
//! frequentist (Goyal et al.) probabilities in the big-data regime: a
//! continuous stream of `(user, item, time)` actions where per-arc exact
//! counters may not fit in memory. This module implements the same
//! estimator with bounded memory:
//!
//! * exact per-user action counters (`O(|V|)` — always affordable);
//! * propagation-pair counts `A_{u→v}` in a count-min sketch
//!   (`O(1/ε · ln 1/δ)` — independent of arc count).
//!
//! The sketch never undercounts, so learned probabilities are biased at
//! most *upward* by `ε · N`; the tests quantify the bias against the
//! exact learner.
//!
//! Actions must arrive grouped by item with non-decreasing time within
//! each item (the natural order of a propagation feed); a bounded window
//! of recent actions per item provides the "did `u` act before `v`"
//! joins without remembering whole episodes.

use crate::log::Action;
use soi_graph::DiGraph;
use soi_util::cms::{arc_key, CountMinSketch};
use std::collections::VecDeque;

/// Configuration of the streaming learner.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Count-min error fraction ε (overcount ≤ ε·stream-length w.h.p.).
    pub epsilon: f64,
    /// Count-min failure probability δ.
    pub delta: f64,
    /// Only actions within this time lag count as propagation (the
    /// Goyal et al. window; also bounds the per-item memory).
    pub max_lag: u32,
    /// Sketch seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            epsilon: 1e-4,
            delta: 0.01,
            max_lag: 1,
            seed: 0,
        }
    }
}

/// One-pass streaming learner state.
pub struct StreamingLearner {
    config: StreamConfig,
    actions_per_user: Vec<u64>,
    pair_counts: CountMinSketch,
    /// Sliding window of recent actions of the *current* item.
    window: VecDeque<Action>,
    current_item: Option<u32>,
    items_seen: u64,
}

impl StreamingLearner {
    /// Creates a learner for a graph of `num_users` users.
    pub fn new(num_users: usize, config: StreamConfig) -> Self {
        StreamingLearner {
            config,
            actions_per_user: vec![0; num_users],
            pair_counts: CountMinSketch::with_error(config.epsilon, config.delta, config.seed),
            window: VecDeque::new(),
            current_item: None,
            items_seen: 0,
        }
    }

    /// Feeds one action. Actions must be grouped by item; within an item,
    /// times must be non-decreasing (panics otherwise — a corrupted feed
    /// should fail loudly, not learn garbage).
    pub fn observe(&mut self, action: Action) {
        if self.current_item != Some(action.item) {
            self.window.clear();
            self.current_item = Some(action.item);
            self.items_seen += 1;
        } else if let Some(last) = self.window.back() {
            assert!(
                last.time <= action.time,
                "stream out of order within item {}: {} then {}",
                action.item,
                last.time,
                action.time
            );
        }
        self.actions_per_user[action.user as usize] += 1;
        // Expire actions beyond the lag window.
        while let Some(front) = self.window.front() {
            if front.time + self.config.max_lag < action.time {
                self.window.pop_front();
            } else {
                break;
            }
        }
        // Credit every strictly-earlier windowed action.
        for earlier in &self.window {
            if earlier.time < action.time {
                self.pair_counts.add(arc_key(earlier.user, action.user), 1);
            }
        }
        self.window.push_back(action);
    }

    /// Number of distinct items seen so far.
    pub fn items_seen(&self) -> u64 {
        self.items_seen
    }

    /// Sketch memory in bytes (the point of the streaming variant).
    pub fn sketch_bytes(&self) -> usize {
        self.pair_counts.memory_bytes()
    }

    /// Extracts probabilities for the arcs of `graph`, aligned with its
    /// CSR edge order: `p(u, v) = Â_{u→v} / A_u`, capped at 1.
    pub fn probabilities(&self, graph: &DiGraph) -> Vec<f64> {
        let mut probs = Vec::with_capacity(graph.num_edges());
        for u in graph.nodes() {
            for &v in graph.out_neighbors(u) {
                let denom = self.actions_per_user[u as usize];
                if denom == 0 {
                    probs.push(0.0);
                    continue;
                }
                let num = self.pair_counts.estimate(arc_key(u, v));
                probs.push((num as f64 / denom as f64).min(1.0));
            }
        }
        probs
    }
}

/// Convenience: stream an entire [`crate::ActionLog`] through the learner.
pub fn learn_streaming(graph: &DiGraph, log: &crate::ActionLog, config: StreamConfig) -> Vec<f64> {
    let mut learner = StreamingLearner::new(graph.num_nodes(), config);
    for (_, episode) in log.episodes() {
        for &a in episode {
            learner.observe(a);
        }
    }
    learner.probabilities(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_log, LogGenConfig};
    use crate::goyal::learn_goyal;
    use crate::log::ActionLog;
    use soi_graph::{gen, ProbGraph};

    fn act(user: u32, item: u32, time: u32) -> Action {
        Action { user, item, time }
    }

    #[test]
    fn matches_exact_learner_on_tiny_stream() {
        let g = gen::path(2);
        let log = ActionLog::new(
            2,
            vec![
                act(0, 0, 0),
                act(1, 0, 1),
                act(0, 1, 0),
                act(0, 2, 0),
                act(1, 2, 1),
                act(0, 3, 0),
            ],
        )
        .unwrap();
        let exact = learn_goyal(&g, &log, Some(1));
        let stream = learn_streaming(&g, &log, StreamConfig::default());
        assert_eq!(exact, vec![0.5]);
        assert_eq!(stream, vec![0.5], "wide sketch is exact");
    }

    #[test]
    fn lag_window_expires_old_actions() {
        let g = gen::path(2);
        let log = ActionLog::new(2, vec![act(0, 0, 0), act(1, 0, 10)]).unwrap();
        let stream = learn_streaming(
            &g,
            &log,
            StreamConfig {
                max_lag: 2,
                ..StreamConfig::default()
            },
        );
        assert_eq!(stream, vec![0.0], "stale action must not get credit");
    }

    #[test]
    #[should_panic(expected = "stream out of order")]
    fn rejects_time_travel_within_item() {
        let g = gen::path(2);
        let mut learner = StreamingLearner::new(g.num_nodes(), StreamConfig::default());
        learner.observe(act(0, 0, 5));
        learner.observe(act(1, 0, 2));
    }

    #[test]
    fn tracks_exact_learner_on_simulated_streams() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(9);
        let truth = ProbGraph::fixed(gen::gnm(60, 300, &mut rng), 0.4).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 800,
                seeds_per_item: 2,
                seed: 10,
            },
        );
        let exact = learn_goyal(truth.graph(), &log, Some(1));
        let stream = learn_streaming(truth.graph(), &log, StreamConfig::default());
        // CMS never undercounts: streamed probabilities dominate exact
        // ones, and with ε = 1e-4 the overshoot is tiny.
        let mut max_over = 0.0f64;
        for (s, e) in stream.iter().zip(&exact) {
            assert!(*s >= *e - 1e-12, "undercount: {s} < {e}");
            max_over = max_over.max(s - e);
        }
        assert!(max_over < 0.05, "overcount too large: {max_over}");
    }

    #[test]
    fn sketch_memory_is_bounded_and_reported() {
        let learner = StreamingLearner::new(1000, StreamConfig::default());
        let bytes = learner.sketch_bytes();
        assert!(bytes > 0);
        // ε = 1e-4 → width ≈ 27183, depth ⌈ln(100)⌉ = 5 → ~1.1 MB.
        assert!(bytes < 2 << 20, "sketch unexpectedly large: {bytes}");
    }

    #[test]
    fn items_seen_counts_groups() {
        let g = gen::path(3);
        let log = ActionLog::new(3, vec![act(0, 0, 0), act(1, 0, 1), act(2, 5, 0)]).unwrap();
        let mut learner = StreamingLearner::new(g.num_nodes(), StreamConfig::default());
        for (_, ep) in log.episodes() {
            for &a in ep {
                learner.observe(a);
            }
        }
        assert_eq!(learner.items_seen(), 2);
    }
}
