//! # soi-problog
//!
//! Influence-probability learning and assignment (§6.2 of the paper).
//!
//! The paper's evaluation uses twelve dataset configurations: probabilities
//! *learnt* from user-activity logs with two methods — Saito et al.'s EM
//! for the discrete-time IC model (suffix `-S`) and Goyal et al.'s
//! frequentist estimator (suffix `-G`) — and probabilities *assigned* with
//! the weighted-cascade (`-W`) and fixed-`p` (`-F`) models.
//!
//! This crate supplies the full learning path:
//!
//! * [`log`] — the action-log data model (user, item, timestamp triples
//!   grouped into per-item episodes);
//! * [`generate`] — synthetic log generation by simulating IC cascades on
//!   a ground-truth probabilistic graph (the stand-in for the Digg /
//!   Flixster / Twitter activity logs, see DESIGN.md §2);
//! * [`saito`] — the EM learner;
//! * [`goyal`] — the frequentist learner;
//! * [`assign`] — the artificial assignment models (re-exported from
//!   `soi-graph` plus helpers);
//! * [`eval`] — learned-vs-truth diagnostics (MAE, RMSE, Pearson).

pub mod assign;
pub mod eval;
pub mod generate;
pub mod goyal;
pub mod log;
pub mod saito;
pub mod sparsify;
pub mod streaming;

pub use generate::generate_log;
pub use goyal::{learn_goyal, learn_goyal_jaccard};
pub use log::{Action, ActionLog};
pub use saito::{learn_saito, SaitoConfig};
pub use sparsify::{sparsify_by_log, sparsify_by_probability};
pub use streaming::{learn_streaming, StreamConfig, StreamingLearner};

use soi_graph::{DiGraph, GraphBuilder, GraphError, ProbGraph};

/// Converts learned per-edge probabilities (aligned with `graph`'s CSR
/// edge order, zeros allowed) into a [`ProbGraph`], dropping edges whose
/// probability is below `min_prob`. Mirrors how learned influence graphs
/// are used downstream: a zero-probability edge carries no influence and
/// only slows sampling.
pub fn to_prob_graph(
    graph: &DiGraph,
    probs: &[f64],
    min_prob: f64,
) -> Result<ProbGraph, GraphError> {
    assert_eq!(probs.len(), graph.num_edges(), "probs misaligned");
    let mut b = GraphBuilder::new(graph.num_nodes());
    let mut e = 0usize;
    for u in graph.nodes() {
        for &v in graph.out_neighbors(u) {
            let p = probs[e];
            if p >= min_prob {
                b.add_weighted_edge(u, v, p.min(1.0));
            }
            e += 1;
        }
    }
    b.build_prob()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    #[test]
    fn to_prob_graph_filters_low_probability_edges() {
        let g = gen::path(4); // edges (0,1),(1,2),(2,3)
        let pg = to_prob_graph(&g, &[0.5, 0.0001, 0.9], 0.01).unwrap();
        assert_eq!(pg.num_edges(), 2);
        assert_eq!(pg.edge_prob_between(0, 1), Some(0.5));
        assert_eq!(pg.edge_prob_between(1, 2), None);
        assert_eq!(pg.edge_prob_between(2, 3), Some(0.9));
    }

    #[test]
    fn to_prob_graph_caps_at_one() {
        let g = gen::path(2);
        let pg = to_prob_graph(&g, &[1.2], 0.01).unwrap();
        assert_eq!(pg.edge_prob_between(0, 1), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_probs_panic() {
        let g = gen::path(3);
        let _ = to_prob_graph(&g, &[0.5], 0.01);
    }
}
