//! Synthetic action-log generation.
//!
//! The Digg/Flixster/Twitter logs of §6.1 are not redistributable, so the
//! dataset registry simulates the process that produced them: items
//! propagate over a ground-truth probabilistic graph under the
//! discrete-time IC model, and every activation is written to the log with
//! its timestamp. Learners then only see the log and the topology — the
//! same observational setting as the paper — and are judged on recovering
//! the ground-truth probabilities (`eval` module).

use crate::log::{Action, ActionLog};
use soi_graph::{NodeId, ProbGraph};
use soi_sampling::ic::simulate_ic;
use soi_util::rng::derive_seed;
use soi_util::rng::Rng;

/// Options for [`generate_log`].
#[derive(Clone, Copy, Debug)]
pub struct LogGenConfig {
    /// Number of items (independent cascades) to simulate.
    pub num_items: usize,
    /// Seeds activated per item at time 0 (distinct, uniform random).
    pub seeds_per_item: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for LogGenConfig {
    fn default() -> Self {
        LogGenConfig {
            num_items: 500,
            seeds_per_item: 1,
            seed: 0,
        }
    }
}

/// Simulates `config.num_items` IC cascades on `truth` and returns the
/// resulting action log. Item `i` is deterministic in `(seed, i)`.
pub fn generate_log(truth: &ProbGraph, config: &LogGenConfig) -> ActionLog {
    assert!(config.seeds_per_item >= 1);
    assert!(
        config.seeds_per_item <= truth.num_nodes(),
        "more seeds than nodes"
    );
    let mut actions = Vec::new();
    for item in 0..config.num_items {
        let mut rng =
            soi_util::rng::Xoshiro256pp::seed_from_u64(derive_seed(config.seed, item as u64));
        let seeds = distinct_seeds(truth.num_nodes(), config.seeds_per_item, &mut rng);
        for ev in simulate_ic(truth, &seeds, &mut rng) {
            actions.push(Action {
                user: ev.node,
                item: item as u32,
                time: ev.time,
            });
        }
    }
    // Every action's user comes from simulate_ic on `truth`, so ids are
    // below truth.num_nodes(). xtask-allow: panic_policy
    ActionLog::new(truth.num_nodes(), actions).expect("simulated users are in range")
}

fn distinct_seeds<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut seeds = Vec::with_capacity(k);
    while seeds.len() < k {
        let s = rng.random_range(0..n as NodeId);
        if !seeds.contains(&s) {
            seeds.push(s);
        }
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    #[test]
    fn log_covers_requested_items() {
        let truth = ProbGraph::fixed(gen::cycle(10), 0.5).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 20,
                seeds_per_item: 1,
                seed: 3,
            },
        );
        assert_eq!(log.num_items(), 20);
        // Every episode has at least its seed.
        for (_, ep) in log.episodes() {
            assert!(!ep.is_empty());
            assert_eq!(ep[0].time, 0);
        }
        assert_eq!(log.episodes().count(), 20);
    }

    #[test]
    fn deterministic_chain_produces_full_episodes() {
        let truth = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 5,
                seeds_per_item: 1,
                seed: 1,
            },
        );
        for (_, ep) in log.episodes() {
            // Cascade from seed s covers s..3, times 0,1,2,...
            let seed = ep[0].user;
            assert_eq!(ep.len(), 4 - seed as usize);
            for (i, a) in ep.iter().enumerate() {
                assert_eq!(a.user, seed + i as u32);
                assert_eq!(a.time, i as u32);
            }
        }
    }

    #[test]
    fn multi_seed_items_have_multiple_time_zero_actions() {
        let truth = ProbGraph::fixed(gen::path(10), 0.5).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 10,
                seeds_per_item: 3,
                seed: 7,
            },
        );
        for (_, ep) in log.episodes() {
            assert_eq!(ep.iter().filter(|a| a.time == 0).count(), 3);
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let truth = ProbGraph::fixed(gen::cycle(8), 0.4).unwrap();
        let cfg = LogGenConfig {
            num_items: 15,
            seeds_per_item: 2,
            seed: 42,
        };
        let a = generate_log(&truth, &cfg);
        let b = generate_log(&truth, &cfg);
        assert_eq!(a.num_actions(), b.num_actions());
        for i in 0..15u32 {
            assert_eq!(a.episode(i), b.episode(i));
        }
    }
}
