//! The action-log data model.
//!
//! The learnable datasets of §6.1 pair a social graph with a log of user
//! activity: who acted on which item, and when (votes on Digg stories,
//! movie ratings on Flixster, URL reshares on Twitter). An [`ActionLog`]
//! stores `(user, item, time)` triples grouped into per-item *episodes* —
//! the unit both learners consume.

use soi_graph::NodeId;

/// One log entry: `user` acted on `item` at discrete `time`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Action {
    /// The acting user (a node of the social graph).
    pub user: NodeId,
    /// The item (story, movie, URL) acted upon.
    pub item: u32,
    /// Discrete timestamp; within an item, time orders the cascade.
    pub time: u32,
}

/// Errors constructing an [`ActionLog`].
#[derive(Debug, PartialEq)]
pub enum LogError {
    /// An action references a user `>= num_users`.
    UserOutOfRange {
        /// The offending user id.
        user: NodeId,
        /// The log's user count.
        num_users: usize,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::UserOutOfRange { user, num_users } => {
                write!(f, "user {user} out of range ({num_users} users)")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// An immutable action log, grouped by item.
///
/// Each `(user, item)` pair is kept once, at its earliest time — a user
/// "activates" on an item at most once in the IC model.
#[derive(Clone, Debug)]
pub struct ActionLog {
    num_users: usize,
    /// Sorted by `(item, time, user)`.
    actions: Vec<Action>,
    /// `item_offsets[i]..item_offsets[i+1]` slices `actions` for item `i`.
    item_offsets: Vec<usize>,
}

impl ActionLog {
    /// Builds a log from raw actions. Duplicate `(user, item)` pairs
    /// collapse to the earliest occurrence; items are `0..=max_item`.
    pub fn new(num_users: usize, mut actions: Vec<Action>) -> Result<Self, LogError> {
        for a in &actions {
            if a.user as usize >= num_users {
                return Err(LogError::UserOutOfRange {
                    user: a.user,
                    num_users,
                });
            }
        }
        // Earliest (item, user) wins.
        actions.sort_by_key(|a| (a.item, a.user, a.time));
        actions.dedup_by_key(|a| (a.item, a.user));
        actions.sort_by_key(|a| (a.item, a.time, a.user));

        let num_items = actions
            .iter()
            .map(|a| a.item as usize + 1)
            .max()
            .unwrap_or(0);
        let mut item_offsets = vec![0usize; num_items + 1];
        for a in &actions {
            item_offsets[a.item as usize + 1] += 1;
        }
        for i in 0..num_items {
            item_offsets[i + 1] += item_offsets[i];
        }
        Ok(ActionLog {
            num_users,
            actions,
            item_offsets,
        })
    }

    /// Number of users this log covers.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (`max item id + 1`).
    pub fn num_items(&self) -> usize {
        self.item_offsets.len() - 1
    }

    /// Total number of (deduplicated) actions.
    pub fn num_actions(&self) -> usize {
        self.actions.len()
    }

    /// The episode of `item`: its actions sorted by `(time, user)`.
    pub fn episode(&self, item: u32) -> &[Action] {
        &self.actions[self.item_offsets[item as usize]..self.item_offsets[item as usize + 1]]
    }

    /// Iterates over all non-empty episodes as `(item, actions)`.
    pub fn episodes(&self) -> impl Iterator<Item = (u32, &[Action])> {
        (0..self.num_items() as u32)
            .map(|i| (i, self.episode(i)))
            .filter(|(_, e)| !e.is_empty())
    }

    /// Number of items each user acted on — `A_u` in Goyal et al.'s
    /// estimator.
    pub fn actions_per_user(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.num_users];
        for a in &self.actions {
            counts[a.user as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn act(user: NodeId, item: u32, time: u32) -> Action {
        Action { user, item, time }
    }

    #[test]
    fn grouping_and_ordering() {
        let log = ActionLog::new(
            5,
            vec![act(2, 1, 5), act(0, 0, 0), act(1, 1, 2), act(3, 0, 1)],
        )
        .unwrap();
        assert_eq!(log.num_items(), 2);
        assert_eq!(log.num_actions(), 4);
        assert_eq!(log.episode(0), &[act(0, 0, 0), act(3, 0, 1)]);
        assert_eq!(log.episode(1), &[act(1, 1, 2), act(2, 1, 5)]);
    }

    #[test]
    fn duplicate_user_item_keeps_earliest() {
        let log = ActionLog::new(3, vec![act(1, 0, 7), act(1, 0, 2), act(1, 0, 9)]).unwrap();
        assert_eq!(log.num_actions(), 1);
        assert_eq!(log.episode(0), &[act(1, 0, 2)]);
    }

    #[test]
    fn out_of_range_user_rejected() {
        assert!(matches!(
            ActionLog::new(2, vec![act(2, 0, 0)]),
            Err(LogError::UserOutOfRange {
                user: 2,
                num_users: 2
            })
        ));
    }

    #[test]
    fn empty_and_sparse_items() {
        let log = ActionLog::new(3, vec![act(0, 5, 0)]).unwrap();
        assert_eq!(log.num_items(), 6);
        assert!(log.episode(2).is_empty());
        let eps: Vec<u32> = log.episodes().map(|(i, _)| i).collect();
        assert_eq!(eps, vec![5], "only non-empty episodes iterated");
    }

    #[test]
    fn actions_per_user_counts() {
        let log = ActionLog::new(
            4,
            vec![act(0, 0, 0), act(0, 1, 0), act(2, 0, 1), act(0, 0, 5)],
        )
        .unwrap();
        assert_eq!(log.actions_per_user(), vec![2, 0, 1, 0]);
    }
}
