//! Learned-vs-truth diagnostics.
//!
//! When logs are generated from a known ground-truth graph (our stand-in
//! for the paper's crawled datasets), learner quality is measurable
//! directly: mean absolute error, root-mean-square error, and Pearson
//! correlation between the learned and planted probabilities over the
//! arcs of the shared topology.

/// Mean absolute error between two aligned probability vectors.
pub fn mae(learned: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(learned.len(), truth.len(), "misaligned");
    if learned.is_empty() {
        return 0.0;
    }
    learned
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / learned.len() as f64
}

/// Root-mean-square error between two aligned probability vectors.
pub fn rmse(learned: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(learned.len(), truth.len(), "misaligned");
    if learned.is_empty() {
        return 0.0;
    }
    (learned
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / learned.len() as f64)
        .sqrt()
}

/// Pearson correlation coefficient; 0 when either side has zero variance.
pub fn pearson(learned: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(learned.len(), truth.len(), "misaligned");
    let n = learned.len() as f64;
    if learned.is_empty() {
        return 0.0;
    }
    let mean_a = learned.iter().sum::<f64>() / n;
    let mean_b = truth.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (a, b) in learned.iter().zip(truth) {
        let da = a - mean_a;
        let db = b - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery() {
        let p = [0.1, 0.5, 0.9];
        assert_eq!(mae(&p, &p), 0.0);
        assert_eq!(rmse(&p, &p), 0.0);
        assert!((pearson(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_errors() {
        let a = [0.0, 1.0];
        let b = [0.5, 0.5];
        assert!((mae(&a, &b) - 0.5).abs() < 1e-12);
        assert!((rmse(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn anticorrelation() {
        let a = [0.1, 0.2, 0.3];
        let b = [0.3, 0.2, 0.1];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[0.5, 0.5], &[0.1, 0.9]), 0.0, "zero variance");
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn end_to_end_learner_comparison() {
        // Plant heterogeneous truth, generate a log, learn with both
        // methods, and check the learned values correlate with truth.
        use crate::generate::{generate_log, LogGenConfig};
        use crate::{learn_goyal, learn_saito, SaitoConfig};
        use soi_graph::gen;
        use soi_util::rng::Xoshiro256pp;

        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let truth =
            crate::assign::uniform_random(gen::gnm(40, 200, &mut rng), 0.1, 0.9, &mut rng).unwrap();
        let log = generate_log(
            &truth,
            &LogGenConfig {
                num_items: 2500,
                seeds_per_item: 2,
                seed: 22,
            },
        );
        let saito = learn_saito(truth.graph(), &log, &SaitoConfig::default());
        let goyal = learn_goyal(truth.graph(), &log, Some(1));
        let r_saito = pearson(&saito, truth.probs());
        let r_goyal = pearson(&goyal, truth.probs());
        assert!(r_saito > 0.6, "Saito correlation {r_saito}");
        assert!(r_goyal > 0.3, "Goyal correlation {r_goyal}");
        // The EM learner models the process and should recover truth at
        // least as faithfully as the frequentist heuristic here.
        assert!(
            mae(&saito, truth.probs()) <= mae(&goyal, truth.probs()) + 0.05,
            "saito mae {} vs goyal mae {}",
            mae(&saito, truth.probs()),
            mae(&goyal, truth.probs())
        );
    }
}
