//! Selectable spread-oracle backend: cascade index vs bottom-k sketches.
//!
//! The repo grew two precomputed structures that can answer spread
//! queries over the same ℓ sampled worlds:
//!
//! * the **cascade** index ([`soi_index::CascadeIndex`]) — exact
//!   per-world reachability via condensations, the paper's structure and
//!   the default;
//! * the **sketch** backend ([`soi_sketch::ReachSketches`]) — bottom-k
//!   combined reachability sketches (Cohen et al.), `O(k·n)` memory with
//!   estimator guarantees instead of exactness.
//!
//! [`SpreadBackend`] is the enum dispatch the serving and CLI layers
//! select between; [`BackendKind`] is the wire/flag name. Both backends
//! are deterministic in their build seed, so either answer is byte-stable
//! across runs, replicas, and thread counts.

use soi_graph::{NodeId, ProbGraph};
use soi_index::CascadeIndex;
use soi_sketch::ReachSketches;
use soi_util::runtime::{Deadline, Outcome};
use std::sync::Arc;

/// Which spread-oracle backend a request or CLI run selects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum BackendKind {
    /// The paper's cascade index (exact per-world reachability). Default.
    #[default]
    Cascade,
    /// Bottom-k combined reachability sketches (estimates).
    Sketch,
}

impl BackendKind {
    /// Parses the wire/flag name (`"cascade"` | `"sketch"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "cascade" => Some(BackendKind::Cascade),
            "sketch" => Some(BackendKind::Sketch),
            _ => None,
        }
    }

    /// The wire/flag name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cascade => "cascade",
            BackendKind::Sketch => "sketch",
        }
    }

    /// A stable one-byte tag folded into cache keys so entries from
    /// different backends can never alias, whatever their inner keys.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::Cascade => 1,
            BackendKind::Sketch => 2,
        }
    }
}

/// A built spread oracle: one of the two backends, `Arc`-shared so cache
/// eviction never invalidates an oracle a worker is still querying.
#[derive(Clone)]
pub enum SpreadBackend {
    /// A warm cascade index.
    Cascade(Arc<CascadeIndex>),
    /// Warm bottom-k reachability sketches.
    Sketch(Arc<ReachSketches>),
}

impl SpreadBackend {
    /// Which backend this oracle is.
    pub fn kind(&self) -> BackendKind {
        match self {
            SpreadBackend::Cascade(_) => BackendKind::Cascade,
            SpreadBackend::Sketch(_) => BackendKind::Sketch,
        }
    }

    /// Nodes in the graph the oracle was built over.
    pub fn num_nodes(&self) -> usize {
        match self {
            SpreadBackend::Cascade(index) => index.num_nodes(),
            SpreadBackend::Sketch(sk) => sk.num_nodes(),
        }
    }

    /// The cascade index, when that is the selected backend.
    pub fn as_cascade(&self) -> Option<&Arc<CascadeIndex>> {
        match self {
            SpreadBackend::Cascade(index) => Some(index),
            SpreadBackend::Sketch(_) => None,
        }
    }

    /// The sketches, when that is the selected backend.
    pub fn as_sketch(&self) -> Option<&Arc<ReachSketches>> {
        match self {
            SpreadBackend::Cascade(_) => None,
            SpreadBackend::Sketch(sk) => Some(sk),
        }
    }

    /// Estimates the expected spread of `seeds`. The cascade arm runs the
    /// Monte-Carlo estimator (`samples` fresh worlds from `seed`, one
    /// deadline tick each); the sketch arm answers from the precomputed
    /// sketches (no sampling — `samples`/`seed` are ignored and the
    /// answer is always [`Outcome::Completed`]).
    pub fn estimate_spread(
        &self,
        pg: &ProbGraph,
        seeds: &[NodeId],
        samples: usize,
        seed: u64,
        deadline: &Deadline,
    ) -> Outcome<f64> {
        match self {
            SpreadBackend::Cascade(_) => {
                soi_sampling::estimate_spread_budgeted(pg, seeds, samples, seed, deadline)
            }
            SpreadBackend::Sketch(sk) => Outcome::Completed(sk.set_spread(seeds)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;
    use soi_index::IndexConfig;
    use soi_sketch::SketchConfig;
    use soi_util::rng::Xoshiro256pp;

    fn graph() -> ProbGraph {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        ProbGraph::fixed(gen::gnm(50, 200, &mut rng), 0.3).expect("graph")
    }

    #[test]
    fn kind_round_trips_names_and_tags_differ() {
        for kind in [BackendKind::Cascade, BackendKind::Sketch] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
        assert_eq!(BackendKind::default(), BackendKind::Cascade);
        assert_ne!(BackendKind::Cascade.tag(), BackendKind::Sketch.tag());
    }

    #[test]
    fn both_backends_answer_spread_in_the_same_ballpark() {
        let pg = graph();
        let cascade = SpreadBackend::Cascade(Arc::new(CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 32,
                seed: 1,
                ..IndexConfig::default()
            },
        )));
        let sketch = SpreadBackend::Sketch(Arc::new(ReachSketches::build(
            &pg,
            SketchConfig {
                num_worlds: 256,
                k: 64,
                seed: 1,
                threads: 1,
            },
        )));
        assert_eq!(cascade.kind(), BackendKind::Cascade);
        assert_eq!(sketch.kind(), BackendKind::Sketch);
        assert!(cascade.as_cascade().is_some() && cascade.as_sketch().is_none());
        assert!(sketch.as_sketch().is_some() && sketch.as_cascade().is_none());
        assert_eq!(cascade.num_nodes(), sketch.num_nodes());
        let seeds = [0, 7];
        let mc = cascade
            .estimate_spread(&pg, &seeds, 2000, 9, &Deadline::unlimited())
            .value();
        let sk = sketch
            .estimate_spread(&pg, &seeds, 0, 0, &Deadline::unlimited())
            .value();
        let rel = (sk - mc).abs() / mc.max(1.0);
        assert!(rel < 0.5, "sketch {sk} vs mc {mc} (rel {rel})");
    }
}
