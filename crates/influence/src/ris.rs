//! Reverse-reachable-set (RIS) influence maximization.
//!
//! The near-linear-time approach of Borgs et al. (SODA 2014), made
//! practical as TIM by Tang et al. (SIGMOD 2014) — the modern baseline the
//! paper's related work (§7) discusses. Included as an extension
//! comparator for the benchmark suite.
//!
//! Idea: sample a uniform random target `t` and the set of nodes that
//! reach `t` in a random possible world (one lazy reverse cascade). A seed
//! set's spread is proportional to the fraction of such RR sets it hits;
//! greedy max-cover over the RR sets maximizes that fraction.

use soi_graph::{GraphBuilder, NodeId, ProbGraph};
use soi_util::rng::derive_seed;
use soi_util::rng::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of an RIS run.
#[derive(Clone, Debug)]
pub struct RisResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Spread estimate after each selection:
    /// `n · (covered RR sets / total RR sets)`.
    pub spread_curve: Vec<f64>,
}

/// The probabilistic *transpose* of `pg`: arc `(v, u)` with the
/// probability of the original `(u, v)`. A reverse cascade from `t` on the
/// transpose samples exactly the nodes that reach `t` in a forward world.
fn transpose(pg: &ProbGraph) -> ProbGraph {
    let mut b = GraphBuilder::new(pg.num_nodes());
    for u in pg.graph().nodes() {
        for (v, p) in pg.out_arcs(u) {
            b.add_weighted_edge(v, u, p);
        }
    }
    // Arcs and probabilities are copied verbatim from a ProbGraph that
    // already passed validation. xtask-allow: panic_policy
    b.build_prob().expect("transpose preserves validity")
}

/// Samples `num_rr` reverse-reachable sets. Exposed for tests and for the
/// benchmark harness's cost accounting.
pub fn sample_rr_sets(pg: &ProbGraph, num_rr: usize, seed: u64) -> Vec<Vec<NodeId>> {
    sample_rr_sets_budgeted(pg, num_rr, seed, &soi_util::runtime::Deadline::unlimited()).value()
}

/// Budgeted [`sample_rr_sets`]: one tick per RR set. On expiry returns
/// the sets sampled so far — set `i` depends only on `(seed, i)`, so a
/// partial result is exactly the prefix an uninterrupted run produces.
pub fn sample_rr_sets_budgeted(
    pg: &ProbGraph,
    num_rr: usize,
    seed: u64,
    deadline: &soi_util::runtime::Deadline,
) -> soi_util::runtime::Outcome<Vec<Vec<NodeId>>> {
    let tp = transpose(pg);
    let n = pg.num_nodes();
    let mut sampler = soi_sampling::CascadeSampler::new(n);
    let mut out = Vec::new();
    let mut sets = Vec::with_capacity(num_rr);
    for i in 0..num_rr {
        if !deadline.tick(1) {
            break;
        }
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(derive_seed(seed, i as u64));
        let target = rng.random_range(0..n as NodeId);
        sampler.sample(&tp, target, &mut rng, &mut out);
        // RR-set cost accounting: total width is the classic EPT-style
        // cost measure of the Borgs et al. analysis.
        soi_obs::counter_add!("influence.rr_sets_sampled", 1);
        soi_obs::counter_add!("influence.rr_set_nodes", out.len());
        let mut set = out.clone();
        set.sort_unstable();
        sets.push(set);
    }
    let done = sets.len() as u64;
    deadline.outcome(sets, done, num_rr as u64)
}

#[derive(Debug)]
struct Entry {
    gain: usize,
    node: NodeId,
    round: usize,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain.cmp(&other.gain).then(other.node.cmp(&self.node))
    }
}

/// RIS influence maximization: `num_rr` RR sets, then lazy greedy
/// max-cover. Deterministic in `seed`.
pub fn infmax_ris(pg: &ProbGraph, k: usize, num_rr: usize, seed: u64) -> RisResult {
    assert!(num_rr > 0, "need RR sets");
    let _span = soi_obs::span("influence.ris");
    let rr = sample_rr_sets(pg, num_rr, seed);
    greedy_max_cover(pg.num_nodes(), k, &rr)
}

/// Budgeted [`infmax_ris`]: the RR-sampling phase ticks the deadline once
/// per set; on expiry max-cover runs over the sets sampled so far, so the
/// partial result is a valid (coarser) RIS solution whose spread estimate
/// simply carries more sampling noise.
pub fn infmax_ris_budgeted(
    pg: &ProbGraph,
    k: usize,
    num_rr: usize,
    seed: u64,
    deadline: &soi_util::runtime::Deadline,
) -> soi_util::runtime::Outcome<RisResult> {
    assert!(num_rr > 0, "need RR sets");
    let _span = soi_obs::span("influence.ris");
    let n = pg.num_nodes();
    sample_rr_sets_budgeted(pg, num_rr, seed, deadline).map(|rr| {
        if rr.is_empty() {
            RisResult {
                seeds: Vec::new(),
                spread_curve: Vec::new(),
            }
        } else {
            greedy_max_cover(n, k, &rr)
        }
    })
}

/// Lazy greedy max-cover over sampled RR sets (the selection phase shared
/// by the full and budgeted entry points).
fn greedy_max_cover(n: usize, k: usize, rr: &[Vec<NodeId>]) -> RisResult {
    let k = k.min(n);

    // Inverted index: node -> RR set ids containing it.
    let mut containing: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, set) in rr.iter().enumerate() {
        for &v in set {
            containing[v as usize].push(i as u32);
        }
    }
    let mut covered = vec![false; rr.len()];
    let mut covered_count = 0usize;
    let scale = n as f64 / rr.len() as f64;

    let mut heap: BinaryHeap<Entry> = (0..n as NodeId)
        .map(|v| Entry {
            gain: containing[v as usize].len(),
            node: v,
            round: 0,
        })
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);
    for round in 1..=k {
        loop {
            let Some(top) = heap.pop() else {
                return RisResult {
                    seeds,
                    spread_curve: curve,
                };
            };
            if top.round == round {
                for &i in &containing[top.node as usize] {
                    if !covered[i as usize] {
                        covered[i as usize] = true;
                        covered_count += 1;
                    }
                }
                seeds.push(top.node);
                curve.push(covered_count as f64 * scale);
                break;
            }
            let fresh = containing[top.node as usize]
                .iter()
                .filter(|&&i| !covered[i as usize])
                .count();
            heap.push(Entry {
                gain: fresh,
                node: top.node,
                round,
            });
        }
    }
    RisResult {
        seeds,
        spread_curve: curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    #[test]
    fn rr_sets_contain_their_target_and_only_reachers() {
        // Path 0 -> 1 -> 2 deterministic: RR(2) = {0,1,2}, RR(0) = {0}.
        let pg = ProbGraph::fixed(gen::path(3), 1.0).unwrap();
        let sets = sample_rr_sets(&pg, 50, 1);
        for s in &sets {
            assert!(!s.is_empty());
            // Every RR set of a path is a suffix-prefix 0..=t.
            let t = *s.last().unwrap();
            let expect: Vec<NodeId> = (0..=t).collect();
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn hub_wins_on_a_star() {
        let mut b = soi_graph::GraphBuilder::new(10);
        for leaf in 1..10 {
            b.add_weighted_edge(0, leaf, 0.9);
        }
        let pg = b.build_prob().unwrap();
        let r = infmax_ris(&pg, 2, 2000, 2);
        assert_eq!(r.seeds[0], 0);
        // Spread estimate of the hub should be near 1 + 9 * 0.9 = 9.1.
        assert!(
            (r.spread_curve[0] - 9.1).abs() < 0.8,
            "{}",
            r.spread_curve[0]
        );
    }

    #[test]
    fn ris_agrees_with_mc_greedy_on_spread() {
        use soi_util::rng::Xoshiro256pp;
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let pg = ProbGraph::fixed(gen::barabasi_albert(80, 2, true, &mut rng), 0.2).unwrap();
        let r = infmax_ris(&pg, 5, 5000, 4);
        // Evaluate the RIS seeds with the forward MC estimator; RIS's own
        // estimate should be in the same ballpark.
        let forward = soi_sampling::estimate_spread(&pg, &r.seeds, 4000, 5);
        let ris_est = *r.spread_curve.last().unwrap();
        assert!(
            (forward - ris_est).abs() < 0.25 * forward.max(1.0),
            "forward {forward} vs ris {ris_est}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let pg = ProbGraph::fixed(gen::cycle(20), 0.3).unwrap();
        let a = infmax_ris(&pg, 3, 500, 7);
        let b = infmax_ris(&pg, 3, 500, 7);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.spread_curve, b.spread_curve);
    }

    #[test]
    fn budgeted_ris_degrades_to_fewer_rr_sets() {
        use soi_util::runtime::Deadline;
        let pg = ProbGraph::fixed(gen::cycle(20), 0.3).unwrap();
        let full = infmax_ris(&pg, 3, 500, 7);

        let complete = infmax_ris_budgeted(&pg, 3, 500, 7, &Deadline::unlimited());
        assert!(complete.is_complete());
        assert_eq!(complete.value_ref().seeds, full.seeds);

        // Budget for 200 sets: identical to a 200-set run from scratch.
        let d = Deadline::ticks(200);
        let partial = infmax_ris_budgeted(&pg, 3, 500, 7, &d);
        assert!(!partial.is_complete());
        assert_eq!(partial.progress().unwrap().done, 200);
        let small = infmax_ris(&pg, 3, 200, 7);
        let partial = partial.value();
        assert_eq!(partial.seeds, small.seeds);
        assert_eq!(partial.spread_curve, small.spread_curve);

        // Zero budget: empty but well-formed.
        let none = infmax_ris_budgeted(&pg, 3, 500, 7, &Deadline::ticks(0));
        assert!(!none.is_complete());
        assert!(none.value_ref().seeds.is_empty());
    }

    #[test]
    fn curve_monotone_no_duplicate_seeds() {
        let pg = ProbGraph::fixed(gen::star(15), 0.5).unwrap();
        let r = infmax_ris(&pg, 10, 1000, 8);
        assert!(r.spread_curve.windows(2).all(|w| w[1] >= w[0]));
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), r.seeds.len());
    }
}
