//! The saturation analysis of §6.4 (Figure 7).
//!
//! At greedy iteration `j`, let `MG_i^j` be the `i`-th largest marginal
//! gain over the remaining candidates. The ratio `MG₁₀^j / MG₁^j` measures
//! how distinguishable the chosen seed is from its runners-up: near 0 the
//! winner is clearly better; near 1 the algorithm is effectively picking
//! at random among equivalent candidates ("the point of saturation").
//!
//! Both greedy variants (`InfMax_std` plain mode and `InfMax_TC` with
//! `capture_top`) record per-iteration gain rankings; this module turns
//! them into ratio series.

/// The `MG_rank / MG_1` ratio for one iteration's descending gain ranking.
/// Returns `None` when the ranking is too short or the top gain is 0.
pub fn gain_ratio(ranking: &[f64], rank: usize) -> Option<f64> {
    assert!(rank >= 1, "rank is 1-based");
    let top = *ranking.first()?;
    let other = *ranking.get(rank - 1)?;
    if top <= 0.0 {
        return None;
    }
    Some((other / top).clamp(0.0, 1.0))
}

/// Ratio series over a run's recorded rankings: one
/// `MG_rank^j / MG_1^j` per iteration `j` (skipping degenerate
/// iterations). The Figure 7 series is `ratio_series(rankings, 10)`.
pub fn ratio_series(rankings: &[Vec<f64>], rank: usize) -> Vec<f64> {
    rankings
        .iter()
        .filter_map(|r| gain_ratio(r, rank))
        .collect()
}

/// The first iteration (0-based) whose ratio reaches `threshold`, if any —
/// a scalar "saturation point" summary.
pub fn saturation_point(rankings: &[Vec<f64>], rank: usize, threshold: f64) -> Option<usize> {
    rankings
        .iter()
        .enumerate()
        .find(|(_, r)| gain_ratio(r, rank).is_some_and(|x| x >= threshold))
        .map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert_eq!(gain_ratio(&[10.0, 8.0, 5.0], 3), Some(0.5));
        assert_eq!(gain_ratio(&[10.0, 8.0], 2), Some(0.8));
        assert_eq!(gain_ratio(&[10.0], 2), None, "ranking too short");
        assert_eq!(gain_ratio(&[0.0, 0.0], 2), None, "zero top gain");
        assert_eq!(gain_ratio(&[], 1), None);
    }

    #[test]
    fn series_skips_degenerate_iterations() {
        let rankings = vec![vec![10.0, 5.0], vec![0.0, 0.0], vec![4.0, 4.0]];
        assert_eq!(ratio_series(&rankings, 2), vec![0.5, 1.0]);
    }

    #[test]
    fn saturation_point_detection() {
        let rankings = vec![
            vec![10.0, 2.0],
            vec![10.0, 6.0],
            vec![10.0, 9.5],
            vec![10.0, 9.9],
        ];
        assert_eq!(saturation_point(&rankings, 2, 0.9), Some(2));
        assert_eq!(saturation_point(&rankings, 2, 0.999), None);
    }

    #[test]
    fn end_to_end_ratios_rise_with_iterations() {
        // On a graph of many near-identical nodes the standard greedy
        // saturates: ratios should be high from early on.
        use soi_graph::{gen, ProbGraph};
        use soi_index::{CascadeIndex, IndexConfig};
        let pg = ProbGraph::fixed(gen::cycle(40), 0.2).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 64,
                seed: 1,
                ..IndexConfig::default()
            },
        );
        let run = crate::infmax_std(&index, 8, crate::GreedyMode::Plain { capture_top: 10 });
        let ratios = ratio_series(&run.gain_rankings, 10);
        assert_eq!(ratios.len(), 8);
        // A symmetric cycle has indistinguishable candidates: ratios ≈ 1.
        assert!(ratios.iter().all(|&r| r > 0.5), "{ratios:?}");
    }
}
