//! # soi-influence
//!
//! Influence maximization, both the paper's baseline and its contribution:
//!
//! * [`spread`] — an index-backed Monte-Carlo spread oracle with the
//!   covered-state bookkeeping greedy algorithms need;
//! * [`greedy`] — `InfMax_std`: the theoretically optimal `(1 − 1/e)`
//!   greedy of Kempe et al. over sampled worlds, in a *plain* variant
//!   (full marginal-gain rankings per iteration, required by the Figure 7
//!   saturation study) and a *CELF* lazy variant (Leskovec et al. /
//!   Goyal et al.'s optimization, what the paper runs for Figure 6);
//! * [`tc_cover`] — `InfMax_TC` (Algorithm 3): greedy max-cover over the
//!   typical cascades of all nodes, plus the weighted-value and budgeted
//!   extensions sketched in §8;
//! * [`ris`] — a reverse-reachable-sketch comparator (Borgs et al. /
//!   TIM-flavoured), the modern baseline referenced in §7;
//! * [`saturation`] — the marginal-gain-ratio analysis (`MG₁₀/MG₁`) behind
//!   Figure 7;
//! * [`backend`] — the selectable spread-oracle dispatch (cascade index
//!   vs bottom-k sketches) shared by the CLI and serving layers.

pub mod backend;
pub mod baselines;
pub mod greedy;
pub mod ris;
pub mod saturation;
pub mod spread;
pub mod tc_cover;

pub use backend::{BackendKind, SpreadBackend};
pub use baselines::{
    core_seeds, degree_discount_seeds, high_degree_seeds, pagerank_seeds, random_seeds,
};
pub use greedy::{
    infmax_celf_resumable, infmax_celfpp, infmax_std, infmax_std_mc, GreedyMode, GreedyResult,
    GreedyRunOpts, McGreedyConfig,
};
pub use ris::{infmax_ris, infmax_ris_budgeted};
pub use spread::SpreadOracle;
pub use tc_cover::{infmax_tc, infmax_tc_budgeted, infmax_tc_weighted, TcResult};
