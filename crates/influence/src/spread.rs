//! Index-backed expected-spread estimation with greedy bookkeeping.
//!
//! `InfMax_std` needs two things from its spread estimator: `σ(S)` for a
//! candidate set, and — inside the greedy loop — *marginal gains*
//! `σ(S ∪ {v}) − σ(S)` against the running solution. Both are computed
//! over the ℓ live-edge worlds of a [`CascadeIndex`] (the standard Kempe
//! et al. estimator, sharing one world pool across the whole greedy run as
//! the CELF++ implementation the paper uses does). The oracle keeps one
//! covered-bitset per world so a marginal gain is just "new nodes this
//! cascade would add".

use soi_graph::NodeId;
use soi_index::{CascadeIndex, IndexQuery};
use soi_util::BitSet;

/// Monte-Carlo spread oracle over an index's world pool.
pub struct SpreadOracle<'a> {
    index: &'a CascadeIndex,
    /// Per-world activated-node sets for the committed seed set.
    covered: Vec<BitSet>,
    /// Per-world activated counts (popcount cache).
    covered_counts: Vec<usize>,
    committed: Vec<NodeId>,
    query: IndexQuery,
    scratch: Vec<NodeId>,
}

impl<'a> SpreadOracle<'a> {
    /// Creates an oracle with an empty committed seed set.
    pub fn new(index: &'a CascadeIndex) -> Self {
        let n = index.num_nodes();
        let ell = index.num_worlds();
        SpreadOracle {
            index,
            covered: (0..ell).map(|_| BitSet::new(n)).collect(),
            covered_counts: vec![0; ell],
            committed: Vec::new(),
            query: index.query(),
            scratch: Vec::new(),
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &CascadeIndex {
        self.index
    }

    /// The committed seed set (in commit order).
    pub fn committed(&self) -> &[NodeId] {
        &self.committed
    }

    /// One-shot estimate of `σ(seeds)`, independent of the committed state.
    pub fn spread_of(&mut self, seeds: &[NodeId]) -> f64 {
        soi_obs::counter_add!("influence.spread_evals", 1);
        let ell = self.index.num_worlds();
        let mut total = 0usize;
        for i in 0..ell {
            self.index
                .multi_cascade(seeds, i, &mut self.query, &mut self.scratch);
            total += self.scratch.len();
        }
        total as f64 / ell as f64
    }

    /// Expected spread of the committed seed set.
    pub fn current_spread(&self) -> f64 {
        if self.covered_counts.is_empty() {
            return 0.0;
        }
        self.covered_counts.iter().sum::<usize>() as f64 / self.covered_counts.len() as f64
    }

    /// Marginal gain `σ(S ∪ {v}) − σ(S)` against the committed state.
    pub fn marginal_gain(&mut self, v: NodeId) -> f64 {
        soi_obs::counter_add!("influence.marginal_gain_calls", 1);
        let ell = self.index.num_worlds();
        let mut gain = 0usize;
        for i in 0..ell {
            // Fast path: if v is already covered in world i, its whole
            // cascade is covered too (covered sets are closed under
            // reachability within a world).
            if self.covered[i].contains(v as usize) {
                continue;
            }
            self.index.cascade(v, i, &mut self.query, &mut self.scratch);
            gain += self
                .scratch
                .iter()
                .filter(|&&w| !self.covered[i].contains(w as usize))
                .count();
        }
        gain as f64 / ell as f64
    }

    /// Marginal gain of `v` *assuming `b` gets committed first*:
    /// `σ(S ∪ {b, v}) − σ(S ∪ {b})`. The CELF++ paired evaluation —
    /// computed against the current covered state plus `b`'s cascades,
    /// without mutating the oracle.
    pub fn marginal_gain_after(&mut self, v: NodeId, b: NodeId) -> f64 {
        soi_obs::counter_add!("influence.marginal_gain_pair_calls", 1);
        let ell = self.index.num_worlds();
        let mut gain = 0usize;
        let mut b_cascade: Vec<NodeId> = Vec::new();
        let mut aux = soi_util::BitSet::new(self.index.num_nodes());
        for i in 0..ell {
            if self.covered[i].contains(v as usize) {
                continue;
            }
            // Mark b's cascade for this world (unless b is covered, in
            // which case its cascade is already inside covered[i]).
            aux.clear();
            if !self.covered[i].contains(b as usize) {
                self.index.cascade(b, i, &mut self.query, &mut b_cascade);
                for &w in &b_cascade {
                    aux.insert(w as usize);
                }
            }
            if aux.contains(v as usize) {
                continue; // v is swallowed by b's cascade in this world
            }
            self.index.cascade(v, i, &mut self.query, &mut self.scratch);
            gain += self
                .scratch
                .iter()
                .filter(|&&w| !self.covered[i].contains(w as usize) && !aux.contains(w as usize))
                .count();
        }
        gain as f64 / ell as f64
    }

    /// Commits `v` into the seed set, updating covered state. Returns the
    /// realized marginal gain.
    pub fn commit(&mut self, v: NodeId) -> f64 {
        soi_obs::counter_add!("influence.commits", 1);
        let ell = self.index.num_worlds();
        let mut gain = 0usize;
        for i in 0..ell {
            if self.covered[i].contains(v as usize) {
                continue;
            }
            self.index.cascade(v, i, &mut self.query, &mut self.scratch);
            for &w in &self.scratch {
                if self.covered[i].insert(w as usize) {
                    gain += 1;
                    self.covered_counts[i] += 1;
                }
            }
        }
        self.committed.push(v);
        gain as f64 / ell as f64
    }

    /// Clears the committed state.
    pub fn reset(&mut self) {
        for b in &mut self.covered {
            b.clear();
        }
        self.covered_counts.fill(0);
        self.committed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, ProbGraph};
    use soi_index::IndexConfig;

    fn build(seed: u64, worlds: usize) -> (ProbGraph, CascadeIndex) {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(seed);
        let pg = ProbGraph::fixed(gen::gnm(50, 250, &mut rng), 0.25).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: worlds,
                seed: seed ^ 0xABCD,
                ..IndexConfig::default()
            },
        );
        (pg, index)
    }

    #[test]
    fn spread_of_matches_reference_estimator() {
        let (pg, index) = build(1, 3000);
        let mut oracle = SpreadOracle::new(&index);
        for seeds in [vec![0u32], vec![0, 1, 2], vec![10, 20, 30, 40]] {
            let via_index = oracle.spread_of(&seeds);
            let reference = soi_sampling::estimate_spread(&pg, &seeds, 20_000, 99);
            assert!(
                (via_index - reference).abs() < 0.1 * reference.max(1.0),
                "seeds {seeds:?}: index {via_index} vs reference {reference}"
            );
        }
    }

    #[test]
    fn commit_accumulates_and_matches_spread_of() {
        let (_pg, index) = build(2, 64);
        let mut oracle = SpreadOracle::new(&index);
        let mut committed = Vec::new();
        for v in [5u32, 17, 33] {
            let gain = oracle.marginal_gain(v);
            let realized = oracle.commit(v);
            assert!((gain - realized).abs() < 1e-12, "gain consistency for {v}");
            committed.push(v);
            let direct = oracle.spread_of(&committed);
            assert!(
                (oracle.current_spread() - direct).abs() < 1e-9,
                "incremental vs direct after {committed:?}"
            );
        }
        assert_eq!(oracle.committed(), &[5, 17, 33]);
    }

    #[test]
    fn marginal_gain_of_covered_node_is_zero() {
        let pg = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 8,
                seed: 3,
                ..IndexConfig::default()
            },
        );
        let mut oracle = SpreadOracle::new(&index);
        oracle.commit(0); // covers everything downstream deterministically
        assert_eq!(oracle.marginal_gain(2), 0.0);
        assert_eq!(oracle.current_spread(), 4.0);
    }

    #[test]
    fn gains_are_submodular_along_a_run() {
        // For a fixed v, the marginal gain can only shrink as seeds commit.
        let (_pg, index) = build(4, 64);
        let mut oracle = SpreadOracle::new(&index);
        let probe = 42u32;
        let mut last = oracle.marginal_gain(probe);
        for v in [1u32, 9, 25, 33] {
            oracle.commit(v);
            let now = oracle.marginal_gain(probe);
            assert!(now <= last + 1e-12, "gain grew after committing {v}");
            last = now;
        }
    }

    #[test]
    fn marginal_gain_after_matches_commit_sequence() {
        let (_pg, index) = build(6, 64);
        let mut oracle = SpreadOracle::new(&index);
        oracle.commit(3);
        for (v, b) in [(10u32, 20u32), (7, 7), (15, 3)] {
            let paired = oracle.marginal_gain_after(v, b);
            // Reference: actually commit b on a fresh oracle with the same
            // prefix, then measure v.
            let mut reference = SpreadOracle::new(&index);
            reference.commit(3);
            reference.commit(b);
            let expected = reference.marginal_gain(v);
            assert!(
                (paired - expected).abs() < 1e-12,
                "v={v}, b={b}: paired {paired} vs sequential {expected}"
            );
        }
    }

    #[test]
    fn reset_restores_empty_state() {
        let (_pg, index) = build(5, 16);
        let mut oracle = SpreadOracle::new(&index);
        oracle.commit(1);
        oracle.commit(2);
        oracle.reset();
        assert_eq!(oracle.current_spread(), 0.0);
        assert!(oracle.committed().is_empty());
        // Gains are fresh again.
        let g1 = oracle.marginal_gain(1);
        assert!(g1 >= 1.0, "node counts itself after reset: {g1}");
    }
}
