//! Cheap seeding heuristics — the standard comparison points of the
//! influence-maximization literature (Kempe et al. compare greedy against
//! exactly these: highest degree, "central" nodes, random).

use soi_graph::{pagerank::PageRankConfig, DiGraph, NodeId};
use soi_util::rng::Rng;

/// The `k` nodes of largest out-degree (ties toward smaller id).
pub fn high_degree_seeds(g: &DiGraph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| g.out_degree(b).cmp(&g.out_degree(a)).then(a.cmp(&b)));
    nodes.truncate(k);
    nodes
}

/// The `k` nodes of largest PageRank (ties toward smaller id).
pub fn pagerank_seeds(g: &DiGraph, k: usize) -> Vec<NodeId> {
    let pr = soi_graph::pagerank::pagerank(g, &PageRankConfig::default());
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]).then(a.cmp(&b)));
    nodes.truncate(k);
    nodes
}

/// DegreeDiscount (Chen, Wang & Yang, KDD 2009): degree-based seeding
/// that discounts a node's degree for neighbors already selected —
/// designed for the uniform-probability IC model with probability `p`.
///
/// `dd(v) = d(v) − 2·t(v) − (d(v) − t(v))·t(v)·p` where `t(v)` counts
/// already-selected in-neighbors of `v`. Near-greedy quality at a tiny
/// fraction of the cost on uniform-IC benchmarks.
pub fn degree_discount_seeds(g: &DiGraph, k: usize, p: f64) -> Vec<NodeId> {
    let n = g.num_nodes();
    let k = k.min(n);
    let mut selected = vec![false; n];
    let mut t = vec![0usize; n];
    let mut dd: Vec<f64> = g.nodes().map(|v| g.out_degree(v) as f64).collect();
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k {
        let best = g
            .nodes()
            .filter(|&v| !selected[v as usize])
            .max_by(|&a, &b| dd[a as usize].total_cmp(&dd[b as usize]).then(b.cmp(&a)));
        let Some(u) = best else { break };
        selected[u as usize] = true;
        seeds.push(u);
        for &v in g.out_neighbors(u) {
            if selected[v as usize] {
                continue;
            }
            t[v as usize] += 1;
            let d = g.out_degree(v) as f64;
            let tv = t[v as usize] as f64;
            dd[v as usize] = d - 2.0 * tv - (d - tv) * tv * p;
        }
    }
    seeds
}

/// `k` distinct uniform random nodes.
/// The `k` nodes of deepest k-core (ties by out-degree, then id). Core
/// depth is a classic influence proxy — "influential spreaders are
/// located in the core" — and pairs naturally with the uncertain-graph
/// core decomposition of the paper's reference [6] (`soi_graph::kcore`).
pub fn core_seeds(g: &DiGraph, k: usize) -> Vec<NodeId> {
    let core = soi_graph::kcore::core_numbers(g);
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_by(|&a, &b| {
        core[b as usize]
            .cmp(&core[a as usize])
            .then(g.out_degree(b).cmp(&g.out_degree(a)))
            .then(a.cmp(&b))
    });
    nodes.truncate(k);
    nodes
}

pub fn random_seeds<R: Rng>(g: &DiGraph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.num_nodes();
    let k = k.min(n);
    let mut chosen: Vec<NodeId> = Vec::with_capacity(k);
    while chosen.len() < k {
        let v = rng.random_range(0..n as NodeId);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;
    use soi_util::rng::Xoshiro256pp;

    #[test]
    fn high_degree_finds_the_hub() {
        let g = gen::star(10);
        assert_eq!(high_degree_seeds(&g, 1), vec![0]);
        let seeds = high_degree_seeds(&g, 3);
        assert_eq!(seeds, vec![0, 1, 2], "ties break toward small ids");
    }

    #[test]
    fn pagerank_seeds_prefer_central_nodes() {
        // All leaves point to 0; 0 points to 1.
        let mut edges: Vec<(u32, u32)> = (2..12).map(|i| (i, 0)).collect();
        edges.push((0, 1));
        let g = DiGraph::from_edges(12, &edges).unwrap();
        let seeds = pagerank_seeds(&g, 2);
        assert!(seeds.contains(&0) && seeds.contains(&1));
    }

    #[test]
    fn random_seeds_are_distinct_and_deterministic() {
        let g = gen::complete(20);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let a = random_seeds(&g, 8, &mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        assert_eq!(a, random_seeds(&g, 8, &mut rng));
        // k > n clamps.
        assert_eq!(random_seeds(&g, 100, &mut rng).len(), 20);
    }

    #[test]
    fn core_seeds_prefer_dense_clusters() {
        // A 4-clique (nodes 0..4) plus a star from 5: clique nodes are
        // 3-core, star members 1-core.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        for leaf in 6..12u32 {
            edges.push((5, leaf));
            edges.push((leaf, 5));
        }
        let g = DiGraph::from_edges(12, &edges).unwrap();
        let seeds = core_seeds(&g, 4);
        assert_eq!(seeds, vec![0, 1, 2, 3], "clique fills the deep core");
    }

    #[test]
    fn degree_discount_spreads_selections() {
        // Dense hub cluster: after picking hub 0, its neighbors are
        // discounted, so the second pick jumps to the other cluster.
        let mut edges = Vec::new();
        for v in 1..5u32 {
            edges.push((0, v));
            edges.push((v, 0));
        }
        for v in 6..10u32 {
            edges.push((5, v));
            edges.push((v, 5));
        }
        // Tie-break: make cluster 0 slightly denser.
        edges.push((0, 5));
        let g = DiGraph::from_edges(10, &edges).unwrap();
        let seeds = degree_discount_seeds(&g, 2, 0.1);
        assert_eq!(seeds[0], 0);
        assert_eq!(seeds[1], 5, "discount sends the second pick across");
        // k > n clamps, no duplicates.
        let all = degree_discount_seeds(&g, 50, 0.1);
        assert_eq!(all.len(), 10);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn degree_discount_near_greedy_on_uniform_ic() {
        use soi_graph::ProbGraph;
        use soi_index::{CascadeIndex, IndexConfig};
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        // Symmetrized BA: heavy-tailed degree in both directions — the
        // setting DegreeDiscount was designed for (directed BA has
        // near-uniform out-degree, leaving the heuristic no signal).
        let topo = gen::barabasi_albert(150, 3, false, &mut rng);
        let pg = ProbGraph::fixed(topo, 0.1).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 200,
                seed: 6,
                ..IndexConfig::default()
            },
        );
        let greedy = crate::infmax_std(&index, 8, crate::GreedyMode::Celf);
        let dd = degree_discount_seeds(pg.graph(), 8, 0.1);
        let sigma = |s: &[NodeId]| soi_sampling::estimate_spread(&pg, s, 4000, 7);
        let g_spread = sigma(&greedy.seeds);
        let d_spread = sigma(&dd);
        // DegreeDiscount was designed for undirected uniform-IC graphs;
        // on a directed BA network it lands within a modest factor of
        // greedy while random seeds fall far below it.
        assert!(
            d_spread > 0.7 * g_spread,
            "degree-discount {d_spread} vs greedy {g_spread}"
        );
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let r_spread = sigma(&random_seeds(pg.graph(), 8, &mut rng));
        assert!(d_spread > r_spread, "dd {d_spread} vs random {r_spread}");
    }

    #[test]
    fn greedy_beats_heuristics_on_weighted_cascade() {
        use soi_graph::ProbGraph;
        use soi_index::{CascadeIndex, IndexConfig};
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let pg = ProbGraph::weighted_cascade(gen::barabasi_albert(200, 3, true, &mut rng));
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 128,
                seed: 3,
                ..IndexConfig::default()
            },
        );
        let greedy = crate::infmax_std(&index, 10, crate::GreedyMode::Celf);
        let sigma = |seeds: &[NodeId]| soi_sampling::estimate_spread(&pg, seeds, 3000, 4);
        let g_spread = sigma(&greedy.seeds);
        let deg = sigma(&high_degree_seeds(pg.graph(), 10));
        let rnd = sigma(&random_seeds(pg.graph(), 10, &mut rng));
        assert!(g_spread >= deg * 0.98, "greedy {g_spread} vs degree {deg}");
        assert!(g_spread > rnd, "greedy {g_spread} vs random {rnd}");
    }
}
