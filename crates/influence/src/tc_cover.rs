//! `InfMax_TC` (Algorithm 3): influence maximization as max-cover over
//! spheres of influence.
//!
//! §5 of the paper: with the typical cascade `C_v` of every node
//! precomputed, pick the `k` nodes whose spheres jointly cover the most
//! nodes — a classic maximum-coverage instance solved greedily. Coverage
//! is monotone submodular, so lazy (CELF-style) evaluation is exact and
//! the greedy is a `(1 − 1/e)` approximation *to the coverage objective*
//! (the influence-maximization quality claim is empirical, §6.4).
//!
//! Also here: the §8 future-work extensions — market segments with
//! different *values* (weighted max-cover) and nodes with different
//! seeding *costs* (budgeted max-cover via the greedy ratio rule).

use soi_graph::NodeId;
use soi_util::BitSet;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Output of an `InfMax_TC` run.
#[derive(Clone, Debug)]
pub struct TcResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Objective value after each selection (covered node count, or
    /// covered value for the weighted variant).
    pub coverage_curve: Vec<f64>,
    /// For plain runs with `capture_top > 0`: per-iteration top marginal
    /// gains, sorted descending (Figure 7's saturation analysis for the
    /// TC method).
    pub gain_rankings: Vec<Vec<f64>>,
}

/// Greedy max-cover over typical cascades. `cascades[v]` is the sphere of
/// influence of node `v` (canonical sorted set over `0..n`).
///
/// `capture_top > 0` switches to exhaustive per-iteration evaluation and
/// records gain rankings (needed by the saturation study); otherwise lazy
/// evaluation is used.
///
/// ```
/// use soi_influence::infmax_tc;
/// // Node 0 covers {0,1,2}; node 1 covers {3,4}; node 2 covers {1,2}.
/// let spheres = vec![vec![0, 1, 2], vec![3, 4], vec![1, 2]];
/// let run = infmax_tc(&spheres, 2, 0);
/// assert_eq!(run.seeds, vec![0, 1]);           // greedy coverage order
/// assert_eq!(run.coverage_curve, vec![3.0, 5.0]);
/// ```
pub fn infmax_tc(cascades: &[Vec<NodeId>], k: usize, capture_top: usize) -> TcResult {
    let values = vec![1.0; universe_size(cascades)];
    weighted_inner(cascades, &values, k, capture_top)
}

/// Weighted max-cover: node `w` covered is worth `values[w]` (market
/// segments with different campaign value, §8).
pub fn infmax_tc_weighted(cascades: &[Vec<NodeId>], values: &[f64], k: usize) -> TcResult {
    assert!(
        values.len() >= universe_size(cascades),
        "values must cover every node appearing in a cascade"
    );
    weighted_inner(cascades, values, k, 0)
}

fn universe_size(cascades: &[Vec<NodeId>]) -> usize {
    cascades
        .iter()
        .flat_map(|c| c.iter())
        .map(|&v| v as usize + 1)
        .max()
        .unwrap_or(0)
        .max(cascades.len())
}

fn gain_of(cascade: &[NodeId], covered: &BitSet, values: &[f64]) -> f64 {
    soi_obs::counter_add!("influence.tc_gain_evals", 1);
    cascade
        .iter()
        .filter(|&&w| !covered.contains(w as usize))
        .map(|&w| values[w as usize])
        .sum()
}

#[derive(Debug)]
struct LazyEntry {
    gain: f64,
    node: NodeId,
    round: usize,
}

impl PartialEq for LazyEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for LazyEntry {}
impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then(other.node.cmp(&self.node))
    }
}

fn weighted_inner(
    cascades: &[Vec<NodeId>],
    values: &[f64],
    k: usize,
    capture_top: usize,
) -> TcResult {
    let _span = soi_obs::span("influence.tc_cover");
    soi_obs::counter_add!("influence.tc_runs", 1);
    let n = cascades.len();
    let k = k.min(n);
    let universe = universe_size(cascades).max(values.len());
    let mut covered = BitSet::new(universe);
    let mut seeds = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);
    let mut rankings = Vec::new();
    let mut total = 0.0;

    if capture_top > 0 {
        // Exhaustive mode with ranking capture.
        let mut in_solution = vec![false; n];
        for _ in 0..k {
            let mut gains: Vec<(f64, NodeId)> = (0..n as NodeId)
                .filter(|&v| !in_solution[v as usize])
                .map(|v| (gain_of(&cascades[v as usize], &covered, values), v))
                .collect();
            gains.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            rankings.push(gains.iter().take(capture_top).map(|&(g, _)| g).collect());
            let Some(&(gain, best)) = gains.first() else {
                break;
            };
            in_solution[best as usize] = true;
            for &w in &cascades[best as usize] {
                covered.insert(w as usize);
            }
            total += gain;
            seeds.push(best);
            curve.push(total);
        }
    } else {
        // Lazy mode.
        let mut heap: BinaryHeap<LazyEntry> = (0..n as NodeId)
            .map(|v| LazyEntry {
                gain: gain_of(&cascades[v as usize], &covered, values),
                node: v,
                round: 0,
            })
            .collect();
        for round in 1..=k {
            loop {
                let Some(top) = heap.pop() else {
                    return TcResult {
                        seeds,
                        coverage_curve: curve,
                        gain_rankings: rankings,
                    };
                };
                if top.round == round {
                    for &w in &cascades[top.node as usize] {
                        covered.insert(w as usize);
                    }
                    total += top.gain;
                    seeds.push(top.node);
                    curve.push(total);
                    break;
                }
                soi_obs::counter_add!("influence.tc_reevals", 1);
                let fresh = gain_of(&cascades[top.node as usize], &covered, values);
                heap.push(LazyEntry {
                    gain: fresh,
                    node: top.node,
                    round,
                });
            }
        }
    }

    TcResult {
        seeds,
        coverage_curve: curve,
        gain_rankings: rankings,
    }
}

/// Budgeted max-cover (§8: nodes with different seeding costs): greedily
/// picks the best gain-per-cost node that still fits the remaining
/// budget. Returns when nothing affordable remains.
///
/// The plain ratio rule has an unbounded worst case; the standard fix of
/// comparing against the best single affordable set is applied, giving
/// the classic `(1 − 1/√e)`-style guarantee for the coverage objective.
pub fn infmax_tc_budgeted(cascades: &[Vec<NodeId>], costs: &[f64], budget: f64) -> TcResult {
    assert_eq!(cascades.len(), costs.len(), "one cost per node");
    assert!(costs.iter().all(|&c| c > 0.0), "costs must be positive");
    let n = cascades.len();
    let universe = universe_size(cascades);
    let values = vec![1.0; universe];

    // Ratio-greedy pass.
    let mut covered = BitSet::new(universe);
    let mut seeds = Vec::new();
    let mut curve = Vec::new();
    let mut spent = 0.0;
    let mut total = 0.0;
    let mut in_solution = vec![false; n];
    loop {
        let mut best: Option<(f64, f64, NodeId)> = None; // (ratio, gain, node)
        for v in 0..n as NodeId {
            if in_solution[v as usize] || spent + costs[v as usize] > budget {
                continue;
            }
            let gain = gain_of(&cascades[v as usize], &covered, &values);
            let ratio = gain / costs[v as usize];
            let candidate = (ratio, gain, v);
            best = match best {
                None => Some(candidate),
                Some(b) if ratio > b.0 + 1e-15 || (ratio >= b.0 - 1e-15 && v < b.2) => {
                    Some(candidate)
                }
                keep => keep,
            };
        }
        let Some((_, gain, v)) = best else { break };
        if gain <= 0.0 {
            break;
        }
        in_solution[v as usize] = true;
        for &w in &cascades[v as usize] {
            covered.insert(w as usize);
        }
        spent += costs[v as usize];
        total += gain;
        seeds.push(v);
        curve.push(total);
    }

    // Compare with the best single affordable node (guards the ratio
    // rule's pathological cases).
    let best_single = (0..n).filter(|&v| costs[v] <= budget).max_by(|&a, &b| {
        (cascades[a].len() as f64)
            .total_cmp(&(cascades[b].len() as f64))
            .then(b.cmp(&a))
    });
    if let Some(v) = best_single {
        if (cascades[v].len() as f64) > total {
            return TcResult {
                seeds: vec![v as NodeId],
                coverage_curve: vec![cascades[v].len() as f64],
                gain_rankings: Vec::new(),
            };
        }
    }

    TcResult {
        seeds,
        coverage_curve: curve,
        gain_rankings: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_cascades() -> Vec<Vec<NodeId>> {
        // Universe 0..6. Node 0 covers {0,1,2}; node 1 covers {3,4};
        // node 2 covers {1,2}; node 3 covers {5}; others themselves.
        vec![
            vec![0, 1, 2],
            vec![1, 3, 4],
            vec![1, 2],
            vec![3, 5],
            vec![4],
            vec![5],
        ]
    }

    #[test]
    fn greedy_cover_order() {
        let r = infmax_tc(&toy_cascades(), 3, 0);
        // Gains: node 0 → 3, node 1 → 3 (tie, smaller id wins) → pick 0.
        assert_eq!(r.seeds[0], 0);
        // Then node 1 adds {3,4} = 2; node 3 adds {3,5} = 2 → tie, pick 1.
        assert_eq!(r.seeds[1], 1);
        // Then node 3 adds {5}; node 5 adds {5} → pick 3.
        assert_eq!(r.seeds[2], 3);
        assert_eq!(r.coverage_curve, vec![3.0, 5.0, 6.0]);
    }

    #[test]
    fn lazy_equals_exhaustive() {
        let cascades: Vec<Vec<NodeId>> = (0..30)
            .map(|v: u32| {
                let mut c: Vec<u32> = (v..30.min(v + (v % 7))).collect();
                if c.is_empty() {
                    c.push(v);
                }
                c
            })
            .collect();
        let lazy = infmax_tc(&cascades, 10, 0);
        let plain = infmax_tc(&cascades, 10, 5);
        assert_eq!(lazy.seeds, plain.seeds);
        assert_eq!(lazy.coverage_curve, plain.coverage_curve);
        assert_eq!(plain.gain_rankings.len(), 10);
    }

    #[test]
    fn coverage_curve_monotone_and_bounded() {
        let r = infmax_tc(&toy_cascades(), 6, 0);
        assert!(r.coverage_curve.windows(2).all(|w| w[1] >= w[0]));
        assert!(*r.coverage_curve.last().unwrap() <= 6.0);
    }

    #[test]
    fn weighted_prefers_valuable_segments() {
        // Node 5 (covering node 5) is worth 100; everything else 1.
        let mut values = vec![1.0; 6];
        values[5] = 100.0;
        let r = infmax_tc_weighted(&toy_cascades(), &values, 1);
        // Node 3 covers {3,5} = 101, the best first pick.
        assert_eq!(r.seeds, vec![3]);
        assert_eq!(r.coverage_curve, vec![101.0]);
    }

    #[test]
    fn budgeted_respects_budget() {
        let costs = vec![3.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let r = infmax_tc_budgeted(&toy_cascades(), &costs, 2.0);
        let spent: f64 = r.seeds.iter().map(|&v| costs[v as usize]).sum();
        assert!(spent <= 2.0);
        assert!(!r.seeds.contains(&0), "node 0 unaffordable");
        assert!(!r.seeds.is_empty());
    }

    #[test]
    fn budgeted_single_set_guard() {
        // One expensive node covers everything; cheap ones cover almost
        // nothing. Ratio rule would burn budget on cheap crumbs first and
        // then be unable to afford the big set.
        let cascades: Vec<Vec<NodeId>> = vec![
            (0..10).collect(), // node 0: everything, cost 10
            vec![1],           // node 1: itself, cost 1
            vec![2],
        ];
        let costs = vec![10.0, 1.0, 1.0];
        let r = infmax_tc_budgeted(&cascades, &costs, 10.0);
        assert_eq!(r.seeds, vec![0], "guard picks the single big set");
        assert_eq!(r.coverage_curve, vec![10.0]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let r = infmax_tc(&[], 5, 0);
        assert!(r.seeds.is_empty());
        let r = infmax_tc(&[vec![0]], 5, 0);
        assert_eq!(r.seeds, vec![0]);
        assert_eq!(r.coverage_curve, vec![1.0]);
    }
}
