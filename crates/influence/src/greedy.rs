//! `InfMax_std`: greedy influence maximization (Kempe et al.).
//!
//! The objective `σ(S)` is monotone and submodular, so greedy selection of
//! the largest marginal gain achieves `(1 − 1/e)` of the optimum. Two
//! variants:
//!
//! * [`GreedyMode::Plain`] evaluates every candidate each iteration and
//!   can record the full sorted gain ranking — exactly what the paper's
//!   Figure 7 saturation study needs ("we need to run the standard greedy
//!   algorithm with no optimization at all");
//! * [`GreedyMode::Celf`] is the lazy-evaluation optimization (Leskovec
//!   et al.; the CELF++ implementation of Goyal et al. is what the paper
//!   runs): stale gains are upper bounds by submodularity, so most
//!   re-evaluations are skipped.
//!
//! Ties break toward the smaller node id in both variants, keeping them
//! seed-for-seed identical.

use crate::spread::SpreadOracle;
use soi_graph::NodeId;
use soi_index::CascadeIndex;
use soi_util::ckpt::{self, ByteReader, Checkpoint, KIND_GREEDY};
use soi_util::runtime::{Deadline, Outcome};
use soi_util::SoiError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::path::Path;

/// Which greedy implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GreedyMode {
    /// Exhaustive re-evaluation each iteration; optionally records gain
    /// rankings. `O(k · n)` oracle calls.
    Plain {
        /// Record the top-`capture_top` marginal gains (sorted descending)
        /// at every iteration; 0 disables recording.
        capture_top: usize,
    },
    /// CELF lazy evaluation. Seed-identical to `Plain` (modulo identical
    /// tie-breaking), far fewer oracle calls.
    Celf,
}

/// Output of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// Selected seeds in selection order.
    pub seeds: Vec<NodeId>,
    /// Estimated `σ(S_j)` after each of the `j = 1..=k` selections
    /// (on the oracle's world pool).
    pub spread_curve: Vec<f64>,
    /// For `Plain { capture_top > 0 }`: per iteration, the top marginal
    /// gains sorted descending (length ≤ `capture_top`). Empty otherwise.
    pub gain_rankings: Vec<Vec<f64>>,
}

/// Runs `InfMax_std` for `k` seeds over the index's sampled worlds.
pub fn infmax_std(index: &CascadeIndex, k: usize, mode: GreedyMode) -> GreedyResult {
    let _span = soi_obs::span("influence.greedy");
    let mut oracle = SpreadOracle::new(index);
    match mode {
        GreedyMode::Plain { capture_top } => plain(&mut oracle, k, capture_top),
        GreedyMode::Celf => celf(&mut oracle, k),
    }
}

fn plain(oracle: &mut SpreadOracle<'_>, k: usize, capture_top: usize) -> GreedyResult {
    let n = oracle.index().num_nodes();
    let k = k.min(n);
    let mut seeds = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);
    let mut rankings = Vec::new();
    let mut in_solution = vec![false; n];

    for _ in 0..k {
        let mut gains: Vec<(f64, NodeId)> = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            if !in_solution[v as usize] {
                gains.push((oracle.marginal_gain(v), v));
            }
        }
        // Descending by gain, ascending by id.
        gains.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        if capture_top > 0 {
            rankings.push(gains.iter().take(capture_top).map(|&(g, _)| g).collect());
        }
        let Some(&(_, best)) = gains.first() else {
            break;
        };
        in_solution[best as usize] = true;
        oracle.commit(best);
        seeds.push(best);
        curve.push(oracle.current_spread());
    }
    GreedyResult {
        seeds,
        spread_curve: curve,
        gain_rankings: rankings,
    }
}

/// Heap entry ordered by (gain desc, node asc) — `BinaryHeap` is a
/// max-heap, so we invert the node ordering.
#[derive(Debug)]
struct CelfEntry {
    gain: f64,
    node: NodeId,
    /// Iteration at which `gain` was computed.
    round: usize,
}

impl PartialEq for CelfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for CelfEntry {}
impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then(other.node.cmp(&self.node))
    }
}

fn celf(oracle: &mut SpreadOracle<'_>, k: usize) -> GreedyResult {
    let n = oracle.index().num_nodes();
    let k = k.min(n);
    let mut heap: BinaryHeap<CelfEntry> = (0..n as NodeId)
        .map(|v| CelfEntry {
            gain: oracle.marginal_gain(v),
            node: v,
            round: 0,
        })
        .collect();
    let mut seeds = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);

    for round in 1..=k {
        loop {
            let Some(top) = heap.pop() else {
                return GreedyResult {
                    seeds,
                    spread_curve: curve,
                    gain_rankings: Vec::new(),
                };
            };
            if top.round == round {
                // Fresh this round: by submodularity every stale entry
                // below is also below its (upper-bound) stale gain, so this
                // is the true argmax.
                oracle.commit(top.node);
                seeds.push(top.node);
                curve.push(oracle.current_spread());
                break;
            }
            soi_obs::counter_add!("influence.celf_reevals", 1);
            let fresh = oracle.marginal_gain(top.node);
            heap.push(CelfEntry {
                gain: fresh,
                node: top.node,
                round,
            });
        }
    }
    GreedyResult {
        seeds,
        spread_curve: curve,
        gain_rankings: Vec::new(),
    }
}

/// Runtime options for [`infmax_celf_resumable`].
pub struct GreedyRunOpts<'a> {
    /// Cooperative deadline, ticked once per oracle evaluation.
    pub deadline: &'a Deadline,
    /// Checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<&'a Path>,
    /// Seeds committed between checkpoint writes (coerced to ≥ 1).
    pub checkpoint_every: usize,
    /// Resume from `checkpoint` when it exists (a fresh run otherwise).
    pub resume: bool,
}

/// Fingerprint pinning a greedy checkpoint to its run configuration.
fn greedy_config_fingerprint(k: usize) -> u64 {
    let mut h = soi_util::hash::Mix64Hasher::new();
    h.update_u64(u64::from(KIND_GREEDY));
    h.update_u64(k as u64);
    h.finish()
}

fn encode_greedy_payload(seeds: &[NodeId], curve: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + seeds.len() * 12);
    out.extend_from_slice(&(seeds.len() as u32).to_le_bytes());
    for (&s, &sigma) in seeds.iter().zip(curve) {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&sigma.to_bits().to_le_bytes());
    }
    out
}

fn decode_greedy_payload(
    c: &Checkpoint,
    num_nodes: usize,
) -> Result<(Vec<NodeId>, Vec<f64>), SoiError> {
    let mut r = ByteReader::new(&c.payload);
    let count = r.u32("seed count")? as usize;
    if count as u64 != c.done_units {
        return Err(SoiError::invalid(format!(
            "greedy checkpoint: payload holds {count} seeds but header claims {}",
            c.done_units
        )));
    }
    let mut seeds = Vec::with_capacity(count);
    let mut curve = Vec::with_capacity(count);
    for _ in 0..count {
        let s = r.u32("seed")?;
        if s as usize >= num_nodes {
            return Err(SoiError::invalid(format!(
                "greedy checkpoint: seed {s} out of range for {num_nodes} nodes"
            )));
        }
        seeds.push(s);
        curve.push(r.f64("spread")?);
    }
    r.expect_end("greedy checkpoint payload")?;
    Ok((seeds, curve))
}

/// CELF with deadlines and checkpoint/resume — the fault-tolerant form of
/// [`infmax_std`] with [`GreedyMode::Celf`].
///
/// Seed selection is checkpointed after every `checkpoint_every` commits
/// (kind-2 checkpoint files pinned to the index fingerprint and `k`).
/// Resuming restarts CELF from the committed prefix: gains are
/// re-evaluated against that prefix, and since ties break identically
/// (gain descending, node id ascending), the resumed run commits exactly
/// the seeds an uninterrupted run would — outputs are byte-identical.
///
/// The deadline is ticked once per oracle evaluation; on expiry the
/// committed prefix comes back as [`Outcome::Partial`] with
/// `done = seeds committed`, `total = k`. A corrupt or mismatched
/// checkpoint is a hard error (never silently ignored).
pub fn infmax_celf_resumable(
    index: &CascadeIndex,
    k: usize,
    opts: &GreedyRunOpts<'_>,
) -> Result<Outcome<GreedyResult>, SoiError> {
    let _span = soi_obs::span("influence.greedy");
    let n = index.num_nodes();
    let k = k.min(n);
    let graph_fp = index.fingerprint();
    let config_fp = greedy_config_fingerprint(k);
    let every = opts.checkpoint_every.max(1);
    let deadline = opts.deadline;

    let mut seeds: Vec<NodeId> = Vec::new();
    let mut curve: Vec<f64> = Vec::new();
    if opts.resume {
        if let Some(path) = opts.checkpoint {
            if path.exists() {
                let c = ckpt::read_checkpoint(path, KIND_GREEDY)?;
                c.validate(KIND_GREEDY, graph_fp, config_fp)?;
                (seeds, curve) = decode_greedy_payload(&c, n)?;
                if seeds.len() > k {
                    return Err(SoiError::invalid(format!(
                        "greedy checkpoint holds {} seeds for a k={k} run",
                        seeds.len()
                    )));
                }
                soi_obs::counter_add!("influence.greedy_resumes", 1);
                soi_obs::event!(
                    soi_obs::Level::Info,
                    "resumed greedy selection: {} of {k} seeds from checkpoint",
                    seeds.len()
                );
            }
        }
    }

    let mut oracle = SpreadOracle::new(index);
    let mut in_solution = vec![false; n];
    for &s in &seeds {
        oracle.commit(s);
        in_solution[s as usize] = true;
    }

    let result = |seeds: Vec<NodeId>, curve: Vec<f64>| GreedyResult {
        seeds,
        spread_curve: curve,
        gain_rankings: Vec::new(),
    };

    // Initial heap: gains w.r.t. the committed prefix, marked stale (the
    // same shape a from-scratch CELF starts with), so the round loop
    // re-verifies the top exactly like an uninterrupted run.
    let base = seeds.len();
    let mut heap: BinaryHeap<CelfEntry> = BinaryHeap::with_capacity(n - base);
    for v in 0..n as NodeId {
        if in_solution[v as usize] {
            continue;
        }
        if !deadline.tick(1) {
            return Ok(deadline.outcome(result(seeds, curve), base as u64, k as u64));
        }
        heap.push(CelfEntry {
            gain: oracle.marginal_gain(v),
            node: v,
            round: base,
        });
    }

    for round in base + 1..=k {
        soi_util::failpoint!("greedy.round");
        loop {
            let Some(top) = heap.pop() else {
                return Ok(Outcome::Completed(result(seeds, curve)));
            };
            if top.round == round {
                oracle.commit(top.node);
                seeds.push(top.node);
                curve.push(oracle.current_spread());
                break;
            }
            if !deadline.tick(1) {
                let done = seeds.len() as u64;
                return Ok(deadline.outcome(result(seeds, curve), done, k as u64));
            }
            soi_obs::counter_add!("influence.celf_reevals", 1);
            let fresh = oracle.marginal_gain(top.node);
            heap.push(CelfEntry {
                gain: fresh,
                node: top.node,
                round,
            });
        }
        if let Some(path) = opts.checkpoint {
            if seeds.len().is_multiple_of(every) || seeds.len() == k {
                ckpt::write_checkpoint(
                    path,
                    &Checkpoint {
                        kind: KIND_GREEDY,
                        graph_fingerprint: graph_fp,
                        config_fingerprint: config_fp,
                        total_units: k as u64,
                        done_units: seeds.len() as u64,
                        payload: encode_greedy_payload(&seeds, &curve),
                    },
                )?;
                soi_obs::counter_add!("influence.greedy_checkpoints", 1);
            }
        }
    }
    let done = seeds.len() as u64;
    Ok(deadline.outcome(result(seeds, curve), done, k as u64))
}

/// CELF++ (Goyal, Lu & Lakshmanan, WWW 2011) — the optimization of the
/// implementation the paper actually runs for `InfMax_std` ([18]).
///
/// Beyond CELF's lazy upper bounds, each evaluation of a node `v` also
/// computes the marginal gain of `v` w.r.t. `S ∪ {cur_best}` — the likely
/// next seed set — so when `cur_best` is indeed committed, `v`'s cached
/// gain is already exact for the next round and a full re-evaluation is
/// skipped. Seed-for-seed identical to CELF/plain greedy (same oracle,
/// same tie-breaks); only the number of oracle calls drops.
pub fn infmax_celfpp(index: &CascadeIndex, k: usize) -> GreedyResult {
    let _span = soi_obs::span("influence.greedy");
    let mut oracle = SpreadOracle::new(index);
    let n = oracle.index().num_nodes();
    let k = k.min(n);

    #[derive(Debug)]
    struct Entry {
        gain: f64,
        /// Gain w.r.t. `S ∪ {best_at_eval}`, if computed.
        gain_after_best: Option<(NodeId, f64)>,
        node: NodeId,
        round: usize,
    }

    // Initial pass: gains w.r.t. the empty set; no "previous best" yet
    // except the running best of the pass itself.
    let mut entries: Vec<Entry> = Vec::with_capacity(n);
    let mut cur_best: Option<(f64, NodeId)> = None;
    for v in 0..n as NodeId {
        let gain = oracle.marginal_gain(v);
        entries.push(Entry {
            gain,
            gain_after_best: None,
            node: v,
            round: 0,
        });
        if cur_best.is_none_or(|(g, b)| gain > g || (gain == g && v < b)) {
            cur_best = Some((gain, v));
        }
    }
    // Max-heap keyed like CELF (gain desc, node asc).
    use std::collections::BinaryHeap;
    struct HeapEntry(Entry);
    impl PartialEq for HeapEntry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for HeapEntry {}
    impl PartialOrd for HeapEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for HeapEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0
                .gain
                .total_cmp(&other.0.gain)
                .then(other.0.node.cmp(&self.0.node))
        }
    }
    let mut heap: BinaryHeap<HeapEntry> = entries.into_iter().map(HeapEntry).collect();

    let mut seeds = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);
    let mut last_committed: Option<NodeId> = None;
    for round in 1..=k {
        loop {
            let Some(HeapEntry(mut top)) = heap.pop() else {
                return GreedyResult {
                    seeds,
                    spread_curve: curve,
                    gain_rankings: Vec::new(),
                };
            };
            if top.round == round {
                oracle.commit(top.node);
                last_committed = Some(top.node);
                seeds.push(top.node);
                curve.push(oracle.current_spread());
                break;
            }
            // CELF++ shortcut: if this node's gain-after-best was taken
            // against exactly the node that was committed last round, it
            // is already the fresh gain.
            let fresh = match top.gain_after_best {
                Some((b, g)) if top.round + 1 == round && Some(b) == last_committed => {
                    soi_obs::counter_add!("influence.celfpp_shortcut_hits", 1);
                    g
                }
                _ => {
                    soi_obs::counter_add!("influence.celf_reevals", 1);
                    oracle.marginal_gain(top.node)
                }
            };
            top.gain = fresh;
            // Record gain w.r.t. S ∪ {current heap best} for next round:
            // approximate "current best" by the top of the heap.
            top.gain_after_best = heap.peek().map(|best| {
                let b = best.0.node;
                // gain(v | S ∪ {b}) = |cascade(v) \ (covered ∪ cascade(b))|
                // — evaluating it exactly costs another oracle call, which
                // defeats the purpose; CELF++ evaluates both in one pass.
                // Our oracle exposes that as a paired evaluation:
                (b, oracle.marginal_gain_after(top.node, b))
            });
            top.round = round;
            heap.push(HeapEntry(top));
        }
    }
    GreedyResult {
        seeds,
        spread_curve: curve,
        gain_rankings: Vec::new(),
    }
}

/// Configuration for the paper-faithful Monte-Carlo greedy
/// ([`infmax_std_mc`]).
#[derive(Clone, Copy, Debug)]
pub struct McGreedyConfig {
    /// MC simulations per spread evaluation (the paper uses 1000).
    pub samples: usize,
    /// Master seed; every evaluation draws a fresh sub-seeded sample.
    pub seed: u64,
    /// Threads for the initial singleton-spread pass (0 = all cores).
    pub threads: usize,
    /// CELF re-evaluation budget per round. In the saturation regime the
    /// noisy heap churns; after this many fresh evaluations the best
    /// fresh-evaluated candidate is committed (the standard practical
    /// cap — selection among statistically indistinguishable candidates
    /// is effectively arbitrary either way, which is exactly the
    /// phenomenon §6.4 studies).
    pub max_reevals_per_round: usize,
}

impl Default for McGreedyConfig {
    fn default() -> Self {
        McGreedyConfig {
            samples: 1000,
            seed: 0,
            threads: 0,
            max_reevals_per_round: 30,
        }
    }
}

/// `InfMax_std` exactly as the paper runs it: CELF over *fresh
/// Monte-Carlo estimates* of the expected spread (Kempe et al.'s
/// estimator inside Goyal et al.'s CELF++-style lazy greedy).
///
/// Unlike [`infmax_std`], which shares one live-edge world pool across
/// the whole run (zero in-pool evaluation noise — a stronger, more modern
/// baseline), every evaluation here re-simulates with an independent
/// seed. The per-evaluation noise is what makes the standard method
/// saturate at large `k` (§6.4 / Figure 7): once true marginal-gain
/// differences fall below the noise floor, its selections are effectively
/// random among the top candidates.
pub fn infmax_std_mc(pg: &soi_graph::ProbGraph, k: usize, config: &McGreedyConfig) -> GreedyResult {
    use soi_sampling::estimate_spread;
    use soi_util::rng::derive_seed;
    let _span = soi_obs::span("influence.mc_greedy");
    let n = pg.num_nodes();
    let k = k.min(n);
    let eval_counter = std::sync::atomic::AtomicU64::new(0);
    let fresh_seed = || {
        derive_seed(
            config.seed,
            eval_counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        )
    };

    // Initial pass: sigma({v}) for every node, parallel.
    let mut initial: Vec<f64> = vec![0.0; n];
    soi_util::pool::for_each_indexed(&mut initial, config.threads, |v, slot| {
        soi_obs::counter_add!("influence.mc_spread_evals", 1);
        *slot = estimate_spread(pg, &[v as NodeId], config.samples, fresh_seed());
    });

    let mut heap: BinaryHeap<CelfEntry> = initial
        .into_iter()
        .enumerate()
        .map(|(v, gain)| CelfEntry {
            gain,
            node: v as NodeId,
            round: 0,
        })
        .collect();

    let cap = config.max_reevals_per_round.max(1);
    let mut seeds: Vec<NodeId> = Vec::with_capacity(k);
    let mut curve = Vec::with_capacity(k);
    let mut sigma_s = 0.0f64;
    for round in 1..=k {
        let mut reevals = 0usize;
        let committed: Option<CelfEntry> = loop {
            let Some(top) = heap.pop() else { break None };
            if top.round == round {
                // Freshly evaluated this round and still on top: commit.
                break Some(top);
            }
            if reevals >= cap {
                // Budget exhausted: commit the best fresh entry in the
                // heap (at least one exists since cap >= 1). O(n) scan +
                // rebuild, once per capped round.
                heap.push(top);
                let best = heap
                    .iter()
                    .filter(|e| e.round == round)
                    .max_by(|a, b| a.cmp(b))
                    .map(|e| (e.node, e.gain))
                    // `top` was just pushed back with `round == round`,
                    // so the filter matches at least one entry.
                    // xtask-allow: panic_policy
                    .expect("cap >= 1 guarantees a fresh entry");
                let rest: Vec<CelfEntry> = heap
                    .drain()
                    .filter(|e| !(e.round == round && e.node == best.0))
                    .collect();
                heap = rest.into();
                break Some(CelfEntry {
                    gain: best.1,
                    node: best.0,
                    round,
                });
            }
            // Fresh evaluation of the marginal gain.
            soi_obs::counter_add!("influence.celf_reevals", 1);
            soi_obs::counter_add!("influence.mc_spread_evals", 1);
            let mut with_v: Vec<NodeId> = seeds.clone();
            with_v.push(top.node);
            let gain =
                (estimate_spread(pg, &with_v, config.samples, fresh_seed()) - sigma_s).max(0.0);
            reevals += 1;
            heap.push(CelfEntry {
                gain,
                node: top.node,
                round,
            });
        };
        let Some(chosen) = committed else { break };
        sigma_s += chosen.gain;
        seeds.push(chosen.node);
        curve.push(sigma_s);
    }
    GreedyResult {
        seeds,
        spread_curve: curve,
        gain_rankings: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder, ProbGraph};
    use soi_index::IndexConfig;

    fn index_for(pg: &ProbGraph, worlds: usize, seed: u64) -> CascadeIndex {
        CascadeIndex::build(
            pg,
            IndexConfig {
                num_worlds: worlds,
                seed,
                ..IndexConfig::default()
            },
        )
    }

    #[test]
    fn picks_the_obvious_hub_first() {
        // Star with strong arcs: node 0 is the only sensible first seed.
        let mut b = GraphBuilder::new(8);
        for leaf in 1..8 {
            b.add_weighted_edge(0, leaf, 0.9);
        }
        let pg = b.build_prob().unwrap();
        let index = index_for(&pg, 64, 1);
        let r = infmax_std(&index, 3, GreedyMode::Celf);
        assert_eq!(r.seeds[0], 0);
        assert_eq!(r.seeds.len(), 3);
    }

    #[test]
    fn plain_and_celf_agree() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(7);
        let pg = ProbGraph::fixed(gen::gnm(40, 200, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 100, 2);
        let plain = infmax_std(&index, 8, GreedyMode::Plain { capture_top: 0 });
        let celf = infmax_std(&index, 8, GreedyMode::Celf);
        assert_eq!(plain.seeds, celf.seeds);
        for (a, b) in plain.spread_curve.iter().zip(&celf.spread_curve) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn spread_curve_is_monotone() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(8);
        let pg = ProbGraph::fixed(gen::gnm(50, 300, &mut rng), 0.15).unwrap();
        let index = index_for(&pg, 64, 3);
        let r = infmax_std(&index, 10, GreedyMode::Celf);
        assert!(r.spread_curve.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        assert!(r.spread_curve[0] >= 1.0, "a seed spreads at least itself");
    }

    #[test]
    fn rankings_are_captured_and_sorted() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(9);
        let pg = ProbGraph::fixed(gen::gnm(30, 120, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 32, 4);
        let r = infmax_std(&index, 5, GreedyMode::Plain { capture_top: 10 });
        assert_eq!(r.gain_rankings.len(), 5);
        for ranking in &r.gain_rankings {
            assert_eq!(ranking.len(), 10);
            assert!(ranking.windows(2).all(|w| w[0] >= w[1]), "sorted desc");
        }
        // First iteration's best gain matches the realized first spread.
        assert!((r.gain_rankings[0][0] - r.spread_curve[0]).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let index = index_for(&pg, 16, 5);
        let r = infmax_std(&index, 100, GreedyMode::Celf);
        assert_eq!(r.seeds.len(), 4);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4, "no duplicate seeds");
    }

    #[test]
    fn celfpp_matches_celf_seed_for_seed() {
        for seed in [3u64, 7, 11] {
            let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(seed);
            let pg = ProbGraph::fixed(gen::gnm(50, 250, &mut rng), 0.2).unwrap();
            let index = index_for(&pg, 100, seed ^ 0xAA);
            let celf = infmax_std(&index, 8, GreedyMode::Celf);
            let celfpp = infmax_celfpp(&index, 8);
            assert_eq!(celf.seeds, celfpp.seeds, "seed {seed}");
            for (a, b) in celf.spread_curve.iter().zip(&celfpp.spread_curve) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn celfpp_clamps_k() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let index = index_for(&pg, 16, 1);
        let r = infmax_celfpp(&index, 100);
        assert_eq!(r.seeds.len(), 4);
    }

    #[test]
    fn mc_greedy_picks_the_hub_and_is_deterministic() {
        let mut b = GraphBuilder::new(8);
        for leaf in 1..8 {
            b.add_weighted_edge(0, leaf, 0.9);
        }
        let pg = b.build_prob().unwrap();
        let cfg = McGreedyConfig {
            samples: 300,
            seed: 5,
            threads: 1,
            max_reevals_per_round: 10,
        };
        let a = infmax_std_mc(&pg, 3, &cfg);
        assert_eq!(a.seeds[0], 0, "hub first");
        assert_eq!(a.seeds.len(), 3);
        assert!(a.spread_curve.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        let b2 = infmax_std_mc(&pg, 3, &cfg);
        assert_eq!(a.seeds, b2.seeds);
        assert_eq!(a.spread_curve, b2.spread_curve);
        // Parallel initial pass gives the same result.
        let c = infmax_std_mc(&pg, 3, &McGreedyConfig { threads: 4, ..cfg });
        assert_eq!(a.seeds, c.seeds);
    }

    #[test]
    fn mc_greedy_tracks_pool_greedy_on_clear_signal() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(11);
        let pg = ProbGraph::fixed(gen::barabasi_albert(100, 2, true, &mut rng), 0.3).unwrap();
        let index = index_for(&pg, 256, 12);
        let pool = infmax_std(&index, 5, GreedyMode::Celf);
        let mc = infmax_std_mc(
            &pg,
            5,
            &McGreedyConfig {
                samples: 2000,
                seed: 13,
                threads: 0,
                max_reevals_per_round: 100,
            },
        );
        // With low noise both variants find seed sets of equivalent
        // quality (not necessarily identical nodes).
        let sigma_pool = soi_sampling::estimate_spread(&pg, &pool.seeds, 5000, 14);
        let sigma_mc = soi_sampling::estimate_spread(&pg, &mc.seeds, 5000, 14);
        assert!(
            (sigma_pool - sigma_mc).abs() < 0.1 * sigma_pool,
            "pool {sigma_pool} vs mc {sigma_mc}"
        );
    }

    #[test]
    fn mc_greedy_clamps_k_and_handles_tiny_budget() {
        let pg = ProbGraph::fixed(gen::path(4), 0.5).unwrap();
        let r = infmax_std_mc(
            &pg,
            10,
            &McGreedyConfig {
                samples: 50,
                seed: 1,
                threads: 1,
                max_reevals_per_round: 0, // coerced to >= 1
            },
        );
        assert_eq!(r.seeds.len(), 4);
        let mut s = r.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 4, "no duplicates even under the eval cap");
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("soi-greedy-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn resumable_matches_plain_celf_without_interruption() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(21);
        let pg = ProbGraph::fixed(gen::gnm(40, 200, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 64, 21);
        let plain = infmax_std(&index, 6, GreedyMode::Celf);
        let out = infmax_celf_resumable(
            &index,
            6,
            &GreedyRunOpts {
                deadline: &Deadline::unlimited(),
                checkpoint: None,
                checkpoint_every: 1,
                resume: false,
            },
        )
        .unwrap();
        assert!(out.is_complete());
        let r = out.value();
        assert_eq!(r.seeds, plain.seeds);
        assert_eq!(r.spread_curve, plain.spread_curve);
    }

    #[test]
    fn deadline_yields_a_partial_seed_prefix() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(22);
        let pg = ProbGraph::fixed(gen::gnm(40, 200, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 64, 22);
        let full = infmax_std(&index, 6, GreedyMode::Celf);
        // Enough budget for the initial pass plus a couple of rounds.
        let d = Deadline::ticks(index.num_nodes() as u64 + 4);
        let out = infmax_celf_resumable(
            &index,
            6,
            &GreedyRunOpts {
                deadline: &d,
                checkpoint: None,
                checkpoint_every: 1,
                resume: false,
            },
        )
        .unwrap();
        assert!(!out.is_complete());
        let progress = out.progress().unwrap();
        assert_eq!(progress.total, 6);
        assert!(progress.done < 6);
        assert!(progress.fraction() < 1.0);
        let r = out.value();
        assert_eq!(
            r.seeds[..],
            full.seeds[..r.seeds.len()],
            "prefix of full run"
        );
    }

    #[test]
    fn interrupted_run_resumes_to_identical_output() {
        let _g = soi_util::failpoint::test_guard();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(23);
        let pg = ProbGraph::fixed(gen::gnm(40, 200, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 64, 23);
        let full = infmax_std(&index, 6, GreedyMode::Celf);
        let dir = tmp_dir("resume");
        let ckpt_path = dir.join("greedy.ckpt");

        // Inject a fault on the 4th round: rounds 1-3 commit (and
        // checkpoint), then the run dies.
        soi_util::failpoint::install("greedy.round=error@4").unwrap();
        let unlimited = Deadline::unlimited();
        let opts = |resume| GreedyRunOpts {
            deadline: &unlimited,
            checkpoint: Some(&ckpt_path),
            checkpoint_every: 1,
            resume,
        };
        let err = infmax_celf_resumable(&index, 6, &opts(false)).unwrap_err();
        assert!(matches!(err, SoiError::Fault { .. }), "{err:?}");
        soi_util::failpoint::clear();

        // Resume: identical seeds and spread curve to an uninterrupted run.
        let resumed = infmax_celf_resumable(&index, 6, &opts(true)).unwrap();
        assert!(resumed.is_complete());
        let r = resumed.value();
        assert_eq!(r.seeds, full.seeds);
        assert_eq!(r.spread_curve, full.spread_curve);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_mismatches_are_rejected() {
        let _g = soi_util::failpoint::test_guard();
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(24);
        let pg = ProbGraph::fixed(gen::gnm(30, 150, &mut rng), 0.2).unwrap();
        let index = index_for(&pg, 32, 24);
        let dir = tmp_dir("mismatch");
        let ckpt_path = dir.join("greedy.ckpt");
        let run = |k, resume| {
            infmax_celf_resumable(
                &index,
                k,
                &GreedyRunOpts {
                    deadline: &Deadline::unlimited(),
                    checkpoint: Some(&ckpt_path),
                    checkpoint_every: 1,
                    resume,
                },
            )
        };
        run(4, false).unwrap();
        // Different k: the config fingerprint no longer matches.
        assert!(matches!(
            run(5, true).unwrap_err(),
            SoiError::CkptMismatch {
                field: "config_fingerprint",
                ..
            }
        ));
        // Different index: the graph fingerprint no longer matches.
        let other = index_for(&pg, 32, 99);
        assert!(matches!(
            infmax_celf_resumable(
                &other,
                4,
                &GreedyRunOpts {
                    deadline: &Deadline::unlimited(),
                    checkpoint: Some(&ckpt_path),
                    checkpoint_every: 1,
                    resume: true,
                },
            )
            .unwrap_err(),
            SoiError::CkptMismatch {
                field: "graph_fingerprint",
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn greedy_beats_random_seeds() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(10);
        let pg = ProbGraph::fixed(gen::barabasi_albert(120, 2, true, &mut rng), 0.3).unwrap();
        let index = index_for(&pg, 64, 6);
        let r = infmax_std(&index, 5, GreedyMode::Celf);
        let mut oracle = SpreadOracle::new(&index);
        let greedy_spread = *r.spread_curve.last().unwrap();
        let random_spread = oracle.spread_of(&[111, 112, 113, 114, 115]);
        assert!(
            greedy_spread > random_spread,
            "greedy {greedy_spread} vs random {random_spread}"
        );
    }
}
