//! Accuracy harness for the bottom-k sketch backend (satellite of the
//! `soi-sketch` tentpole; see `docs/SERVING.md` §Backends).
//!
//! Two obligations, each checked against an independent ground truth:
//!
//! 1. **Spread estimates vs the exact oracle.** On graphs small enough
//!    for `exact_spread_bruteforce` (≤ 20 edges, all 2^m worlds
//!    enumerated), the sketch estimate must land within a *declared*
//!    relative ε of the exact influence spread. Two regimes:
//!    * exhaustive sketches (k ≥ ℓ·n pairs): the only error is world
//!      sampling, ε = 0.05 at ℓ = 2048;
//!    * saturated sketches (k ≪ pair count): bottom-k estimation error
//!      ~ 1/√(k−2) stacks on top, ε = 2/√(k−2) (two sigma).
//! 2. **Seed quality vs CELF.** On a 100-node fixture the SKIM-style
//!    sketch selection must pick seed sets whose Monte-Carlo spread is
//!    ≥ 90% of CELF's (rank agreement, not seed-identity — distinct
//!    estimators break ties differently).

use soi_graph::{gen, GraphBuilder, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{infmax_std, GreedyMode};
use soi_sampling::spread::exact_spread_bruteforce;
use soi_sketch::{select_seeds, ReachSketches, SketchConfig};
use soi_util::rng::Xoshiro256pp;
use soi_util::Deadline;

fn build(pg: &ProbGraph, worlds: usize, k: usize, seed: u64) -> ReachSketches {
    ReachSketches::build(
        pg,
        SketchConfig {
            num_worlds: worlds,
            k,
            seed,
            threads: 1,
        },
    )
}

/// Tiny graphs within the brute-force budget (≤ 20 edges), spanning
/// chains, fans, and a random digraph.
fn tiny_fixtures() -> Vec<(&'static str, ProbGraph)> {
    let mut rng = Xoshiro256pp::seed_from_u64(41);
    vec![
        ("path-6", ProbGraph::fixed(gen::path(6), 0.6).unwrap()),
        ("star-8", ProbGraph::fixed(gen::star(8), 0.4).unwrap()),
        (
            "gnm-8-18",
            ProbGraph::fixed(gen::gnm(8, 18, &mut rng), 0.5).unwrap(),
        ),
        ("cycle-5", {
            let mut b = GraphBuilder::new(5);
            for v in 0..5u32 {
                b.add_edge(v, (v + 1) % 5);
            }
            ProbGraph::fixed(b.build().unwrap(), 0.7).unwrap()
        }),
    ]
}

/// Seed sets probed per fixture: singletons plus a pair and a triple.
fn seed_sets(n: usize) -> Vec<Vec<NodeId>> {
    let mut sets: Vec<Vec<NodeId>> = (0..n as NodeId).map(|v| vec![v]).collect();
    sets.push(vec![0, (n / 2) as NodeId]);
    sets.push(vec![0, 1, (n - 1) as NodeId]);
    sets
}

#[test]
fn exhaustive_sketches_match_the_exact_oracle_within_declared_epsilon() {
    // k = 4096 exceeds ℓ·n for every fixture, so sketches are exact per
    // sampled world and the declared ε covers world sampling alone.
    const WORLDS: usize = 2048;
    const EPS: f64 = 0.05;
    for (name, pg) in tiny_fixtures() {
        let sk = build(&pg, WORLDS, 4096, 9);
        for seeds in seed_sets(pg.num_nodes()) {
            let exact = exact_spread_bruteforce(&pg, &seeds);
            let est = sk.set_spread(&seeds);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= EPS,
                "{name} seeds {seeds:?}: sketch {est:.4} vs exact {exact:.4} \
                 (rel {rel:.4} > ε {EPS})"
            );
        }
    }
}

#[test]
fn saturated_sketches_stay_within_the_bottom_k_error_bound() {
    // Small k forces the (k−1)/τ estimator on the larger fixtures;
    // declared ε = 2/√(k−2) on top of the world-sampling slack.
    const WORLDS: usize = 2048;
    const K: usize = 64;
    let eps = 2.0 / ((K as f64) - 2.0).sqrt() + 0.05;
    for (name, pg) in tiny_fixtures() {
        let sk = build(&pg, WORLDS, K, 9);
        for seeds in seed_sets(pg.num_nodes()) {
            let exact = exact_spread_bruteforce(&pg, &seeds);
            let est = sk.set_spread(&seeds);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel <= eps,
                "{name} seeds {seeds:?}: sketch {est:.4} vs exact {exact:.4} \
                 (rel {rel:.4} > ε {eps:.4})"
            );
        }
    }
}

#[test]
fn sketch_selection_agrees_with_celf_on_a_100_node_fixture() {
    const K_SEEDS: usize = 8;
    const WORLDS: usize = 256;
    const MC_SAMPLES: usize = 2000;
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let pg = ProbGraph::fixed(gen::barabasi_albert(100, 2, true, &mut rng), 0.15).unwrap();

    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: WORLDS,
            seed: 5,
            transitive_reduction: true,
            threads: 1,
        },
    );
    let celf = infmax_std(&index, K_SEEDS, GreedyMode::Celf);

    let sk = build(&pg, WORLDS, 64, 5);
    let picked = select_seeds(&pg, &sk, K_SEEDS, &Deadline::unlimited()).value();
    assert_eq!(picked.seeds.len(), K_SEEDS);

    // Rank agreement: judged on an independent Monte-Carlo estimator so
    // neither backend grades its own homework.
    let celf_spread = soi_sampling::estimate_spread(&pg, &celf.seeds, MC_SAMPLES, 99);
    let sketch_spread = soi_sampling::estimate_spread(&pg, &picked.seeds, MC_SAMPLES, 99);
    assert!(
        sketch_spread >= 0.9 * celf_spread,
        "sketch seeds {:?} (σ≈{sketch_spread:.2}) fall below 90% of CELF \
         seeds {:?} (σ≈{celf_spread:.2})",
        picked.seeds,
        celf.seeds
    );

    // Rank agreement at position 1: the sketch's opening pick must be
    // as influential (on the independent estimator) as CELF's. Literal
    // seed identity is NOT required — after the first pick, equally good
    // submodular selections diverge freely.
    let celf_first = soi_sampling::estimate_spread(&pg, &celf.seeds[..1], MC_SAMPLES, 99);
    let sketch_first = soi_sampling::estimate_spread(&pg, &picked.seeds[..1], MC_SAMPLES, 99);
    assert!(
        sketch_first >= 0.9 * celf_first,
        "sketch first seed {} (σ≈{sketch_first:.2}) far weaker than CELF's {} \
         (σ≈{celf_first:.2})",
        picked.seeds[0],
        celf.seeds[0]
    );
}
