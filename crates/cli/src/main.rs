//! `soi` — the command-line face of the spheres-of-influence toolkit.
//!
//! ```text
//! soi generate --model ba --nodes 1000 --prob wc --out net.tsv
//! soi stats net.tsv
//! soi sphere net.tsv --source 42
//! soi spheres net.tsv --out spheres.tsv
//! soi infmax net.tsv --k 20 --method tc
//! soi reliability net.tsv --source 0 --target 7
//! soi learn graph.tsv log.tsv --method saito --out learned.tsv
//! ```
//!
//! Graph files are the workspace's TSV edge-list format
//! (`source<TAB>target<TAB>probability`, `# nodes: N` header); log files
//! are `user<TAB>item<TAB>time` lines.
//!
//! Exit codes (see `docs/ROBUSTNESS.md`): 0 complete; 1 runtime failure;
//! 2 usage error (usage text on stderr); 3 deadline expired with partial,
//! resumable output.

mod commands;

use commands::RunStatus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match commands::dispatch(&args, &mut std::io::stdout().lock()) {
        Ok(RunStatus::Complete) => 0,
        Ok(RunStatus::Partial { fraction }) => {
            eprintln!(
                "partial: {:.1}% complete (deadline expired or responses lost; \
                 interrupted pipelines re-run with --resume)",
                fraction * 100.0
            );
            3
        }
        Err(e) if e.is_usage() => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            2
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}
