//! `soi` — the command-line face of the spheres-of-influence toolkit.
//!
//! ```text
//! soi generate --model ba --nodes 1000 --prob wc --out net.tsv
//! soi stats net.tsv
//! soi sphere net.tsv --source 42
//! soi spheres net.tsv --out spheres.tsv
//! soi infmax net.tsv --k 20 --method tc
//! soi reliability net.tsv --source 0 --target 7
//! soi learn graph.tsv log.tsv --method saito --out learned.tsv
//! ```
//!
//! Graph files are the workspace's TSV edge-list format
//! (`source<TAB>target<TAB>probability`, `# nodes: N` header); log files
//! are `user<TAB>item<TAB>time` lines.

mod commands;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args, &mut std::io::stdout().lock()) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
    }
}
