//! Subcommand implementations. Everything writes to a supplied
//! `Write` so the tests drive commands end-to-end in memory.

use soi_core::{typical_cascade, TypicalCascadeConfig};
use soi_graph::{gen, io as gio, stats, DiGraph, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{
    degree_discount_seeds, high_degree_seeds, infmax_ris, infmax_std, infmax_std_mc, infmax_tc,
    pagerank_seeds, random_seeds, GreedyMode, McGreedyConfig,
};
use soi_jaccard::median::MedianConfig;
use soi_problog::{
    learn_goyal, learn_goyal_jaccard, learn_saito, to_prob_graph, Action, ActionLog, SaitoConfig,
};
use soi_util::rng::Xoshiro256pp;
use std::collections::HashMap;
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: soi <command> [options]

commands:
  generate   --model ba|gnm|ws|powerlaw --nodes N [--m K] [--edges M]
             [--prob wc|fixed:P|tri] [--seed S] [--undirected] --out FILE
  stats      GRAPH
  sphere     GRAPH --source V [--samples N] [--seed S]
  spheres    GRAPH [--samples N] [--seed S] [--threads T] --out FILE
  infmax     GRAPH --k K [--method tc|greedy|mc|ris|degree|degree-discount|
             pagerank|random] [--samples N] [--seed S]
  reliability GRAPH --source V [--target W] [--eta P] [--samples N] [--seed S]
  learn      GRAPH LOG [--method saito|goyal|goyal-jaccard] [--lag L]
             [--min-prob P] --out FILE

global options (valid on every command):
  --trace off|error|warn|info|debug|trace   event-log verbosity (default off);
             info and up also prints a per-phase timing summary on exit
  --metrics-out FILE   write a JSONL run report (counters, histograms,
             span timings) when the command finishes

graph files: TSV edge lists (`u<TAB>v<TAB>p`, `# nodes: N` header);
log files: `user<TAB>item<TAB>time` lines.";

/// A minimal `--flag value` option bag with positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], switch_names: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switch_names.contains(&name) {
                    switches.push(name.to_string());
                } else {
                    let v = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.insert(name.to_string(), v.clone());
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts {
            positional,
            flags,
            switches,
        })
    }

    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|e| format!("--{name}: {e}")),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)?
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }
}

/// Observability options shared by every subcommand, pulled out of the
/// argument list before routing.
struct ObsOpts {
    trace: Option<soi_obs::Level>,
    metrics_out: Option<String>,
}

impl ObsOpts {
    /// Strips `--trace LEVEL` and `--metrics-out PATH` from `args`,
    /// returning the remaining command arguments alongside the parsed
    /// options.
    fn extract(args: &[String]) -> Result<(Vec<String>, ObsOpts), String> {
        let mut rest = Vec::with_capacity(args.len());
        let mut obs = ObsOpts {
            trace: None,
            metrics_out: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trace" => {
                    let v = it.next().ok_or("--trace needs a level")?;
                    obs.trace = soi_obs::event::parse_level(v)?;
                }
                "--metrics-out" => {
                    let v = it.next().ok_or("--metrics-out needs a path")?;
                    obs.metrics_out = Some(v.clone());
                }
                _ => rest.push(a.clone()),
            }
        }
        Ok((rest, obs))
    }

    /// Emits the run report / summary table after the command finished.
    /// The report's `config` records only the stripped command arguments,
    /// so two runs differing solely in `--metrics-out` path (or trace
    /// level) produce byte-identical masked reports.
    fn finish(&self, cmd_args: &[String]) -> Result<(), String> {
        if self.metrics_out.is_none() && self.trace < Some(soi_obs::Level::Info) {
            return Ok(());
        }
        let argv = cmd_args.join(" ");
        let config: Vec<(&str, &str)> = vec![("argv", argv.as_str())];
        let report = soi_obs::RunReport::collect(&config);
        if let Some(path) = &self.metrics_out {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            report
                .write_jsonl(&mut w)
                .map_err(|e| format!("{path}: {e}"))?;
        }
        if self.trace >= Some(soi_obs::Level::Info) {
            // Human-readable per-phase table on stderr, keeping stdout
            // reserved for the command's own output.
            let mut err = std::io::stderr().lock();
            report.write_summary(&mut err).ok();
        }
        Ok(())
    }
}

/// Routes `args` to a subcommand, writing human-readable output to `out`.
pub fn dispatch<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let (args, obs) = ObsOpts::extract(args)?;
    soi_obs::reset();
    soi_obs::event::set_max_level(obs.trace);
    let Some(cmd) = args.first() else {
        return Err("no command given".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "generate" => cmd_generate(rest, out),
        "stats" => cmd_stats(rest, out),
        "sphere" => cmd_sphere(rest, out),
        "spheres" => cmd_spheres(rest, out),
        "infmax" => cmd_infmax(rest, out),
        "reliability" => cmd_reliability(rest, out),
        "learn" => cmd_learn(rest, out),
        other => Err(format!("unknown command {other:?}")),
    }
    .and_then(|()| obs.finish(&args))
    .map_err(|e| format!("{cmd}: {e}"))
}

fn load_prob_graph(path: &str) -> Result<ProbGraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    match gio::read_graph(std::io::BufReader::new(file)).map_err(|e| e.to_string())? {
        gio::ParsedGraph::Probabilistic(pg) => Ok(pg),
        gio::ParsedGraph::Plain(_) => Err(format!(
            "{path}: plain edge list — probabilities required (use a 3-column file)"
        )),
    }
}

fn load_any_graph(path: &str) -> Result<DiGraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    match gio::read_graph(std::io::BufReader::new(file)).map_err(|e| e.to_string())? {
        gio::ParsedGraph::Probabilistic(pg) => Ok(pg.graph().clone()),
        gio::ParsedGraph::Plain(g) => Ok(g),
    }
}

fn cmd_generate<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &["undirected"])?;
    let model: String = opts.require("model")?;
    let nodes: usize = opts.require("nodes")?;
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let undirected = opts.has("undirected");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let topo = match model.as_str() {
        "ba" => {
            let m: usize = opts.get("m")?.unwrap_or(3);
            gen::barabasi_albert(nodes, m, !undirected, &mut rng)
        }
        "gnm" => {
            let edges: usize = opts.get("edges")?.unwrap_or(nodes * 4);
            gen::gnm(nodes, edges, &mut rng)
        }
        "ws" => {
            let k: usize = opts.get("m")?.unwrap_or(4);
            gen::watts_strogatz(nodes, k, 0.1, &mut rng)
        }
        "powerlaw" => {
            let maxd: usize = opts.get("m")?.unwrap_or(nodes / 10);
            gen::powerlaw_configuration(nodes, 2.0, maxd.max(2), &mut rng)
        }
        other => return Err(format!("unknown model {other:?} (ba|gnm|ws|powerlaw)")),
    };
    let prob: String = opts.get("prob")?.unwrap_or_else(|| "wc".to_string());
    let pg = if prob == "wc" {
        ProbGraph::weighted_cascade(topo)
    } else if prob == "tri" {
        ProbGraph::trivalency(topo, &mut rng)
    } else if let Some(p) = prob.strip_prefix("fixed:") {
        let p: f64 = p.parse().map_err(|e| format!("--prob fixed:P: {e}"))?;
        ProbGraph::fixed(topo, p).map_err(|e| e.to_string())?
    } else {
        return Err(format!("unknown --prob {prob:?} (wc|fixed:P|tri)"));
    };
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    gio::write_prob_graph(&pg, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "wrote {} nodes, {} arcs ({model}, {prob}) to {path}",
        pg.num_nodes(),
        pg.num_edges()
    )
    .map_err(|e| e.to_string())
}

fn cmd_stats<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let g = load_any_graph(opts.positional(0, "graph file")?)?;
    let d = stats::degree_stats(&g);
    let wcc = stats::largest_wcc_size(&g);
    writeln!(out, "nodes\t{}", g.num_nodes()).ok();
    writeln!(out, "arcs\t{}", g.num_edges()).ok();
    writeln!(out, "mean_degree\t{:.2}", d.mean).ok();
    writeln!(out, "max_out_degree\t{}", d.max_out).ok();
    writeln!(out, "max_in_degree\t{}", d.max_in).ok();
    writeln!(out, "excess_ratio\t{:.2}", d.excess_ratio).ok();
    writeln!(out, "largest_wcc\t{wcc}").ok();
    Ok(())
}

fn cmd_sphere<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let source: NodeId = opts.require("source")?;
    if source as usize >= pg.num_nodes() {
        return Err(format!("--source {source} out of range"));
    }
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let tc = typical_cascade(
        &pg,
        source,
        &TypicalCascadeConfig {
            median_samples: samples,
            cost_samples: samples,
            seed,
            ..TypicalCascadeConfig::default()
        },
    );
    writeln!(out, "sphere_size\t{}", tc.size()).ok();
    writeln!(out, "expected_cost\t{:.4}", tc.expected_cost).ok();
    writeln!(
        out,
        "members\t{}",
        tc.median
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
    .ok();
    Ok(())
}

fn cmd_spheres<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let threads: usize = opts.get("threads")?.unwrap_or(0);
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: samples,
            seed,
            ..IndexConfig::default()
        },
    );
    let spheres = soi_core::all_typical_cascades(&index, &MedianConfig::default(), threads);
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "node\tsize\ttraining_cost\tmembers").map_err(|e| e.to_string())?;
    for s in &spheres {
        writeln!(
            w,
            "{}\t{}\t{:.4}\t{}",
            s.node,
            s.median.len(),
            s.training_cost,
            s.median
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(out, "wrote {} spheres to {path}", spheres.len()).ok();
    Ok(())
}

fn cmd_infmax<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let k: usize = opts.require("k")?;
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let method: String = opts.get("method")?.unwrap_or_else(|| "tc".to_string());

    let build_index = || {
        CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: samples,
                seed,
                ..IndexConfig::default()
            },
        )
    };
    let seeds: Vec<NodeId> = match method.as_str() {
        "tc" => {
            let index = build_index();
            let spheres = soi_core::all_typical_cascades(&index, &MedianConfig::default(), 0);
            let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
            infmax_tc(&cascades, k, 0).seeds
        }
        "greedy" => infmax_std(&build_index(), k, GreedyMode::Celf).seeds,
        "mc" => {
            infmax_std_mc(
                &pg,
                k,
                &McGreedyConfig {
                    samples,
                    seed,
                    ..McGreedyConfig::default()
                },
            )
            .seeds
        }
        "ris" => infmax_ris(&pg, k, (20 * pg.num_nodes()).max(1000), seed).seeds,
        "degree" => high_degree_seeds(pg.graph(), k),
        "degree-discount" => degree_discount_seeds(pg.graph(), k, 0.1),
        "pagerank" => pagerank_seeds(pg.graph(), k),
        "random" => {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            random_seeds(pg.graph(), k, &mut rng)
        }
        other => return Err(format!("unknown method {other:?}")),
    };
    let sigma = soi_sampling::estimate_spread(&pg, &seeds, samples.max(1000), seed ^ 0xE7A1);
    writeln!(
        out,
        "seeds\t{}",
        seeds
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
    .ok();
    writeln!(out, "expected_spread\t{sigma:.2}").ok();
    Ok(())
}

fn cmd_reliability<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let source: NodeId = opts.require("source")?;
    let samples: usize = opts.get("samples")?.unwrap_or(10_000);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    if let Some(target) = opts.get::<NodeId>("target")? {
        let rel = soi_sampling::reliability::two_terminal(&pg, source, target, samples, seed);
        writeln!(out, "rel({source}, {target})\t{rel:.4}").ok();
    } else {
        let eta: f64 = opts.get("eta")?.unwrap_or(0.5);
        let set = soi_sampling::reliability::reliability_search(&pg, &[source], eta, samples, seed);
        writeln!(out, "eta\t{eta}").ok();
        writeln!(
            out,
            "reachable\t{}",
            set.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .ok();
    }
    Ok(())
}

fn parse_log(path: &str, num_users: usize) -> Result<ActionLog, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut actions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(format!("{path}:{}: expected `user item time`", lineno + 1));
        }
        let parse = |s: &str, what: &str| -> Result<u32, String> {
            s.parse()
                .map_err(|e| format!("{path}:{}: bad {what}: {e}", lineno + 1))
        };
        actions.push(Action {
            user: parse(fields[0], "user")?,
            item: parse(fields[1], "item")?,
            time: parse(fields[2], "time")?,
        });
    }
    ActionLog::new(num_users, actions).map_err(|e| e.to_string())
}

fn cmd_learn<W: Write>(args: &[String], out: &mut W) -> Result<(), String> {
    let opts = Opts::parse(args, &[])?;
    let graph = load_any_graph(opts.positional(0, "graph file")?)?;
    let log = parse_log(opts.positional(1, "log file")?, graph.num_nodes())?;
    let method: String = opts.get("method")?.unwrap_or_else(|| "saito".to_string());
    let lag: Option<u32> = opts.get("lag")?;
    let min_prob: f64 = opts.get("min-prob")?.unwrap_or(1e-4);
    let probs = match method.as_str() {
        "saito" => learn_saito(&graph, &log, &SaitoConfig::default()),
        "goyal" => learn_goyal(&graph, &log, lag),
        "goyal-jaccard" => learn_goyal_jaccard(&graph, &log, lag),
        other => return Err(format!("unknown method {other:?}")),
    };
    let pg = to_prob_graph(&graph, &probs, min_prob).map_err(|e| e.to_string())?;
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
    gio::write_prob_graph(&pg, std::io::BufWriter::new(file)).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "learned {} arcs (of {} topology arcs) with {method}; wrote {path}",
        pg.num_edges(),
        graph.num_edges()
    )
    .ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, String> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("soi-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_then_sphere() {
        let path = tmp("g1.tsv");
        let msg = run(&[
            "generate",
            "--model",
            "ba",
            "--nodes",
            "100",
            "--m",
            "2",
            "--prob",
            "fixed:0.3",
            "--seed",
            "7",
            "--out",
            &path,
        ])
        .unwrap();
        assert!(msg.contains("100 nodes"));

        let stats = run(&["stats", &path]).unwrap();
        assert!(stats.contains("nodes\t100"));
        assert!(stats.contains("largest_wcc"));

        let sphere = run(&["sphere", &path, "--source", "0", "--samples", "64"]).unwrap();
        assert!(sphere.contains("sphere_size"));
        assert!(sphere.contains("expected_cost"));
    }

    #[test]
    fn infmax_methods_run() {
        let path = tmp("g2.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "60", "--edges", "240", "--prob", "wc",
            "--out", &path,
        ])
        .unwrap();
        for method in [
            "tc",
            "greedy",
            "mc",
            "ris",
            "degree",
            "degree-discount",
            "pagerank",
            "random",
        ] {
            let out = run(&[
                "infmax",
                &path,
                "--k",
                "3",
                "--method",
                method,
                "--samples",
                "64",
            ])
            .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(out.contains("expected_spread"), "{method}: {out}");
            let seeds_line = out.lines().next().unwrap();
            assert_eq!(seeds_line.split('\t').nth(1).unwrap().split(',').count(), 3);
        }
    }

    #[test]
    fn reliability_queries() {
        let path = tmp("g3.tsv");
        run(&[
            "generate",
            "--model",
            "gnm",
            "--nodes",
            "30",
            "--edges",
            "120",
            "--prob",
            "fixed:0.5",
            "--out",
            &path,
        ])
        .unwrap();
        let two = run(&[
            "reliability",
            &path,
            "--source",
            "0",
            "--target",
            "1",
            "--samples",
            "2000",
        ])
        .unwrap();
        assert!(two.starts_with("rel(0, 1)"));
        let search = run(&["reliability", &path, "--source", "0", "--eta", "0.9"]).unwrap();
        assert!(search.contains("reachable\t"));
    }

    #[test]
    fn learn_roundtrip() {
        // Write a graph and a matching log, learn, load the result.
        let gpath = tmp("g4.tsv");
        run(&[
            "generate",
            "--model",
            "gnm",
            "--nodes",
            "20",
            "--edges",
            "60",
            "--prob",
            "fixed:0.6",
            "--out",
            &gpath,
        ])
        .unwrap();
        // Synthesize a log from the generated graph.
        let pg = load_prob_graph(&gpath).unwrap();
        let log = soi_problog::generate_log(
            &pg,
            &soi_problog::generate::LogGenConfig {
                num_items: 300,
                seeds_per_item: 1,
                seed: 5,
            },
        );
        let lpath = tmp("log4.tsv");
        let mut text = String::new();
        for item in 0..log.num_items() as u32 {
            for a in log.episode(item) {
                text.push_str(&format!("{}\t{}\t{}\n", a.user, a.item, a.time));
            }
        }
        std::fs::write(&lpath, text).unwrap();

        let opath = tmp("learned4.tsv");
        for method in ["saito", "goyal", "goyal-jaccard"] {
            let msg = run(&[
                "learn", &gpath, &lpath, "--method", method, "--lag", "1", "--out", &opath,
            ])
            .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(msg.contains("learned"), "{method}");
            let learned = load_prob_graph(&opath).unwrap();
            assert!(learned.num_edges() > 0, "{method} learned nothing");
        }
    }

    #[test]
    fn spheres_bulk_output() {
        let gpath = tmp("g5.tsv");
        run(&[
            "generate", "--model", "ba", "--nodes", "50", "--prob", "wc", "--out", &gpath,
        ])
        .unwrap();
        let opath = tmp("spheres5.tsv");
        let msg = run(&["spheres", &gpath, "--samples", "32", "--out", &opath]).unwrap();
        assert!(msg.contains("wrote 50 spheres"));
        let content = std::fs::read_to_string(&opath).unwrap();
        assert_eq!(content.lines().count(), 51);
        assert!(content.starts_with("node\tsize"));
    }

    #[test]
    fn error_paths_are_clean() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["sphere", "/nonexistent/file", "--source", "0"]).is_err());
        assert!(run(&["generate", "--model", "nope", "--nodes", "5", "--out", "/tmp/x"]).is_err());
        // Out-of-range source.
        let gpath = tmp("g6.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "10", "--edges", "20", "--prob", "wc",
            "--out", &gpath,
        ])
        .unwrap();
        assert!(run(&["sphere", &gpath, "--source", "99"]).is_err());
    }
}
