//! Subcommand implementations. Everything writes to a supplied
//! `Write` so the tests drive commands end-to-end in memory.
//!
//! Commands return a [`RunStatus`] and fail with the workspace
//! [`SoiError`]; `main` maps those onto the exit-code contract described
//! in `docs/ROBUSTNESS.md`: 0 complete, 1 runtime failure, 2 usage,
//! 3 deadline expired with partial output.

use soi_core::{typical_cascade, EngineRunOpts, TypicalCascadeConfig};
use soi_graph::{gen, io as gio, stats, DiGraph, NodeId, ProbGraph};
use soi_index::{CascadeIndex, IndexConfig};
use soi_influence::{
    degree_discount_seeds, high_degree_seeds, infmax_celf_resumable, infmax_ris_budgeted,
    infmax_std_mc, infmax_tc, pagerank_seeds, random_seeds, BackendKind, GreedyRunOpts,
    McGreedyConfig,
};
use soi_jaccard::median::MedianConfig;
use soi_problog::{
    learn_goyal, learn_goyal_jaccard, learn_saito, to_prob_graph, Action, ActionLog, SaitoConfig,
};
use soi_sketch::{select_seeds, BuildOpts, ReachSketches, SketchConfig};
use soi_util::rng::Xoshiro256pp;
use soi_util::runtime::{Deadline, Outcome};
use soi_util::SoiError;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: soi <command> [options]

commands:
  generate   --model ba|gnm|ws|powerlaw --nodes N [--m K] [--edges M]
             [--prob wc|fixed:P|tri] [--seed S] [--undirected] --out FILE
  stats      GRAPH | --port P [--host H] [--watch N] [--interval-ms MS]
             [--format json|prom] [--mask-wall]
  sphere     GRAPH --source V [--samples N] [--seed S]
  spheres    GRAPH [--samples N] [--seed S] [--threads T] --out FILE
  infmax     GRAPH --k K [--backend cascade|sketch] [--sketch-k K]
             [--method tc|greedy|mc|ris|degree|degree-discount|
             pagerank|random] [--samples N] [--seed S]
  reliability GRAPH --source V [--target W] [--eta P] [--samples N] [--seed S]
  learn      GRAPH LOG [--method saito|goyal|goyal-jaccard] [--lag L]
             [--min-prob P] --out FILE
  serve      NAME=GRAPH [NAME=GRAPH ...] [--port P] [--stdio] [--workers N]
             [--queue-cap N] [--cache-cap N] [--worlds L] [--seed S]
             [--max-line BYTES] [--default-deadline-ticks N]
             [--slow-query-ticks N --slow-query-log FILE]
             [--slow-query-log-max-bytes B] [--sketch-k K]
  route      REPLICAS [REPLICAS ...] [--port P] [--replica-retries N]
             [--backoff-ticks T] [--max-line BYTES] [--overrides-file FILE]
             [--probe-interval-ms MS]
             (each REPLICAS is one shard: host:port[,host:port ...])
  query      [REQUEST ...] [--file FILE] --port P [--host H]
             [--concurrency N] [--mask-wall] [--retries N]
             [--backoff-ticks T] [--timeout-ms MS]
  fuzz       [--seed S] [--streams N] [--tcp | --soi-bin PATH]
             [--artifacts DIR] [--replay FILE] [--failpoints SPEC]
             (differential protocol fuzzing: real engine vs naive
             reference; exit 1 with a shrunk repro on divergence)

global options (valid on every command):
  --threads N          worker threads for every parallel phase (default:
             SOI_THREADS env var, then all available cores)
  --trace off|error|warn|info|debug|trace   event-log verbosity (default off);
             info and up also prints a per-phase timing summary on exit
  --metrics-out FILE   write a JSONL run report (counters, histograms,
             span timings) when the command finishes
  --deadline-ticks N   cooperative work budget for the heavy phases
             (`spheres`, `infmax --method greedy|ris`); on expiry the
             command writes what it completed and exits with code 3
  --checkpoint-dir DIR write periodic, atomic, checksummed checkpoints
             (`spheres`, `infmax --method greedy`) into DIR
  --checkpoint-every N checkpoint / deadline block granularity in work
             units (default 64)
  --resume             resume from a checkpoint in --checkpoint-dir when
             one exists (fresh start otherwise)

exit codes: 0 complete; 1 runtime failure; 2 usage error;
            3 deadline expired (partial output written; resumable)

graph files: TSV edge lists (`u<TAB>v<TAB>p`, `# nodes: N` header);
log files: `user<TAB>item<TAB>time` lines.";

/// How a command finished.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunStatus {
    /// All work finished; exit 0.
    Complete,
    /// The deadline expired; partial output was written. Exit 3.
    Partial {
        /// Completed fraction of the interrupted phase in `[0, 1]`.
        fraction: f64,
    },
}

impl RunStatus {
    fn from_outcome<T>(outcome: &Outcome<T>) -> RunStatus {
        match outcome.progress() {
            Some(p) => RunStatus::Partial {
                fraction: p.fraction(),
            },
            None => RunStatus::Complete,
        }
    }

    /// Completed fraction: 1 when complete.
    pub fn fraction(&self) -> f64 {
        match self {
            RunStatus::Complete => 1.0,
            RunStatus::Partial { fraction } => *fraction,
        }
    }
}

/// A minimal `--flag value` option bag with positional arguments.
struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], switch_names: &[&str]) -> Result<Opts, SoiError> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switch_names.contains(&name) {
                    switches.push(name.to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| SoiError::usage(format!("--{name} needs a value")))?;
                    flags.insert(name.to_string(), v.clone());
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts {
            positional,
            flags,
            switches,
        })
    }

    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, SoiError>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| SoiError::usage(format!("--{name}: {e}"))),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, SoiError>
    where
        T::Err: std::fmt::Display,
    {
        self.get(name)?
            .ok_or_else(|| SoiError::usage(format!("--{name} is required")))
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }

    fn positional(&self, i: usize, what: &str) -> Result<&str, SoiError> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| SoiError::usage(format!("missing {what}")))
    }
}

/// Observability options shared by every subcommand, pulled out of the
/// argument list before routing.
struct ObsOpts {
    trace: Option<soi_obs::Level>,
    metrics_out: Option<String>,
}

/// Fault-tolerance options shared by every subcommand: deadline budget
/// and checkpoint/resume policy.
struct RuntimeOpts {
    deadline_ticks: Option<u64>,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
    resume: bool,
    threads: usize,
}

impl RuntimeOpts {
    fn deadline(&self) -> Deadline {
        match self.deadline_ticks {
            Some(n) => Deadline::ticks(n),
            None => Deadline::unlimited(),
        }
    }

    /// Resolves the checkpoint path for a pipeline (creating the
    /// directory), or `None` when checkpointing is off.
    fn checkpoint_file(&self, name: &str) -> Result<Option<PathBuf>, SoiError> {
        match &self.checkpoint_dir {
            None => Ok(None),
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| SoiError::io(dir.as_str(), e))?;
                Ok(Some(PathBuf::from(dir).join(name)))
            }
        }
    }
}

/// Removes a checkpoint after its pipeline completed (missing is fine).
fn discard_checkpoint(path: Option<&PathBuf>) {
    if let Some(p) = path {
        let _ = std::fs::remove_file(p);
    }
}

/// Strips the global options (`--trace`, `--metrics-out`,
/// `--deadline-ticks`, `--checkpoint-dir`, `--checkpoint-every`,
/// `--resume`) from `args`, returning the remaining command arguments
/// alongside the parsed option bags.
fn extract_globals(args: &[String]) -> Result<(Vec<String>, ObsOpts, RuntimeOpts), SoiError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut obs = ObsOpts {
        trace: None,
        metrics_out: None,
    };
    let mut rt = RuntimeOpts {
        deadline_ticks: None,
        checkpoint_dir: None,
        checkpoint_every: 64,
        resume: false,
        threads: 0,
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| SoiError::usage(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let v = value("--trace", &mut it)?;
                obs.trace = soi_obs::event::parse_level(&v).map_err(SoiError::usage)?;
            }
            "--metrics-out" => obs.metrics_out = Some(value("--metrics-out", &mut it)?),
            "--deadline-ticks" => {
                let v = value("--deadline-ticks", &mut it)?;
                rt.deadline_ticks = Some(
                    v.parse()
                        .map_err(|e| SoiError::usage(format!("--deadline-ticks: {e}")))?,
                );
            }
            "--checkpoint-dir" => rt.checkpoint_dir = Some(value("--checkpoint-dir", &mut it)?),
            "--checkpoint-every" => {
                let v = value("--checkpoint-every", &mut it)?;
                let n: usize = v
                    .parse()
                    .map_err(|e| SoiError::usage(format!("--checkpoint-every: {e}")))?;
                if n == 0 {
                    return Err(SoiError::usage("--checkpoint-every must be at least 1"));
                }
                rt.checkpoint_every = n;
            }
            "--resume" => rt.resume = true,
            "--threads" => {
                let v = value("--threads", &mut it)?;
                rt.threads = v
                    .parse()
                    .map_err(|e| SoiError::usage(format!("--threads: {e}")))?;
            }
            _ => rest.push(a.clone()),
        }
    }
    if rt.resume && rt.checkpoint_dir.is_none() {
        return Err(SoiError::usage("--resume requires --checkpoint-dir"));
    }
    Ok((rest, obs, rt))
}

impl ObsOpts {
    /// Emits the run report / summary table after the command finished.
    /// The report's `config` records only the stripped command arguments,
    /// so two runs differing solely in `--metrics-out` path (or trace
    /// level) produce byte-identical masked reports.
    fn finish(&self, cmd_args: &[String]) -> Result<(), SoiError> {
        if self.metrics_out.is_none() && self.trace < Some(soi_obs::Level::Info) {
            return Ok(());
        }
        let argv = cmd_args.join(" ");
        let config: Vec<(&str, &str)> = vec![("argv", argv.as_str())];
        let report = soi_obs::RunReport::collect(&config);
        if let Some(path) = &self.metrics_out {
            let file = std::fs::File::create(path).map_err(|e| SoiError::io(path.as_str(), e))?;
            let mut w = std::io::BufWriter::new(file);
            report
                .write_jsonl(&mut w)
                .map_err(|e| SoiError::io(path.as_str(), e))?;
        }
        if self.trace >= Some(soi_obs::Level::Info) {
            // Human-readable per-phase table on stderr, keeping stdout
            // reserved for the command's own output.
            let mut err = std::io::stderr().lock();
            report.write_summary(&mut err).ok();
        }
        Ok(())
    }
}

/// Routes `args` to a subcommand, writing human-readable output to `out`.
pub fn dispatch<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let (args, obs, rt) = extract_globals(args)?;
    soi_obs::reset();
    soi_obs::event::set_max_level(obs.trace);
    // One flag governs every parallel phase: pipelines called with
    // `threads == 0` resolve through this override (then SOI_THREADS,
    // then the hardware count). See `soi_util::pool`.
    soi_util::pool::set_default_threads(rt.threads);
    let Some(cmd) = args.first() else {
        return Err(SoiError::usage("no command given"));
    };
    let rest = &args[1..];
    let status = match cmd.as_str() {
        "generate" => cmd_generate(rest, out),
        "stats" => cmd_stats(rest, out),
        "sphere" => cmd_sphere(rest, out),
        "spheres" => cmd_spheres(rest, &rt, out),
        "infmax" => cmd_infmax(rest, &rt, out),
        "reliability" => cmd_reliability(rest, out),
        "learn" => cmd_learn(rest, out),
        "serve" => cmd_serve(rest, &rt, out),
        "route" => cmd_route(rest, out),
        "query" => cmd_query(rest, out),
        "fuzz" => cmd_fuzz(rest, out),
        other => Err(SoiError::usage(format!("unknown command {other:?}"))),
    }?;
    // The metrics report carries how much of the run's budgeted phase
    // finished — 1.0 for uninterrupted runs.
    soi_obs::gauge("runtime.completed_fraction").set(status.fraction());
    obs.finish(&args)?;
    Ok(status)
}

fn load_prob_graph(path: &str) -> Result<ProbGraph, SoiError> {
    let file = std::fs::File::open(path).map_err(|e| SoiError::io(path, e))?;
    match gio::read_graph(std::io::BufReader::new(file))
        .map_err(|e| SoiError::from(e).with_context(path))?
    {
        gio::ParsedGraph::Probabilistic(pg) => Ok(pg),
        gio::ParsedGraph::Plain(_) => Err(SoiError::invalid(format!(
            "{path}: plain edge list — probabilities required (use a 3-column file)"
        ))),
    }
}

fn load_any_graph(path: &str) -> Result<DiGraph, SoiError> {
    let file = std::fs::File::open(path).map_err(|e| SoiError::io(path, e))?;
    match gio::read_graph(std::io::BufReader::new(file))
        .map_err(|e| SoiError::from(e).with_context(path))?
    {
        gio::ParsedGraph::Probabilistic(pg) => Ok(pg.graph().clone()),
        gio::ParsedGraph::Plain(g) => Ok(g),
    }
}

fn cmd_generate<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &["undirected"])?;
    let model: String = opts.require("model")?;
    let nodes: usize = opts.require("nodes")?;
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let undirected = opts.has("undirected");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let topo = match model.as_str() {
        "ba" => {
            let m: usize = opts.get("m")?.unwrap_or(3);
            gen::barabasi_albert(nodes, m, !undirected, &mut rng)
        }
        "gnm" => {
            let edges: usize = opts.get("edges")?.unwrap_or(nodes * 4);
            gen::gnm(nodes, edges, &mut rng)
        }
        "ws" => {
            let k: usize = opts.get("m")?.unwrap_or(4);
            gen::watts_strogatz(nodes, k, 0.1, &mut rng)
        }
        "powerlaw" => {
            let maxd: usize = opts.get("m")?.unwrap_or(nodes / 10);
            gen::powerlaw_configuration(nodes, 2.0, maxd.max(2), &mut rng)
        }
        other => {
            return Err(SoiError::usage(format!(
                "unknown model {other:?} (ba|gnm|ws|powerlaw)"
            )))
        }
    };
    let prob: String = opts.get("prob")?.unwrap_or_else(|| "wc".to_string());
    let pg = if prob == "wc" {
        ProbGraph::weighted_cascade(topo)
    } else if prob == "tri" {
        ProbGraph::trivalency(topo, &mut rng)
    } else if let Some(p) = prob.strip_prefix("fixed:") {
        let p: f64 = p
            .parse()
            .map_err(|e| SoiError::usage(format!("--prob fixed:P: {e}")))?;
        ProbGraph::fixed(topo, p)?
    } else {
        return Err(SoiError::usage(format!(
            "unknown --prob {prob:?} (wc|fixed:P|tri)"
        )));
    };
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| SoiError::io(path.as_str(), e))?;
    gio::write_prob_graph(&pg, std::io::BufWriter::new(file))
        .map_err(|e| SoiError::io(path.as_str(), e))?;
    writeln!(
        out,
        "wrote {} nodes, {} arcs ({model}, {prob}) to {path}",
        pg.num_nodes(),
        pg.num_edges()
    )
    .ok();
    Ok(RunStatus::Complete)
}

fn cmd_stats<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &["mask-wall"])?;
    // With --port, `stats` is the live introspection client against a
    // running daemon (docs/OBSERVABILITY.md); without it, the original
    // graph-file summary.
    if opts.flags.contains_key("port") {
        return cmd_stats_live(&opts, out);
    }
    let g = load_any_graph(opts.positional(0, "graph file")?)?;
    let d = stats::degree_stats(&g);
    let wcc = stats::largest_wcc_size(&g);
    writeln!(out, "nodes\t{}", g.num_nodes()).ok();
    writeln!(out, "arcs\t{}", g.num_edges()).ok();
    writeln!(out, "mean_degree\t{:.2}", d.mean).ok();
    writeln!(out, "max_out_degree\t{}", d.max_out).ok();
    writeln!(out, "max_in_degree\t{}", d.max_in).ok();
    writeln!(out, "excess_ratio\t{:.2}", d.excess_ratio).ok();
    writeln!(out, "largest_wcc\t{wcc}").ok();
    Ok(RunStatus::Complete)
}

/// `soi stats --port P`: poll a running daemon's versioned stats
/// endpoint, rendering JSON snapshots (with counter deltas under
/// `--watch`) or a Prometheus-style text exposition.
fn cmd_stats_live<W: Write>(opts: &Opts, out: &mut W) -> Result<RunStatus, SoiError> {
    let format = match opts.get::<String>("format")?.as_deref() {
        None | Some("json") => soi_server::StatsFormat::Json,
        Some("prom") => soi_server::StatsFormat::Prom,
        Some(other) => {
            return Err(SoiError::usage(format!(
                "unknown --format {other:?} (json|prom)"
            )))
        }
    };
    let config = soi_server::StatsConfig {
        host: opts.get("host")?.unwrap_or_else(|| "127.0.0.1".to_string()),
        port: opts.require("port")?,
        watch: opts.get("watch")?.unwrap_or(1),
        interval_ms: opts.get("interval-ms")?.unwrap_or(1000),
        format,
        mask_wall: opts.has("mask-wall"),
    };
    soi_server::run_stats(&config, out)?;
    Ok(RunStatus::Complete)
}

fn cmd_sphere<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let source: NodeId = opts.require("source")?;
    if source as usize >= pg.num_nodes() {
        return Err(SoiError::invalid(format!("--source {source} out of range")));
    }
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let tc = typical_cascade(
        &pg,
        source,
        &TypicalCascadeConfig {
            median_samples: samples,
            cost_samples: samples,
            seed,
            ..TypicalCascadeConfig::default()
        },
    );
    writeln!(out, "sphere_size\t{}", tc.size()).ok();
    writeln!(out, "expected_cost\t{:.4}", tc.expected_cost).ok();
    writeln!(
        out,
        "members\t{}",
        tc.median
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
    .ok();
    Ok(RunStatus::Complete)
}

fn cmd_spheres<W: Write>(
    args: &[String],
    rt: &RuntimeOpts,
    out: &mut W,
) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let threads: usize = opts.get("threads")?.unwrap_or(0);
    let index = CascadeIndex::build(
        &pg,
        IndexConfig {
            num_worlds: samples,
            seed,
            ..IndexConfig::default()
        },
    );
    let deadline = rt.deadline();
    let ckpt_path = rt.checkpoint_file("spheres.ckpt")?;
    let outcome = soi_core::all_typical_cascades_resumable(
        &index,
        &MedianConfig::default(),
        threads,
        &EngineRunOpts {
            deadline: &deadline,
            checkpoint: ckpt_path.as_deref(),
            checkpoint_every: rt.checkpoint_every,
            resume: rt.resume,
        },
    )?;
    let status = RunStatus::from_outcome(&outcome);
    let total = index.num_nodes();
    let spheres = outcome.value();

    soi_util::failpoint!("cli.spheres.write");
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| SoiError::io(path.as_str(), e))?;
    let mut w = std::io::BufWriter::new(file);
    let write_err = |e| SoiError::io(path.as_str(), e);
    writeln!(w, "node\tsize\ttraining_cost\tmembers").map_err(write_err)?;
    for s in &spheres {
        writeln!(
            w,
            "{}\t{}\t{:.4}\t{}",
            s.node,
            s.median.len(),
            s.training_cost,
            s.median
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .map_err(write_err)?;
    }
    w.flush().map_err(write_err)?;
    match status {
        RunStatus::Complete => {
            discard_checkpoint(ckpt_path.as_ref());
            writeln!(out, "wrote {} spheres to {path}", spheres.len()).ok();
        }
        RunStatus::Partial { .. } => {
            writeln!(
                out,
                "wrote {} of {total} spheres to {path} (deadline expired; resumable)",
                spheres.len()
            )
            .ok();
        }
    }
    Ok(status)
}

fn cmd_infmax<W: Write>(
    args: &[String],
    rt: &RuntimeOpts,
    out: &mut W,
) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    let k: usize = opts.require("k")?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let samples: usize = opts.get("samples")?.unwrap_or(256);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    let method: String = opts.get("method")?.unwrap_or_else(|| "tc".to_string());
    let backend_name: String = opts
        .get("backend")?
        .unwrap_or_else(|| "cascade".to_string());
    let backend = BackendKind::parse(&backend_name)
        .ok_or_else(|| SoiError::usage(format!("unknown backend {backend_name:?}")))?;
    if backend == BackendKind::Sketch {
        return infmax_sketch(&opts, rt, &pg, k, samples, seed, out);
    }

    let build_index = || {
        CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: samples,
                seed,
                ..IndexConfig::default()
            },
        )
    };
    let deadline = rt.deadline();
    let mut status = RunStatus::Complete;
    let seeds: Vec<NodeId> = match method.as_str() {
        "tc" => {
            let index = build_index();
            let spheres = soi_core::all_typical_cascades(&index, &MedianConfig::default(), 0);
            let cascades: Vec<Vec<NodeId>> = spheres.into_iter().map(|s| s.median).collect();
            infmax_tc(&cascades, k, 0).seeds
        }
        "greedy" => {
            let index = build_index();
            let ckpt_path = rt.checkpoint_file("greedy.ckpt")?;
            let outcome = infmax_celf_resumable(
                &index,
                k,
                &GreedyRunOpts {
                    deadline: &deadline,
                    checkpoint: ckpt_path.as_deref(),
                    checkpoint_every: rt.checkpoint_every,
                    resume: rt.resume,
                },
            )?;
            status = RunStatus::from_outcome(&outcome);
            if matches!(status, RunStatus::Complete) {
                discard_checkpoint(ckpt_path.as_ref());
            }
            outcome.value().seeds
        }
        "mc" => {
            infmax_std_mc(
                &pg,
                k,
                &McGreedyConfig {
                    samples,
                    seed,
                    ..McGreedyConfig::default()
                },
            )
            .seeds
        }
        "ris" => {
            let outcome =
                infmax_ris_budgeted(&pg, k, (20 * pg.num_nodes()).max(1000), seed, &deadline);
            status = RunStatus::from_outcome(&outcome);
            outcome.value().seeds
        }
        "degree" => high_degree_seeds(pg.graph(), k),
        "degree-discount" => degree_discount_seeds(pg.graph(), k, 0.1),
        "pagerank" => pagerank_seeds(pg.graph(), k),
        "random" => {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            random_seeds(pg.graph(), k, &mut rng)
        }
        other => return Err(SoiError::usage(format!("unknown method {other:?}"))),
    };
    let sigma = soi_sampling::estimate_spread(&pg, &seeds, samples.max(1000), seed ^ 0xE7A1);
    writeln!(
        out,
        "seeds\t{}",
        seeds
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
    .ok();
    writeln!(out, "expected_spread\t{sigma:.2}").ok();
    if let RunStatus::Partial { fraction } = status {
        writeln!(
            out,
            "partial\t{:.1}% (deadline expired; resumable with --resume)",
            fraction * 100.0
        )
        .ok();
    }
    Ok(status)
}

/// `infmax --backend sketch`: bottom-k sketch build (budgeted and
/// resumable like the greedy pipeline) followed by SKIM-style greedy
/// selection, sharing one deadline across both phases.
fn infmax_sketch<W: Write>(
    opts: &Opts,
    rt: &RuntimeOpts,
    pg: &ProbGraph,
    k: usize,
    samples: usize,
    seed: u64,
    out: &mut W,
) -> Result<RunStatus, SoiError> {
    let sketch_k: usize = opts.get("sketch-k")?.unwrap_or(64);
    if sketch_k == 0 {
        return Err(SoiError::usage("--sketch-k must be >= 1"));
    }
    let config = SketchConfig {
        num_worlds: samples,
        k: sketch_k,
        seed,
        threads: rt.threads,
    };
    let deadline = rt.deadline();
    let ckpt_path = rt.checkpoint_file("sketch.ckpt")?;
    let build = ReachSketches::build_resumable(
        pg,
        config,
        &BuildOpts {
            deadline: &deadline,
            checkpoint: ckpt_path.as_deref(),
            checkpoint_every: rt.checkpoint_every as u64,
            resume: rt.resume,
        },
    )?;
    let mut status = RunStatus::from_outcome(&build);
    // A partial build still yields a valid oracle over a world prefix;
    // selection proceeds on whatever deadline budget remains.
    let sk = build.value();
    let outcome = select_seeds(pg, &sk, k, &deadline);
    if matches!(status, RunStatus::Complete) {
        status = RunStatus::from_outcome(&outcome);
        if matches!(status, RunStatus::Complete) {
            discard_checkpoint(ckpt_path.as_ref());
        }
    }
    let seeds = outcome.value().seeds;
    let sigma = soi_sampling::estimate_spread(pg, &seeds, samples.max(1000), seed ^ 0xE7A1);
    writeln!(
        out,
        "seeds\t{}",
        seeds
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",")
    )
    .ok();
    writeln!(out, "expected_spread\t{sigma:.2}").ok();
    writeln!(
        out,
        "backend\tsketch (worlds {}, k {sketch_k})",
        sk.num_worlds()
    )
    .ok();
    if let RunStatus::Partial { fraction } = status {
        writeln!(
            out,
            "partial\t{:.1}% (deadline expired; resumable with --resume)",
            fraction * 100.0
        )
        .ok();
    }
    Ok(status)
}

fn cmd_reliability<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    let pg = load_prob_graph(opts.positional(0, "graph file")?)?;
    let source: NodeId = opts.require("source")?;
    let samples: usize = opts.get("samples")?.unwrap_or(10_000);
    let seed: u64 = opts.get("seed")?.unwrap_or(42);
    if let Some(target) = opts.get::<NodeId>("target")? {
        let rel = soi_sampling::reliability::two_terminal(&pg, source, target, samples, seed);
        writeln!(out, "rel({source}, {target})\t{rel:.4}").ok();
    } else {
        let eta: f64 = opts.get("eta")?.unwrap_or(0.5);
        let set = soi_sampling::reliability::reliability_search(&pg, &[source], eta, samples, seed);
        writeln!(out, "eta\t{eta}").ok();
        writeln!(
            out,
            "reachable\t{}",
            set.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        )
        .ok();
    }
    Ok(RunStatus::Complete)
}

fn parse_log(path: &str, num_users: usize) -> Result<ActionLog, SoiError> {
    let text = std::fs::read_to_string(path).map_err(|e| SoiError::io(path, e))?;
    let mut actions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(SoiError::Parse {
                context: path.to_string(),
                line: lineno + 1,
                message: "expected `user item time`".into(),
            });
        }
        let parse = |s: &str, what: &str| -> Result<u32, SoiError> {
            s.parse().map_err(|e| SoiError::Parse {
                context: path.to_string(),
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        actions.push(Action {
            user: parse(fields[0], "user")?,
            item: parse(fields[1], "item")?,
            time: parse(fields[2], "time")?,
        });
    }
    ActionLog::new(num_users, actions).map_err(|e| SoiError::invalid(e.to_string()))
}

fn cmd_learn<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    let graph = load_any_graph(opts.positional(0, "graph file")?)?;
    let log = parse_log(opts.positional(1, "log file")?, graph.num_nodes())?;
    let method: String = opts.get("method")?.unwrap_or_else(|| "saito".to_string());
    let lag: Option<u32> = opts.get("lag")?;
    let min_prob: f64 = opts.get("min-prob")?.unwrap_or(1e-4);
    let probs = match method.as_str() {
        "saito" => learn_saito(&graph, &log, &SaitoConfig::default()),
        "goyal" => learn_goyal(&graph, &log, lag),
        "goyal-jaccard" => learn_goyal_jaccard(&graph, &log, lag),
        other => return Err(SoiError::usage(format!("unknown method {other:?}"))),
    };
    let pg = to_prob_graph(&graph, &probs, min_prob)?;
    let path: String = opts.require("out")?;
    let file = std::fs::File::create(&path).map_err(|e| SoiError::io(path.as_str(), e))?;
    gio::write_prob_graph(&pg, std::io::BufWriter::new(file))
        .map_err(|e| SoiError::io(path.as_str(), e))?;
    writeln!(
        out,
        "learned {} arcs (of {} topology arcs) with {method}; wrote {path}",
        pg.num_edges(),
        graph.num_edges()
    )
    .ok();
    Ok(RunStatus::Complete)
}

/// Parses a `NAME=PATH` graph spec; a bare path uses its file stem as
/// the served graph name.
fn parse_graph_spec(spec: &str) -> Result<(String, String), SoiError> {
    if let Some((name, path)) = spec.split_once('=') {
        if name.is_empty() || path.is_empty() {
            return Err(SoiError::usage(format!(
                "bad graph spec {spec:?} (want NAME=PATH)"
            )));
        }
        return Ok((name.to_string(), path.to_string()));
    }
    let stem = std::path::Path::new(spec)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| SoiError::usage(format!("cannot derive a graph name from {spec:?}")))?;
    Ok((stem, spec.to_string()))
}

fn cmd_serve<W: Write>(
    args: &[String],
    rt: &RuntimeOpts,
    out: &mut W,
) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &["stdio"])?;
    if opts.positional.is_empty() {
        return Err(SoiError::usage("serve needs at least one NAME=GRAPH spec"));
    }
    // Parse every flag before touching the filesystem so bad numbers
    // stay usage errors (exit 2) even when a graph path is also wrong.
    let engine_config = soi_server::EngineConfig {
        num_worlds: opts.get("worlds")?.unwrap_or(256),
        seed: opts.get("seed")?.unwrap_or(42),
        threads: rt.threads,
        cache_cap: opts.get("cache-cap")?.unwrap_or(4),
        default_deadline_ticks: opts.get("default-deadline-ticks")?.unwrap_or(0),
        sketch_k: opts.get("sketch-k")?.unwrap_or(64),
        ..soi_server::EngineConfig::default()
    };
    let max_line: usize = opts
        .get("max-line")?
        .unwrap_or(soi_server::DEFAULT_MAX_LINE);
    let serve_config = soi_server::ServeConfig {
        port: opts.get("port")?.unwrap_or(0),
        workers: opts.get("workers")?.unwrap_or(0),
        queue_cap: opts.get("queue-cap")?.unwrap_or(64),
        max_line,
        slow_query_ticks: opts.get("slow-query-ticks")?.unwrap_or(0),
        slow_query_log: opts
            .get::<String>("slow-query-log")?
            .map(std::path::PathBuf::from),
        slow_query_log_max_bytes: opts.get("slow-query-log-max-bytes")?.unwrap_or(0),
    };
    let specs: Vec<(String, String)> = opts
        .positional
        .iter()
        .map(|s| parse_graph_spec(s))
        .collect::<Result<_, _>>()?;
    let mut engine = soi_server::ServerEngine::new(engine_config);
    for (name, path) in &specs {
        engine.add_graph(name, load_prob_graph(path)?);
    }
    if opts.has("stdio") {
        let stdin = std::io::stdin();
        soi_server::run_stdio(&engine, max_line, &mut stdin.lock(), out)?;
    } else {
        soi_server::run_tcp(std::sync::Arc::new(engine), &serve_config, out)?;
    }
    Ok(RunStatus::Complete)
}

fn cmd_route<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &[])?;
    if opts.positional.is_empty() {
        return Err(SoiError::usage(
            "route needs at least one shard replica set (host:port[,host:port ...])",
        ));
    }
    // One positional argument per shard, comma-separated replicas —
    // positional because the option bag keeps one value per flag name.
    let shards: Vec<Vec<String>> = opts
        .positional
        .iter()
        .map(|spec| {
            spec.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect::<Vec<String>>()
        })
        .collect();
    if shards.iter().any(Vec::is_empty) {
        return Err(SoiError::usage("empty shard replica set"));
    }
    let config = soi_server::RouterConfig {
        port: opts.get("port")?.unwrap_or(0),
        shards,
        replica_retries: opts.get("replica-retries")?.unwrap_or(2),
        backoff_ticks: opts.get("backoff-ticks")?.unwrap_or(1),
        max_line: opts
            .get("max-line")?
            .unwrap_or(soi_server::DEFAULT_MAX_LINE),
        overrides_path: opts
            .get::<String>("overrides-file")?
            .map(std::path::PathBuf::from),
        probe_interval_ms: opts.get("probe-interval-ms")?.unwrap_or(0),
    };
    soi_server::run_router(&config, out)?;
    Ok(RunStatus::Complete)
}

fn cmd_query<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &["mask-wall"])?;
    let mut requests: Vec<String> = opts.positional.clone();
    if let Some(path) = opts.get::<String>("file")? {
        let text = std::fs::read_to_string(&path).map_err(|e| SoiError::io(path.as_str(), e))?;
        requests.extend(
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string),
        );
    }
    if requests.is_empty() {
        return Err(SoiError::usage(
            "query needs request lines (positional or --file)",
        ));
    }
    let config = soi_server::QueryConfig {
        host: opts.get("host")?.unwrap_or_else(|| "127.0.0.1".to_string()),
        port: opts.require("port")?,
        concurrency: opts.get("concurrency")?.unwrap_or(1),
        mask_wall: opts.has("mask-wall"),
        retries: opts.get("retries")?.unwrap_or(0),
        backoff_ticks: opts.get("backoff-ticks")?.unwrap_or(1),
        timeout_ms: opts.get("timeout-ms")?.unwrap_or(0),
    };
    // Response-level errors are visible in the printed lines; the batch
    // itself completed, so the exit code stays 0. Requests the server
    // never answered (synthesized connection-lost/timeout lines) make
    // the batch partial: exit code 3 per the exit-code contract.
    let report = soi_server::run_queries(&requests, &config, out)?;
    if report.lost > 0 {
        let answered = requests.len() - report.lost;
        return Ok(RunStatus::Partial {
            fraction: answered as f64 / requests.len() as f64,
        });
    }
    Ok(RunStatus::Complete)
}

fn cmd_fuzz<W: Write>(args: &[String], out: &mut W) -> Result<RunStatus, SoiError> {
    let opts = Opts::parse(args, &["tcp"])?;
    let mut config = soi_verify::FuzzConfig {
        seed: opts.get("seed")?.unwrap_or(1),
        streams: opts.get("streams")?.unwrap_or(8),
        ..soi_verify::FuzzConfig::default()
    };
    if let Some(dir) = opts.get::<String>("artifacts")? {
        config.artifacts = Some(PathBuf::from(dir));
    }
    config.failpoints = opts.get("failpoints")?;
    if let Some(bin) = opts.get::<String>("soi-bin")? {
        config.soi_bin = Some(PathBuf::from(bin));
    } else if opts.has("tcp") {
        // Fuzz this very binary over a real socket.
        config.soi_bin = Some(std::env::current_exe().map_err(|e| SoiError::io("current exe", e))?);
    }
    let report = match opts.get::<String>("replay")? {
        Some(path) => soi_verify::run_replay(std::path::Path::new(&path), &config, out)?,
        None => soi_verify::run_fuzz(&config, out)?,
    };
    if report.divergences() > 0 {
        return Err(SoiError::invalid(format!(
            "{} of {} fuzz stream(s) diverged (repro instructions above)",
            report.divergences(),
            report.verdicts.len()
        )));
    }
    Ok(RunStatus::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_status(args: &[&str]) -> Result<(RunStatus, String), SoiError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let status = dispatch(&args, &mut out)?;
        Ok((status, String::from_utf8(out).unwrap()))
    }

    fn run(args: &[&str]) -> Result<String, SoiError> {
        let (status, out) = run_status(args)?;
        assert_eq!(status, RunStatus::Complete, "unexpected partial: {out}");
        Ok(out)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("soi-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_then_stats_then_sphere() {
        let path = tmp("g1.tsv");
        let msg = run(&[
            "generate",
            "--model",
            "ba",
            "--nodes",
            "100",
            "--m",
            "2",
            "--prob",
            "fixed:0.3",
            "--seed",
            "7",
            "--out",
            &path,
        ])
        .unwrap();
        assert!(msg.contains("100 nodes"));

        let stats = run(&["stats", &path]).unwrap();
        assert!(stats.contains("nodes\t100"));
        assert!(stats.contains("largest_wcc"));

        let sphere = run(&["sphere", &path, "--source", "0", "--samples", "64"]).unwrap();
        assert!(sphere.contains("sphere_size"));
        assert!(sphere.contains("expected_cost"));
    }

    #[test]
    fn infmax_methods_run() {
        let path = tmp("g2.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "60", "--edges", "240", "--prob", "wc",
            "--out", &path,
        ])
        .unwrap();
        for method in [
            "tc",
            "greedy",
            "mc",
            "ris",
            "degree",
            "degree-discount",
            "pagerank",
            "random",
        ] {
            let out = run(&[
                "infmax",
                &path,
                "--k",
                "3",
                "--method",
                method,
                "--samples",
                "64",
            ])
            .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(out.contains("expected_spread"), "{method}: {out}");
            let seeds_line = out.lines().next().unwrap();
            assert_eq!(seeds_line.split('\t').nth(1).unwrap().split(',').count(), 3);
        }
    }

    #[test]
    fn reliability_queries() {
        let path = tmp("g3.tsv");
        run(&[
            "generate",
            "--model",
            "gnm",
            "--nodes",
            "30",
            "--edges",
            "120",
            "--prob",
            "fixed:0.5",
            "--out",
            &path,
        ])
        .unwrap();
        let two = run(&[
            "reliability",
            &path,
            "--source",
            "0",
            "--target",
            "1",
            "--samples",
            "2000",
        ])
        .unwrap();
        assert!(two.starts_with("rel(0, 1)"));
        let search = run(&["reliability", &path, "--source", "0", "--eta", "0.9"]).unwrap();
        assert!(search.contains("reachable\t"));
    }

    #[test]
    fn learn_roundtrip() {
        // Write a graph and a matching log, learn, load the result.
        let gpath = tmp("g4.tsv");
        run(&[
            "generate",
            "--model",
            "gnm",
            "--nodes",
            "20",
            "--edges",
            "60",
            "--prob",
            "fixed:0.6",
            "--out",
            &gpath,
        ])
        .unwrap();
        // Synthesize a log from the generated graph.
        let pg = load_prob_graph(&gpath).unwrap();
        let log = soi_problog::generate_log(
            &pg,
            &soi_problog::generate::LogGenConfig {
                num_items: 300,
                seeds_per_item: 1,
                seed: 5,
            },
        );
        let lpath = tmp("log4.tsv");
        let mut text = String::new();
        for item in 0..log.num_items() as u32 {
            for a in log.episode(item) {
                text.push_str(&format!("{}\t{}\t{}\n", a.user, a.item, a.time));
            }
        }
        std::fs::write(&lpath, text).unwrap();

        let opath = tmp("learned4.tsv");
        for method in ["saito", "goyal", "goyal-jaccard"] {
            let msg = run(&[
                "learn", &gpath, &lpath, "--method", method, "--lag", "1", "--out", &opath,
            ])
            .unwrap_or_else(|e| panic!("{method}: {e}"));
            assert!(msg.contains("learned"), "{method}");
            let learned = load_prob_graph(&opath).unwrap();
            assert!(learned.num_edges() > 0, "{method} learned nothing");
        }
    }

    #[test]
    fn spheres_bulk_output() {
        let gpath = tmp("g5.tsv");
        run(&[
            "generate", "--model", "ba", "--nodes", "50", "--prob", "wc", "--out", &gpath,
        ])
        .unwrap();
        let opath = tmp("spheres5.tsv");
        let msg = run(&["spheres", &gpath, "--samples", "32", "--out", &opath]).unwrap();
        assert!(msg.contains("wrote 50 spheres"));
        let content = std::fs::read_to_string(&opath).unwrap();
        assert_eq!(content.lines().count(), 51);
        assert!(content.starts_with("node\tsize"));
    }

    #[test]
    fn deadline_limited_spheres_is_partial_and_resumes() {
        let gpath = tmp("g7.tsv");
        run(&[
            "generate", "--model", "ba", "--nodes", "50", "--prob", "wc", "--seed", "3", "--out",
            &gpath,
        ])
        .unwrap();
        let full = tmp("spheres7-full.tsv");
        run(&["spheres", &gpath, "--samples", "32", "--out", &full]).unwrap();

        let ckdir = tmp("ck7");
        let _ = std::fs::remove_dir_all(&ckdir);
        let part = tmp("spheres7-part.tsv");
        // Blocks of 10 nodes, budget 15 ticks: block 1 fits (10 spent),
        // block 2 would overrun and is skipped -> 10 of 50 solved.
        let (status, msg) = run_status(&[
            "spheres",
            &gpath,
            "--samples",
            "32",
            "--out",
            &part,
            "--deadline-ticks",
            "15",
            "--checkpoint-every",
            "10",
            "--checkpoint-dir",
            &ckdir,
        ])
        .unwrap();
        match status {
            RunStatus::Partial { fraction } => {
                assert!((fraction - 0.2).abs() < 1e-9, "fraction {fraction}")
            }
            RunStatus::Complete => panic!("expected partial: {msg}"),
        }
        assert!(msg.contains("deadline expired"), "{msg}");
        let partial_content = std::fs::read_to_string(&part).unwrap();
        assert_eq!(partial_content.lines().count(), 11, "header + 10 nodes");
        let full_content = std::fs::read_to_string(&full).unwrap();
        assert!(
            full_content.starts_with(&partial_content),
            "prefix property"
        );

        // Resume without a deadline: completes and matches the
        // uninterrupted run byte-for-byte; checkpoint is discarded.
        let resumed = tmp("spheres7-resumed.tsv");
        let (status, _) = run_status(&[
            "spheres",
            &gpath,
            "--samples",
            "32",
            "--out",
            &resumed,
            "--checkpoint-dir",
            &ckdir,
            "--resume",
        ])
        .unwrap();
        assert_eq!(status, RunStatus::Complete);
        assert_eq!(std::fs::read_to_string(&resumed).unwrap(), full_content);
        assert!(
            !std::path::Path::new(&ckdir).join("spheres.ckpt").exists(),
            "checkpoint discarded after completion"
        );
        std::fs::remove_dir_all(&ckdir).unwrap();
    }

    #[test]
    fn deadline_limited_greedy_infmax_is_partial() {
        let gpath = tmp("g8.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "40", "--edges", "160", "--prob", "wc",
            "--out", &gpath,
        ])
        .unwrap();
        // Budget covers the initial gain pass (40 evals) plus a few
        // re-evaluations — not all 5 rounds.
        let (status, msg) = run_status(&[
            "infmax",
            &gpath,
            "--k",
            "5",
            "--method",
            "greedy",
            "--samples",
            "32",
            "--deadline-ticks",
            "44",
        ])
        .unwrap();
        assert!(
            matches!(status, RunStatus::Partial { .. }),
            "expected partial: {msg}"
        );
        assert!(msg.contains("partial"), "{msg}");
    }

    #[test]
    fn metrics_report_carries_completed_fraction() {
        let gpath = tmp("g9.tsv");
        run(&[
            "generate", "--model", "ba", "--nodes", "30", "--prob", "wc", "--out", &gpath,
        ])
        .unwrap();
        let mpath = tmp("metrics9.jsonl");
        let opath = tmp("spheres9.tsv");
        let (status, _) = run_status(&[
            "spheres",
            &gpath,
            "--samples",
            "16",
            "--out",
            &opath,
            "--deadline-ticks",
            "5",
            "--checkpoint-every",
            "5",
            "--metrics-out",
            &mpath,
        ])
        .unwrap();
        assert!(matches!(status, RunStatus::Partial { .. }));
        let report = std::fs::read_to_string(&mpath).unwrap();
        assert!(
            report.contains("runtime.completed_fraction"),
            "completed fraction missing from metrics report: {report}"
        );
    }

    #[test]
    fn error_paths_are_clean() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        assert!(run(&["sphere", "/nonexistent/file", "--source", "0"]).is_err());
        assert!(run(&["generate", "--model", "nope", "--nodes", "5", "--out", "/tmp/x"]).is_err());
        // Out-of-range source.
        let gpath = tmp("g6.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "10", "--edges", "20", "--prob", "wc",
            "--out", &gpath,
        ])
        .unwrap();
        assert!(run(&["sphere", &gpath, "--source", "99"]).is_err());
    }

    #[test]
    fn usage_errors_are_classified_for_exit_code_2() {
        for args in [
            &["frobnicate"] as &[&str],
            &["infmax", "net.tsv"],                      // missing --k
            &["spheres", "net.tsv", "--resume"],         // --resume sans dir
            &["stats", "x", "--deadline-ticks", "nope"], // bad number
            &["stats", "x", "--checkpoint-every", "0"],  // zero block
        ] {
            let err = run(args).unwrap_err();
            assert!(err.is_usage(), "{args:?} -> {err}");
        }
        // Runtime failures are NOT usage errors.
        let err = run(&["sphere", "/nonexistent/file", "--source", "0"]).unwrap_err();
        assert!(!err.is_usage(), "{err}");
    }

    #[test]
    fn graph_specs_parse_names_and_stems() {
        assert_eq!(
            parse_graph_spec("wiki=/data/wiki.tsv").unwrap(),
            ("wiki".to_string(), "/data/wiki.tsv".to_string())
        );
        assert_eq!(
            parse_graph_spec("/data/epinions.tsv").unwrap(),
            ("epinions".to_string(), "/data/epinions.tsv".to_string())
        );
        assert!(parse_graph_spec("=path").unwrap_err().is_usage());
        assert!(parse_graph_spec("name=").unwrap_err().is_usage());
    }

    #[test]
    fn serve_and_query_usage_errors() {
        for args in [
            &["serve"] as &[&str],                       // no graphs
            &["query", "--port", "1"],                   // no requests
            &["query", "{\"v\":1}"],                     // missing --port
            &["serve", "g=missing.tsv", "--port", "xx"], // bad number
        ] {
            let err = run(args).unwrap_err();
            assert!(err.is_usage(), "{args:?} -> {err}");
        }
        // A nonexistent graph file is a runtime failure, not usage.
        let err = run(&["serve", "g=/nonexistent/graph.tsv", "--stdio"]).unwrap_err();
        assert!(!err.is_usage(), "{err}");
    }

    #[test]
    fn stats_live_rejects_bad_format() {
        let err = run(&["stats", "--port", "1", "--format", "xml"]).unwrap_err();
        assert!(err.is_usage(), "{err}");
        assert!(err.to_string().contains("json|prom"), "{err}");
    }

    #[test]
    fn serve_config_flags_reach_the_engine() {
        // Drive the engine through the same config path cmd_serve uses,
        // then answer a stats request over the stdio front-end.
        let gpath = tmp("g11.tsv");
        run(&[
            "generate", "--model", "gnm", "--nodes", "12", "--edges", "30", "--prob", "wc",
            "--out", &gpath,
        ])
        .unwrap();
        let spec = format!("net={gpath}");
        // run_stdio reads real stdin in cmd_serve, so exercise the pieces
        // directly: spec parsing + engine construction + protocol loop.
        let (name, path) = parse_graph_spec(&spec).unwrap();
        let mut engine = soi_server::ServerEngine::new(soi_server::EngineConfig {
            num_worlds: 8,
            seed: 7,
            ..soi_server::EngineConfig::default()
        });
        engine.add_graph(&name, load_prob_graph(&path).unwrap());
        let input = "{\"v\":1,\"id\":1,\"type\":\"health\"}\n\
                     {\"v\":1,\"id\":2,\"type\":\"spread-estimate\",\"graph\":\"net\",\
                      \"seeds\":[0],\"samples\":8,\"seed\":1}\n";
        let mut reader = std::io::BufReader::new(input.as_bytes());
        let mut out = Vec::new();
        soi_server::run_stdio(&engine, soi_server::DEFAULT_MAX_LINE, &mut reader, &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"graphs\":1"), "{text}");
        assert!(text.contains("\"spread\":"), "{text}");
    }

    #[test]
    fn parse_errors_carry_path_and_line() {
        let bad = tmp("bad10.tsv");
        std::fs::write(&bad, "0\t1\t0.5\n1\t0\tNaN\n").unwrap();
        let err = run(&["stats", &bad]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad10.tsv:2"), "{msg}");
        assert!(msg.contains("probability"), "{msg}");
    }
}
