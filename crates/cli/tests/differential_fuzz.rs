//! CI entry point for the differential fuzzer: a pinned-seed batch of
//! randomized protocol streams replayed through the naive reference
//! engine, the in-process server engine, AND this very binary over a
//! real TCP socket — every arm must produce byte-identical masked
//! responses for every stream (`docs/ROBUSTNESS.md`, "Differential
//! testing"). Divergence artifacts (replay file + transcript) land in
//! `target/fuzz-artifacts/` for CI upload.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

/// Where CI picks up divergence replays and transcripts.
fn artifacts_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/fuzz-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_fuzz(extra: &[&str]) -> Output {
    let mut cmd = soi();
    cmd.arg("fuzz").args(extra);
    cmd.output().expect("spawn soi fuzz")
}

#[test]
fn pinned_seed_batch_of_32_streams_passes_both_engines() {
    let artifacts = artifacts_dir();
    let out = run_fuzz(&[
        "--seed",
        "1",
        "--streams",
        "32",
        "--tcp",
        "--artifacts",
        artifacts.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "fuzz batch diverged\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("fuzz: 32 stream(s), 0 divergence(s)"),
        "{stdout}"
    );
}

#[test]
fn fuzz_run_is_deterministic_in_the_seed() {
    // Same seed, same flags → byte-identical report. `soi fuzz --seed N`
    // must reproduce exactly, or the printed repro instructions are a lie.
    let first = run_fuzz(&["--seed", "5", "--streams", "4"]);
    let second = run_fuzz(&["--seed", "5", "--streams", "4"]);
    assert!(first.status.success(), "{:?}", first);
    assert_eq!(first.status.code(), second.status.code());
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "same seed produced different reports"
    );
}

#[test]
fn failpoint_streams_never_crash_the_engines() {
    // Under a deterministic error-injection schedule both real arms must
    // keep answering (typed errors allowed, crashes and divergence not).
    // The spec is stateless (no @K) so the long-lived in-process arm and
    // each fresh TCP child see the same fault on every hit.
    let out = run_fuzz(&[
        "--seed",
        "11",
        "--streams",
        "4",
        "--tcp",
        "--failpoints",
        "server.index.build=error",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "failpoint fuzz diverged or crashed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains("fuzz: 4 stream(s), 0 divergence(s)"),
        "{stdout}"
    );
}
