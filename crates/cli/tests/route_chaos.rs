//! Chaos matrix for the shard router: the real `soi` binary run as one
//! `soi route` front-end over several `soi serve` shard daemons, with
//! replicas killed, panicked, and darkened mid-batch (see
//! `docs/ROBUSTNESS.md` §3 and the Topology section of
//! `docs/SERVING.md`).
//!
//! The single-daemon chaos invariants carry over to the fabric:
//!
//! 1. no request ends without a typed response — a dark shard answers
//!    typed `shard-unavailable`, never silence or a hang;
//! 2. a retrying client converges — when any replica of the owning
//!    shard survives, the masked batch output is byte-identical to a
//!    fault-free run, because the router relays raw shard bytes and
//!    fails over deterministically.
//!
//! The matrix (one test per schedule):
//!
//! * replica crash mid-batch (`server.response.write=exit(41)@K` on one
//!   replica) — the router fails over to the sibling replica and the
//!   batch converges byte-for-byte;
//! * whole shard dark (only replica killed) — typed `shard-unavailable`
//!   per compute request, router controls stay healthy, `soi query`
//!   exits 3;
//! * shard worker panic (`server.worker.dispatch=panic@1`) — the typed
//!   `internal-error` is relayed verbatim and a retrying client
//!   converges against the respawned worker;
//! * `rebalance` re-homes one graph and rejects out-of-range shards;
//! * aggregated stats — `soi stats` against the router reports the v2
//!   payload with fabric-summed counters and per-shard replica health.
//!
//! Masked transcripts and stats payloads land in
//! `target/chaos-artifacts/` for CI upload.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-route-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Where CI picks up transcripts and stats payloads.
fn artifacts_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_artifact(name: &str, contents: &str) {
    std::fs::write(artifacts_dir().join(name), contents).unwrap();
}

fn make_graph(dir: &Path) -> String {
    let g = dir.join("net.tsv").to_string_lossy().into_owned();
    let out = soi()
        .args([
            "generate", "--model", "gnm", "--nodes", "16", "--edges", "64", "--prob", "wc",
            "--seed", "11", "--out", &g,
        ])
        .output()
        .expect("spawn soi generate");
    assert!(out.status.success(), "generate failed");
    g
}

/// A deterministic mixed batch of `n` compute/control requests,
/// ids 1..=n. Controls answer at the router; computes relay to the
/// shard owning `net`.
fn batch(n: u64) -> String {
    let mut reqs = String::new();
    for id in 1..=n {
        let body = match id % 3 {
            0 => "\"type\":\"health\"".to_string(),
            1 => format!(
                "\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":{}",
                id % 16
            ),
            _ => format!(
                "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[{}],\
                 \"samples\":16,\"seed\":7",
                id % 16
            ),
        };
        reqs.push_str(&format!("{{\"v\":1,\"id\":{id},{body}}}\n"));
    }
    reqs
}

/// One spawned `soi serve` or `soi route` process plus the port it
/// announced on stdout.
struct Proc {
    child: Child,
    port: String,
}

impl Proc {
    fn announce(mut child: Child, what: &str) -> Proc {
        let stdout = child.stdout.take().expect("child stdout");
        let announce = BufReader::new(stdout)
            .lines()
            .next()
            .unwrap_or_else(|| panic!("{what} announced nothing"))
            .expect("read announce line");
        let port = announce
            .rsplit(':')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        assert!(
            announce.starts_with("listening on") && !port.is_empty(),
            "bad {what} announce line: {announce:?}"
        );
        Proc { child, port }
    }

    /// Spawns one shard daemon serving `net`, optionally with
    /// failpoints armed.
    fn serve(graph: &str, extra: &[&str], failpoints: Option<&str>) -> Proc {
        let mut cmd = soi();
        cmd.arg("serve")
            .arg(format!("net={graph}"))
            .args(["--worlds", "16"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = failpoints {
            cmd.env(soi_util::failpoint::ENV_VAR, spec);
        }
        Proc::announce(cmd.spawn().expect("spawn soi serve"), "shard daemon")
    }

    /// Spawns the router over `shards` (each entry one shard's
    /// comma-joined replica list).
    fn route(shards: &[String]) -> Proc {
        Proc::route_with(shards, &[])
    }

    /// Spawns the router with extra flags (e.g. `--overrides-file`).
    fn route_with(shards: &[String], extra: &[&str]) -> Proc {
        let mut cmd = soi();
        cmd.arg("route")
            .args(shards)
            .args(["--backoff-ticks", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        Proc::announce(cmd.spawn().expect("spawn soi route"), "router")
    }

    fn addr(&self) -> String {
        format!("127.0.0.1:{}", self.port)
    }

    /// Runs the batch through `soi query` with retries enabled. The
    /// failpoint variable is never inherited: faults live server-side.
    fn query_batch(&self, reqs_file: &str, retries: &str) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port, "--file", reqs_file])
            .args(["--retries", retries, "--backoff-ticks", "0"])
            .args(["--concurrency", "1", "--mask-wall"])
            .output()
            .expect("spawn soi query")
    }

    fn query_one(&self, request: &str) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port, request])
            .output()
            .expect("spawn soi query")
    }

    /// One `soi stats` snapshot against this process.
    fn stats(&self) -> String {
        let out = soi()
            .arg("stats")
            .args(["--port", &self.port, "--watch", "1", "--mask-wall"])
            .output()
            .expect("spawn soi stats");
        assert!(
            out.status.success(),
            "stats failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    }

    /// Pins `net` onto `shard` so the tests know which daemons own the
    /// batch traffic (placement is deterministic but opaque).
    fn rebalance_net_to(&self, shard: usize) {
        let req = format!(
            "{{\"v\":1,\"id\":900,\"type\":\"rebalance\",\"graph\":\"net\",\"shard\":{shard}}}"
        );
        let out = stdout_str(&self.query_one(&req));
        assert!(
            out.contains("\"rebalanced\":\"net\"") && out.contains(&format!("\"shard\":{shard}")),
            "rebalance not acknowledged: {out}"
        );
    }

    fn shutdown(mut self) {
        let out = self.query_one("{\"v\":1,\"id\":9999,\"type\":\"shutdown\"}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("\"draining\":true"),
            "shutdown not acknowledged"
        );
        let status = self.child.wait().expect("wait for process");
        assert_eq!(status.code(), Some(0), "exit code after drain");
    }
}

fn stdout_str(out: &Output) -> String {
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Invariant 1: ids 1..=n each answered exactly once, in request order.
fn assert_all_answered(text: &str, n: u64) {
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n as usize, "one response per request:\n{text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"id\":{}", i + 1)),
            "response {i} out of order: {line}"
        );
    }
}

fn write_batch(dir: &Path, n: u64) -> String {
    let reqs_file = dir.join("reqs.jsonl").to_string_lossy().into_owned();
    std::fs::write(&reqs_file, batch(n)).unwrap();
    reqs_file
}

#[test]
fn replica_crash_mid_batch_fails_over_and_converges() {
    let dir = fresh_dir("failover");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 12);

    // Fault-free baseline over the same 3-shard topology (one replica
    // per shard suffices: the baseline never loses one).
    let base: Vec<Proc> = (0..3).map(|_| Proc::serve(&graph, &[], None)).collect();
    let base_router = Proc::route(&base.iter().map(Proc::addr).collect::<Vec<_>>());
    base_router.rebalance_net_to(0);
    let expected = stdout_str(&base_router.query_batch(&reqs, "0"));
    base_router.shutdown();
    for d in base {
        d.shutdown();
    }

    // Chaos topology: shard 0 has two replicas, and the first one
    // simulated-crashes on its 4th response write — mid-batch, with the
    // batch pinned onto shard 0. The router must fail over to the
    // sibling replica without the client noticing.
    let doomed = Proc::serve(&graph, &[], Some("server.response.write=exit(41)@4"));
    let sibling = Proc::serve(&graph, &[], None);
    let s1 = Proc::serve(&graph, &[], None);
    let s2 = Proc::serve(&graph, &[], None);
    let router = Proc::route(&[
        format!("{},{}", doomed.addr(), sibling.addr()),
        s1.addr(),
        s2.addr(),
    ]);
    router.rebalance_net_to(0);
    let got = stdout_str(&router.query_batch(&reqs, "0"));
    save_artifact("route-failover.transcript.jsonl", &got);
    assert_all_answered(&got, 12);
    assert_eq!(got, expected, "masked output must converge to fault-free");

    // The doomed replica really died mid-batch …
    let mut doomed = doomed;
    assert_eq!(
        doomed.child.wait().expect("wait for doomed replica").code(),
        Some(41),
        "replica simulated-crash status"
    );
    // … and the router knows: the failover is counted and the dead
    // replica is marked unhealthy in the per-shard health array.
    let stats = router.stats();
    save_artifact("route-failover.stats.json", &stats);
    assert!(stats.contains("\"router.failovers\":"), "{stats}");
    assert!(!stats.contains("\"router.failovers\":0"), "{stats}");
    assert!(
        stats.contains(&format!("\"addr\":\"{}\",\"healthy\":false", doomed.addr())),
        "dead replica not reported unhealthy: {stats}"
    );

    router.shutdown();
    for d in [sibling, s1, s2] {
        d.shutdown();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dark_shard_answers_typed_shard_unavailable_and_exits_3() {
    let dir = fresh_dir("dark-shard");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 6);

    let doomed = Proc::serve(&graph, &[], None);
    let survivor = Proc::serve(&graph, &[], None);
    let router = Proc::route(&[doomed.addr(), survivor.addr()]);
    router.rebalance_net_to(0);

    // Kill shard 0's only replica outright: the shard is dark.
    let mut doomed = doomed;
    doomed.child.kill().expect("kill shard 0");
    doomed.child.wait().expect("reap shard 0");

    // Every compute request must end in a typed shard-unavailable line
    // (the retrying client probes the healing fabric, then reports the
    // loss); router-side controls keep answering.
    let out = router.query_batch(&reqs, "1");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    save_artifact("route-dark-shard.transcript.jsonl", &text);
    assert_all_answered(&text, 6);
    for (i, line) in text.lines().enumerate() {
        let id = i as u64 + 1;
        if id.is_multiple_of(3) {
            assert!(line.contains("\"ok\":true"), "control must stay up: {line}");
        } else {
            assert!(
                line.contains("\"kind\":\"shard-unavailable\"") && line.contains("shard 0"),
                "compute must answer typed shard-unavailable: {line}"
            );
        }
    }
    assert_eq!(
        out.status.code(),
        Some(3),
        "lost responses must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The fabric stays operable around the dark shard: stats aggregates
    // the survivor and counts the typed answers, and the drain is clean.
    let stats = router.stats();
    save_artifact("route-dark-shard.stats.json", &stats);
    assert!(stats.contains("\"router.shard_unavailable\":"), "{stats}");
    assert!(!stats.contains("\"router.shard_unavailable\":0"), "{stats}");
    router.shutdown();
    survivor.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_worker_panic_relays_typed_and_converges() {
    let dir = fresh_dir("worker-panic");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 10);

    let base = Proc::serve(&graph, &["--workers", "1"], None);
    let base_router = Proc::route(&[base.addr()]);
    let expected = stdout_str(&base_router.query_batch(&reqs, "0"));
    base_router.shutdown();
    base.shutdown();

    // The first dispatched job panics the shard's only worker. The
    // shard answers typed internal-error, the router relays it
    // verbatim, and the client without retries still sees a typed line.
    let shard = Proc::serve(
        &graph,
        &["--workers", "1"],
        Some("server.worker.dispatch=panic@1"),
    );
    let router = Proc::route(&[shard.addr()]);
    let bare = stdout_str(&router.query_batch(&reqs, "0"));
    assert_all_answered(&bare, 10);
    assert!(
        bare.contains("\"kind\":\"internal-error\""),
        "panicked request must relay typed:\n{bare}"
    );

    // With retries the respawned worker serves the resent request and
    // the batch converges byte-for-byte through the router.
    let got = stdout_str(&router.query_batch(&reqs, "2"));
    save_artifact("route-worker-panic.transcript.jsonl", &got);
    assert_all_answered(&got, 10);
    assert_eq!(got, expected, "masked output must converge to fault-free");

    router.shutdown();
    shard.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rebalance_rehomes_one_graph_and_rejects_out_of_range() {
    let dir = fresh_dir("rebalance");
    let graph = make_graph(&dir);

    let s0 = Proc::serve(&graph, &[], None);
    let s1 = Proc::serve(&graph, &[], None);
    let router = Proc::route(&[s0.addr(), s1.addr()]);

    // Re-home `net` onto each shard in turn; traffic follows.
    for shard in [1usize, 0] {
        router.rebalance_net_to(shard);
        let out = stdout_str(&router.query_one(
            "{\"v\":1,\"id\":5,\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":3}",
        ));
        assert!(out.contains("\"status\":\"ok\""), "{out}");
    }
    let stats = router.stats();
    assert!(stats.contains("\"router.rebalances\":2"), "{stats}");

    // Out-of-range shard: typed bad-field, router keeps serving.
    let out = stdout_str(
        &router
            .query_one("{\"v\":1,\"id\":6,\"type\":\"rebalance\",\"graph\":\"net\",\"shard\":9}"),
    );
    assert!(
        out.contains("\"kind\":\"bad-field\"") && out.contains("out of range"),
        "{out}"
    );

    router.shutdown();
    s0.shutdown();
    s1.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_restart_rehomes_from_persisted_overrides() {
    let dir = fresh_dir("override-persist");
    let graph = make_graph(&dir);
    let ovr = dir.join("overrides.ckpt").to_string_lossy().into_owned();
    let compute = "{\"v\":1,\"id\":5,\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":3}";

    let s0 = Proc::serve(&graph, &[], None);
    let s1 = Proc::serve(&graph, &[], None);
    let shards = [s0.addr(), s1.addr()];

    // Discover `net`'s ring home (placement is deterministic but
    // opaque): one compute through a throwaway router, then read which
    // replica forwarded it.
    let probe = Proc::route(&shards);
    assert!(stdout_str(&probe.query_one(compute)).contains("\"status\":\"ok\""));
    let home = usize::from(probe.stats().contains(&format!(
        "\"addr\":\"{}\",\"healthy\":true,\"forwarded\":1",
        s1.addr()
    )));
    probe.shutdown();
    let target = 1 - home;
    let target_addr = &shards[target];

    // First router life: re-home `net` off its ring shard, serve some
    // traffic, drain. The override lands in the checkpoint file.
    let router = Proc::route_with(&shards, &["--overrides-file", &ovr]);
    router.rebalance_net_to(target);
    for _ in 0..3 {
        assert!(stdout_str(&router.query_one(compute)).contains("\"status\":\"ok\""));
    }
    let stats = router.stats();
    assert!(
        stats.contains(&format!(
            "\"addr\":\"{target_addr}\",\"healthy\":true,\"forwarded\":3"
        )),
        "traffic did not follow the rebalance: {stats}"
    );
    router.shutdown();
    assert!(Path::new(&ovr).exists(), "override file not written");

    // Second life: same shards, same file, NO rebalance call. The
    // restored override must route `net` to the same shard — and the
    // ring home must see zero forwarded traffic.
    let reborn = Proc::route_with(&shards, &["--overrides-file", &ovr]);
    for _ in 0..3 {
        assert!(stdout_str(&reborn.query_one(compute)).contains("\"status\":\"ok\""));
    }
    let stats = reborn.stats();
    save_artifact("route-override-restart.stats.json", &stats);
    assert!(
        stats.contains(&format!(
            "\"addr\":\"{target_addr}\",\"healthy\":true,\"forwarded\":3"
        )),
        "restart lost the persisted override: {stats}"
    );
    assert!(
        stats.contains(&format!(
            "\"addr\":\"{}\",\"healthy\":true,\"forwarded\":0",
            shards[home]
        )),
        "ring home should see no traffic after restart: {stats}"
    );
    assert!(
        stats.contains("\"router.override_persist_errors\":0"),
        "{stats}"
    );
    reborn.shutdown();

    // A differently shaped fleet must refuse the file outright — shard
    // indices only mean something relative to the layout that wrote it.
    let refused = soi()
        .args(["route", &shards[0], "--overrides-file", &ovr])
        .output()
        .expect("spawn mismatched router");
    assert!(
        !refused.status.success(),
        "mismatched layout must refuse to start"
    );
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("graph_fingerprint"),
        "want a typed fingerprint mismatch: {}",
        String::from_utf8_lossy(&refused.stderr)
    );

    s0.shutdown();
    s1.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn background_probe_readopts_a_restarted_replica() {
    let dir = fresh_dir("probe-readopt");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 9);

    // Shard 0: a replica that dies before serving anything, plus a live
    // sibling. The doomed replica is killed before any connection
    // reaches it, so its port can be re-bound by the replacement.
    let mut doomed = Proc::serve(&graph, &[], None);
    let doomed_port = doomed.port.clone();
    let doomed_addr = doomed.addr();
    doomed.child.kill().expect("kill replica");
    doomed.child.wait().expect("reap replica");

    let sibling = Proc::serve(&graph, &[], None);
    let router = Proc::route_with(
        &[format!("{doomed_addr},{}", sibling.addr())],
        &["--probe-interval-ms", "50"],
    );
    router.rebalance_net_to(0);

    // Traffic flows through the sibling (internal failover, no
    // client-visible error), and the probe marks the dead replica dark.
    let got = stdout_str(&router.query_batch(&reqs, "0"));
    assert_all_answered(&got, 9);
    assert!(!got.contains("\"status\":\"error\""), "{got}");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.contains(&format!("\"addr\":\"{doomed_addr}\",\"healthy\":false")) {
            assert!(!stats.contains("\"router.probe_attempts\":0"), "{stats}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "probe never marked the dead replica dark: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // Respawn the replica on the same port. The background probe must
    // re-adopt it — marked healthy again, recovery counted — with no
    // client traffic needed to discover the healing.
    let replacement = Proc::serve(&graph, &["--port", &doomed_port], None);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = router.stats();
        if stats.contains(&format!("\"addr\":\"{doomed_addr}\",\"healthy\":true"))
            && !stats.contains("\"router.probe_recoveries\":0")
        {
            save_artifact("route-probe-readopt.stats.json", &stats);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "probe never re-adopted the restarted replica: {stats}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    // The healed fabric serves the batch with zero client-visible
    // errors — the re-adopted replica answers real traffic again.
    let got = stdout_str(&router.query_batch(&reqs, "0"));
    assert_all_answered(&got, 9);
    assert!(!got.contains("\"status\":\"error\""), "{got}");

    router.shutdown();
    replacement.shutdown();
    sibling.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_stats_aggregate_the_fabric() {
    let dir = fresh_dir("stats");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 9);

    let s0 = Proc::serve(&graph, &[], None);
    let s1 = Proc::serve(&graph, &[], None);
    let router = Proc::route(&[s0.addr(), s1.addr()]);
    router.rebalance_net_to(0);
    let got = stdout_str(&router.query_batch(&reqs, "0"));
    assert_all_answered(&got, 9);

    // `soi stats` against the router sees the whole fabric: the v2
    // payload shape, shard-summed flat fields (each shard daemon serves
    // one graph), the merged counters map holding both namespaces, and
    // the per-shard replica health array.
    let stats = router.stats();
    save_artifact("route-stats.json", &stats);
    for needle in [
        "\"stats_version\":2",
        "\"graphs\":2",
        "\"shard\":0",
        "\"shard\":1",
        "\"healthy\":true",
        "\"router.forwarded\":6",
        "\"router.requests_total\":",
        "\"server.requests_total\":",
        "\"router.shard_unavailable\":0",
    ] {
        assert!(stats.contains(needle), "missing {needle} in: {stats}");
    }

    router.shutdown();
    s0.shutdown();
    s1.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
