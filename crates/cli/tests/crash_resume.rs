//! Crash-then-resume matrix over the real `soi` binary.
//!
//! For every registered failpoint site ([`soi_util::failpoint::SITES`])
//! the test arms a simulated crash (`exit(41)`, no destructors) via the
//! `SOI_FAILPOINTS` environment variable, runs the pipeline until it
//! dies, then re-runs with `--resume` and asserts the final output is
//! **byte-identical** to an uninterrupted run. This is the end-to-end
//! proof of the checkpoint/resume contract in `docs/ROBUSTNESS.md`.
//!
//! Failpoints compile to no-ops in release builds; `cargo test` builds
//! the binary with `debug_assertions` on, which is what arms the sites.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const CRASH: i32 = 41;

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    // Never inherit stray failpoints from the environment.
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

fn run(mut cmd: Command) -> Output {
    cmd.output().expect("spawn soi")
}

fn assert_code(out: &Output, want: i32, what: &str) {
    assert_eq!(
        out.status.code(),
        Some(want),
        "{what}: expected exit {want}, got {:?}\nstdout: {}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-crash-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates the shared test graph once per temp dir.
fn make_graph(dir: &Path) -> String {
    let g = dir.join("g.tsv").to_string_lossy().into_owned();
    let out = run({
        let mut c = soi();
        c.args([
            "generate", "--model", "ba", "--nodes", "50", "--m", "2", "--prob", "wc", "--seed",
            "9", "--out", &g,
        ]);
        c
    });
    assert_code(&out, 0, "generate");
    g
}

fn spheres_args(graph: &str, out_path: &str, ckpt_dir: &str) -> Vec<String> {
    [
        "spheres",
        graph,
        "--samples",
        "32",
        "--seed",
        "4",
        "--out",
        out_path,
        "--checkpoint-dir",
        ckpt_dir,
        "--checkpoint-every",
        "10",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn every_registered_site_crashes_then_resumes_byte_identical() {
    let dir = fresh_dir("matrix");
    let graph = make_graph(&dir);

    // Golden uninterrupted outputs.
    let golden_spheres = dir.join("golden-spheres.tsv");
    let out = run({
        let mut c = soi();
        c.args(spheres_args(
            &graph,
            golden_spheres.to_str().unwrap(),
            dir.join("ck-golden").to_str().unwrap(),
        ));
        c
    });
    assert_code(&out, 0, "golden spheres");
    let golden_spheres = std::fs::read(&golden_spheres).unwrap();

    let golden_greedy = run({
        let mut c = soi();
        c.args([
            "infmax",
            &graph,
            "--k",
            "5",
            "--method",
            "greedy",
            "--samples",
            "32",
        ]);
        c
    });
    assert_code(&golden_greedy, 0, "golden greedy");

    let sketch_args = |ck: &Path, resume: bool| {
        let mut a: Vec<String> = [
            "infmax",
            &graph,
            "--k",
            "5",
            "--backend",
            "sketch",
            "--sketch-k",
            "16",
            "--samples",
            "32",
            "--checkpoint-dir",
            ck.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        if resume {
            a.push("--resume".into());
        }
        a
    };
    let golden_sketch = run({
        let mut c = soi();
        c.args(sketch_args(&dir.join("ck-golden-sketch"), false));
        c
    });
    assert_code(&golden_sketch, 0, "golden sketch");

    // Which pipeline exercises each site, and on which hit to fire so
    // at least one checkpoint usually exists before the crash.
    for &site in soi_util::failpoint::SITES {
        // `server.*` sites crash mid-request inside the daemon and
        // `router.*` sites inside the shard router; they are exercised
        // by the serve-chaos / route-chaos matrices (tests/serve_chaos.rs,
        // tests/route_chaos.rs), not by checkpoint/resume. `verify.*`
        // sites fault the differential harness's own I/O, exercised by
        // its unit tests (crates/verify/src/stream.rs) — there is no
        // checkpoint to resume from.
        if site.starts_with("server.") || site.starts_with("router.") || site.starts_with("verify.")
        {
            continue;
        }
        let tag = site.replace('.', "-");
        let ck = dir.join(format!("ck-{tag}"));
        let out_path = dir.join(format!("out-{tag}.tsv"));
        let spec = match site {
            "graph.io.read" => format!("{site}=exit({CRASH})"),
            "ckpt.write.tmp" | "ckpt.write.rename" => format!("{site}=exit({CRASH})@2"),
            "engine.block" => format!("{site}=exit({CRASH})@3"),
            "greedy.round" => format!("{site}=exit({CRASH})@4"),
            "cli.spheres.write" => format!("{site}=exit({CRASH})"),
            "sketch.build.block" => format!("{site}=exit({CRASH})@2"),
            other => panic!("unmapped failpoint site {other:?} — extend this matrix"),
        };

        if site == "sketch.build.block" {
            let crash = run({
                let mut c = soi();
                c.args(sketch_args(&ck, false));
                c.env(soi_util::failpoint::ENV_VAR, &spec);
                c
            });
            assert_code(&crash, CRASH, &format!("crash run ({site})"));
            let resumed = run({
                let mut c = soi();
                c.args(sketch_args(&ck, true));
                c
            });
            assert_code(&resumed, 0, &format!("resume run ({site})"));
            assert_eq!(
                resumed.stdout, golden_sketch.stdout,
                "{site}: resumed sketch infmax output differs from uninterrupted run"
            );
            assert!(
                !ck.join("sketch.ckpt").exists(),
                "{site}: sketch checkpoint not discarded after completion"
            );
            continue;
        }

        if site == "greedy.round" {
            let greedy_args = |resume: bool| {
                let mut a: Vec<String> = [
                    "infmax",
                    &graph,
                    "--k",
                    "5",
                    "--method",
                    "greedy",
                    "--samples",
                    "32",
                    "--checkpoint-dir",
                    ck.to_str().unwrap(),
                    "--checkpoint-every",
                    "1",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect();
                if resume {
                    a.push("--resume".into());
                }
                a
            };
            let crash = run({
                let mut c = soi();
                c.args(greedy_args(false));
                c.env(soi_util::failpoint::ENV_VAR, &spec);
                c
            });
            assert_code(&crash, CRASH, &format!("crash run ({site})"));
            let resumed = run({
                let mut c = soi();
                c.args(greedy_args(true));
                c
            });
            assert_code(&resumed, 0, &format!("resume run ({site})"));
            assert_eq!(
                resumed.stdout, golden_greedy.stdout,
                "{site}: resumed greedy output differs from uninterrupted run"
            );
            continue;
        }

        let crash = run({
            let mut c = soi();
            c.args(spheres_args(
                &graph,
                out_path.to_str().unwrap(),
                ck.to_str().unwrap(),
            ));
            c.env(soi_util::failpoint::ENV_VAR, &spec);
            c
        });
        assert_code(&crash, CRASH, &format!("crash run ({site})"));

        let mut resume_args =
            spheres_args(&graph, out_path.to_str().unwrap(), ck.to_str().unwrap());
        resume_args.push("--resume".into());
        let resumed = run({
            let mut c = soi();
            c.args(resume_args);
            c
        });
        assert_code(&resumed, 0, &format!("resume run ({site})"));
        let resumed_bytes = std::fs::read(&out_path).unwrap();
        assert_eq!(
            resumed_bytes, golden_spheres,
            "{site}: resumed spheres TSV differs from uninterrupted run"
        );
        assert!(
            !ck.join("spheres.ckpt").exists(),
            "{site}: checkpoint not discarded after successful completion"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn error_action_fails_with_runtime_exit_code() {
    let dir = fresh_dir("error-action");
    let graph = make_graph(&dir);
    let out = run({
        let mut c = soi();
        c.args(["stats", &graph]);
        c.env(soi_util::failpoint::ENV_VAR, "graph.io.read=error");
        c
    });
    assert_code(&out, 1, "error-action run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("graph.io.read"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deadline_expiry_exits_partial_with_fraction_in_metrics() {
    let dir = fresh_dir("deadline");
    let graph = make_graph(&dir);
    let out_path = dir.join("spheres.tsv");
    let metrics = dir.join("metrics.jsonl");
    let out = run({
        let mut c = soi();
        c.args([
            "spheres",
            &graph,
            "--samples",
            "32",
            "--out",
            out_path.to_str().unwrap(),
            "--deadline-ticks",
            "15",
            "--checkpoint-every",
            "10",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ]);
        c
    });
    assert_code(&out, 3, "deadline-limited run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline expired"), "{stderr}");
    assert!(stderr.contains("%"), "completed fraction missing: {stderr}");
    let report = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        report.contains("runtime.completed_fraction"),
        "metrics report lacks completed fraction: {report}"
    );
    // Partial output is a strict prefix: header plus 10 of 50 rows.
    let tsv = std::fs::read_to_string(&out_path).unwrap();
    assert_eq!(tsv.lines().count(), 11, "{tsv}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn usage_errors_exit_2_with_usage_text() {
    let out = run({
        let mut c = soi();
        c.args(["spheres", "missing.tsv", "--resume"]);
        c
    });
    assert_code(&out, 2, "usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: soi"), "{stderr}");
}
