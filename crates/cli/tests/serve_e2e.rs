//! End-to-end tests of the serving daemon over the real `soi` binary.
//!
//! Everything here goes through subprocesses — `soi serve` for the
//! daemon and `soi query` for the client — because the hermeticity lint
//! confines `std::net` to `crates/server`; this file proves the whole
//! stack works from the shell, exactly as CI's `serve-e2e` job drives
//! it. Covered end to end:
//!
//! * a mixed batch of 100+ concurrent queries whose masked responses
//!   are byte-identical across two runs (determinism modulo wall-clock);
//! * a deadline-limited query returning a well-formed `partial`;
//! * admission control: a saturated one-worker daemon answers a typed
//!   `queue-full` rejection while control requests stay responsive;
//! * graceful drain on `shutdown` — queued work still answers, the
//!   process exits 0, and the `--metrics-out` report is complete;
//! * the introspection plane: masked `soi stats` snapshots with exact
//!   request/hit counts around the mixed batch, `--watch` counter
//!   deltas, the Prometheus exposition, `"trace":true` phase timelines,
//!   and the slow-query log.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_graph(dir: &Path, nodes: usize) -> String {
    let g = dir.join("net.tsv").to_string_lossy().into_owned();
    let out = soi()
        .args([
            "generate",
            "--model",
            "gnm",
            "--nodes",
            &nodes.to_string(),
            "--edges",
            &(nodes * 4).to_string(),
            "--prob",
            "wc",
            "--seed",
            "11",
            "--out",
            &g,
        ])
        .output()
        .expect("spawn soi generate");
    assert!(out.status.success(), "generate failed");
    g
}

/// A running `soi serve` child plus the port it announced.
struct Daemon {
    child: Child,
    port: String,
}

impl Daemon {
    /// Spawns `soi serve` with `extra` args and waits for the
    /// `listening on HOST:PORT` announcement on its stdout.
    fn spawn(graph_spec: &str, extra: &[&str]) -> Daemon {
        let mut child = soi()
            .arg("serve")
            .arg(graph_spec)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn soi serve");
        let stdout = child.stdout.take().expect("serve stdout");
        let mut lines = BufReader::new(stdout).lines();
        let announce = lines
            .next()
            .expect("daemon announced nothing")
            .expect("read announce line");
        let port = announce
            .rsplit(':')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        assert!(
            announce.starts_with("listening on") && !port.is_empty(),
            "bad announce line: {announce:?}"
        );
        Daemon { child, port }
    }

    /// Runs one `soi query` batch against this daemon.
    fn query(&self, args: &[&str]) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port])
            .args(args)
            .output()
            .expect("spawn soi query")
    }

    /// Runs the `soi stats` client against this daemon with wall-clock
    /// masking, so every asserted fragment is deterministic.
    fn stats(&self, extra: &[&str]) -> Output {
        soi()
            .arg("stats")
            .args(["--port", &self.port, "--mask-wall"])
            .args(extra)
            .output()
            .expect("spawn soi stats")
    }

    /// Sends `shutdown`, waits for the daemon to drain, asserts exit 0.
    fn shutdown(mut self) {
        let out = self.query(&["{\"v\":1,\"id\":9999,\"type\":\"shutdown\"}"]);
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("\"draining\":true"),
            "shutdown not acknowledged"
        );
        let status = self.child.wait().expect("wait for daemon");
        assert_eq!(status.code(), Some(0), "daemon exit code after drain");
    }
}

fn stdout_str(out: &Output) -> String {
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Builds the mixed batch: typical-cascade, spread-estimate, and health
/// requests over every node, one deadline-limited query, one infmax-tc.
fn mixed_requests(nodes: usize) -> Vec<String> {
    let mut reqs = Vec::new();
    let mut id = 0u64;
    let mut next = |body: String| {
        id += 1;
        format!("{{\"v\":1,\"id\":{id},{body}}}")
    };
    for source in 0..nodes {
        reqs.push(next(format!(
            "\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":{source}"
        )));
        reqs.push(next(format!(
            "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[{source}],\
             \"samples\":64,\"seed\":7"
        )));
        reqs.push(next("\"type\":\"health\"".to_string()));
    }
    // Deadline shorter than the sample budget: answers `partial` with
    // the deterministic 16-sample prefix.
    reqs.push(next(
        "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[0],\
         \"samples\":64,\"seed\":7,\"deadline_ticks\":16"
            .to_string(),
    ));
    reqs.push(next(
        "\"type\":\"infmax-tc\",\"graph\":\"net\",\"k\":3".to_string(),
    ));
    reqs
}

#[test]
fn concurrent_mixed_batch_is_deterministic_and_drains_cleanly() {
    let dir = fresh_dir("mixed");
    let graph = make_graph(&dir, 40);
    let metrics = dir
        .join("serve-metrics.jsonl")
        .to_string_lossy()
        .into_owned();
    let daemon = Daemon::spawn(
        &format!("net={graph}"),
        &[
            "--worlds",
            "64",
            "--queue-cap",
            "128",
            "--metrics-out",
            &metrics,
        ],
    );

    // Golden masked stats before any traffic: the warm-up build is the
    // one cache miss, and the poll counts itself in `requests_total`.
    let before = stdout_str(&daemon.stats(&[]));
    for needle in [
        "\"stats_version\":2",
        "\"requests_total\":1,\"rejected_queue_full\":0,\"cache_hits\":0,\"cache_misses\":1",
    ] {
        assert!(before.contains(needle), "missing {needle} in:\n{before}");
    }

    let requests = mixed_requests(40);
    assert!(requests.len() >= 100, "batch too small: {}", requests.len());
    let reqs_file = dir.join("reqs.jsonl").to_string_lossy().into_owned();
    std::fs::write(&reqs_file, requests.join("\n") + "\n").unwrap();

    let batch_args = [
        "--file",
        reqs_file.as_str(),
        "--concurrency",
        "8",
        "--mask-wall",
    ];
    let first = stdout_str(&daemon.query(&batch_args));
    let second = stdout_str(&daemon.query(&batch_args));
    assert_eq!(
        first, second,
        "masked responses must be byte-identical across runs"
    );

    let lines: Vec<&str> = first.lines().collect();
    assert_eq!(lines.len(), requests.len(), "one response per request");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"id\":{}", i + 1)),
            "responses out of order at {i}: {line}"
        );
        assert!(
            line.contains("\"wall_ns\":0"),
            "unmasked wall clock: {line}"
        );
    }
    // Every compute line is ok except the deadline-limited one, which
    // must be a well-formed partial covering exactly its tick budget.
    let partial = lines[lines.len() - 2];
    for check in [
        "\"status\":\"partial\"",
        "\"reason\":\"deadline-expired\"",
        "\"done\":",
        "\"total\":64",
        "\"spread\":",
    ] {
        assert!(partial.contains(check), "missing {check}: {partial}");
    }
    let oks = lines
        .iter()
        .filter(|l| l.contains("\"status\":\"ok\""))
        .count();
    assert_eq!(oks, lines.len() - 1, "everything else answers ok");
    let infmax = lines[lines.len() - 1];
    assert!(infmax.contains("\"seeds\":["), "{infmax}");

    // Golden masked stats after the known mix: 1 before-poll + 2×122
    // batch requests + this poll; index fetches are the 40 cascades and
    // the one infmax per batch (spread estimates bypass the cache); the
    // request/queue-wait wall histograms saw the 2×82 compute requests.
    let after = stdout_str(&daemon.stats(&[]));
    for needle in [
        "\"requests_total\":246,\"rejected_queue_full\":0,\"cache_hits\":82,\"cache_misses\":1",
        "\"server.requests_total\":246",
        "\"server.request_ns\":{\"count\":164,\"wall_p50_ns\":0",
        "\"server.queue_wait_ns\":{\"count\":164,",
        "\"threads\":[{\"name\":\"thread.",
        "\"pool\":{\"dispatches\":",
    ] {
        assert!(after.contains(needle), "missing {needle} in:\n{after}");
    }

    daemon.shutdown();

    // The final metrics report flushed on drain and covers the serving
    // counters plus the request-latency wall histogram.
    let report = std::fs::read_to_string(&metrics).expect("metrics report written");
    for needle in [
        "\"name\":\"server.requests_total\"",
        "\"type\":\"wall_hist\",\"name\":\"server.request_ns\"",
        "\"name\":\"server.cache_misses\"",
    ] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Polls `stats` until `pred` matches the response, or panics.
fn await_stats(daemon: &Daemon, what: &str, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let out = daemon.query(&["{\"v\":1,\"id\":1,\"type\":\"stats\"}"]);
        let text = stdout_str(&out);
        if pred(&text) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {text}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn saturated_daemon_rejects_typed_and_still_drains() {
    let dir = fresh_dir("overflow");
    let graph = make_graph(&dir, 16);
    let daemon = Daemon::spawn(
        &format!("net={graph}"),
        &["--worlds", "8", "--workers", "1", "--queue-cap", "1"],
    );

    // A long-running estimate pins the single worker; a second one
    // fills the queue (capacity 1); a third must bounce with the typed
    // `queue-full` rejection. Stats are answered inline by connection
    // threads, so polling them makes each step deterministic.
    let slow = |id: u64| {
        format!(
            "{{\"v\":1,\"id\":{id},\"type\":\"spread-estimate\",\"graph\":\"net\",\
             \"seeds\":[0],\"samples\":10000000,\"seed\":3}}"
        )
    };
    let spawn_slow = |id: u64| {
        soi()
            .arg("query")
            .args(["--port", &daemon.port, &slow(id)])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn slow query")
    };
    let mut pinned = spawn_slow(101);
    await_stats(&daemon, "worker pinned", |s| s.contains("\"in_flight\":1"));
    let mut queued = spawn_slow(102);
    await_stats(&daemon, "queue full", |s| s.contains("\"queue_depth\":1"));

    let bounced = stdout_str(&daemon.query(&[&slow(103)]));
    assert!(bounced.contains("\"kind\":\"queue-full\""), "{bounced}");
    assert!(bounced.contains("\"id\":103"), "{bounced}");

    // Control plane stays responsive while every lane is saturated.
    let health = stdout_str(&daemon.query(&["{\"v\":1,\"id\":104,\"type\":\"health\"}"]));
    assert!(health.contains("\"ok\":true"), "{health}");

    // Graceful drain answers both accepted slow queries with real
    // results before the daemon exits.
    daemon.shutdown();
    for (child, id) in [(&mut pinned, 101), (&mut queued, 102)] {
        let mut text = String::new();
        child
            .stdout
            .take()
            .expect("slow query stdout")
            .read_to_string(&mut text)
            .unwrap();
        assert!(child.wait().unwrap().success(), "slow query {id} exit");
        assert!(text.contains("\"status\":\"ok\""), "{id}: {text}");
        assert!(text.contains(&format!("\"id\":{id}")), "{id}: {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn introspection_trace_stats_watch_prom_and_slow_log() {
    let dir = fresh_dir("introspect");
    let graph = make_graph(&dir, 12);
    let slow_log = dir.join("slow.jsonl").to_string_lossy().into_owned();
    let daemon = Daemon::spawn(
        &format!("net={graph}"),
        &[
            "--worlds",
            "8",
            "--workers",
            "2",
            "--slow-query-ticks",
            "1",
            "--slow-query-log",
            &slow_log,
        ],
    );

    // Opting in with `"trace":true` answers with the full phase
    // timeline; masking zeroes the wall field of every phase entry.
    let traced = stdout_str(&daemon.query(&[
        "--mask-wall",
        "{\"v\":1,\"id\":1,\"type\":\"typical-cascade\",\"graph\":\"net\",\
         \"source\":0,\"trace\":true}",
    ]));
    assert!(traced.contains("\"status\":\"ok\""), "{traced}");
    assert!(
        traced.contains("\"trace\":[{\"phase\":\"parse\",\"ticks\":"),
        "{traced}"
    );
    for phase in ["parse", "queue_wait", "cache", "compute", "serialize"] {
        assert!(
            traced.contains(&format!("{{\"phase\":\"{phase}\",\"ticks\":")),
            "missing {phase} phase: {traced}"
        );
    }
    assert!(
        !traced.contains("\"wall_ns\":1"),
        "unmasked trace: {traced}"
    );

    // Without the opt-in the response carries no timeline.
    let plain = stdout_str(&daemon.query(&[
        "{\"v\":1,\"id\":2,\"type\":\"spread-estimate\",\"graph\":\"net\",\
         \"seeds\":[0],\"samples\":16,\"seed\":7}",
    ]));
    assert!(plain.contains("\"status\":\"ok\""), "{plain}");
    assert!(!plain.contains("\"trace\":["), "unrequested trace: {plain}");

    // `--watch N` prints one snapshot per poll plus a counter-delta
    // line from the second poll on; between idle polls the only moving
    // counter is each poll counting itself.
    let watch = stdout_str(&daemon.stats(&["--watch", "3", "--interval-ms", "40"]));
    let lines: Vec<&str> = watch.lines().collect();
    assert_eq!(lines.len(), 5, "3 snapshots + 2 deltas:\n{watch}");
    for delta in [lines[2], lines[4]] {
        assert!(delta.starts_with("{\"stats_delta\":{"), "{delta}");
        assert!(
            delta.contains("\"server.requests_total\":1"),
            "poll self-count missing: {delta}"
        );
    }

    // The Prometheus rendering exposes counters, histogram buckets,
    // wall-summary quantiles, and the per-thread/pool series.
    let prom = stdout_str(&daemon.stats(&["--format", "prom"]));
    for needle in [
        "# TYPE soi_server_requests_total counter",
        "soi_server_requests_total ",
        "soi_sampling_cascade_size_bucket{le=\"+Inf\"} 16",
        "soi_server_request_ns_ns{quantile=\"0.5\"} 0",
        "soi_thread_busy_ns{thread=\"thread.",
        "soi_pool_dispatches ",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    // Threshold 1 tick makes every compute request slow: after drain
    // the log holds one JSONL record per compute request, timeline
    // included.
    daemon.shutdown();
    let logged = std::fs::read_to_string(&slow_log).expect("slow-query log written");
    let records: Vec<&str> = logged.lines().collect();
    assert_eq!(
        records.len(),
        2,
        "one record per compute request:\n{logged}"
    );
    assert!(
        records[0].contains("\"type_name\":\"typical-cascade\",\"id\":1,"),
        "{logged}"
    );
    assert!(
        records[1].contains("\"type_name\":\"spread-estimate\",\"id\":2,"),
        "{logged}"
    );
    for record in records {
        assert!(record.contains("\"ticks_total\":"), "{record}");
        assert!(
            record.contains("\"trace\":[{\"phase\":\"parse\""),
            "{record}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stdio_front_end_serves_through_the_binary() {
    let dir = fresh_dir("stdio");
    let graph = make_graph(&dir, 12);
    let mut child = soi()
        .args(["serve", &format!("net={graph}"), "--stdio", "--worlds", "8"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn soi serve --stdio");
    use std::io::Write as _;
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(
            b"{\"v\":1,\"id\":1,\"type\":\"health\"}\n\
              {\"v\":1,\"id\":2,\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":0}\n\
              {\"v\":1,\"id\":3,\"type\":\"shutdown\"}\n",
        )
        .unwrap();
    let out = child.wait_with_output().expect("wait for stdio serve");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    assert!(lines[0].contains("\"ok\":true"));
    assert!(lines[1].contains("\"sphere\":["));
    assert!(lines[2].contains("\"draining\":true"));
    std::fs::remove_dir_all(&dir).ok();
}
