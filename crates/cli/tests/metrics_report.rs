//! End-to-end checks of `--metrics-out` / `--trace`: the run report must
//! cover every pipeline phase and be byte-identical across two runs with
//! the same seed once wall-clock fields are masked. Each run spawns the
//! real binary so the process-global registry starts clean.

use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("soi-metrics-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn soi(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_soi"))
        .args(args)
        .output()
        .expect("spawn soi")
}

fn generate_graph(name: &str) -> PathBuf {
    let path = tmp(name);
    let out = soi(&[
        "generate",
        "--model",
        "gnm",
        "--nodes",
        "40",
        "--edges",
        "160",
        "--prob",
        "wc",
        "--seed",
        "3",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

fn run_infmax_tc(graph: &Path, report: &Path) {
    let out = soi(&[
        "infmax",
        graph.to_str().unwrap(),
        "--k",
        "3",
        "--method",
        "tc",
        "--samples",
        "32",
        "--seed",
        "5",
        "--metrics-out",
        report.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("expected_spread"), "stdout: {stdout}");
}

#[test]
fn report_covers_all_phases_and_is_deterministic_masked() {
    let graph = generate_graph("golden.tsv");
    let (r1, r2) = (tmp("run1.jsonl"), tmp("run2.jsonl"));
    run_infmax_tc(&graph, &r1);
    run_infmax_tc(&graph, &r2);

    let a = std::fs::read_to_string(&r1).unwrap();
    let b = std::fs::read_to_string(&r2).unwrap();

    // Every line is a self-describing JSON object.
    for line in a.lines() {
        assert!(
            line.starts_with("{\"type\":\"") && line.ends_with('}'),
            "malformed line: {line}"
        );
    }

    // One infmax --method tc run exercises the whole pipeline: worlds are
    // sampled into the index, typical cascades fit medians per node, the
    // max-cover greedy selects seeds, and the final spread estimate runs
    // direct cascades.
    for phase in ["sampling.", "median.", "index.", "engine.", "influence."] {
        assert!(
            a.contains(&format!("{{\"type\":\"counter\",\"name\":\"{phase}")),
            "no {phase} counters in report:\n{a}"
        );
    }
    assert!(a.contains("\"type\":\"span\""), "no spans in report");
    assert!(
        a.contains("\"wall_ns_total\":"),
        "spans must carry wall time"
    );
    assert!(
        a.contains("\"type\":\"histogram\""),
        "no histograms in report"
    );

    // Golden determinism: identical seeds, identical counts. Only the
    // wall_ns_* fields may differ between the runs.
    let (ma, mb) = (
        soi_obs::report::mask_wall_clock(&a),
        soi_obs::report::mask_wall_clock(&b),
    );
    assert!(
        ma.contains("\"wall_ns_total\":0"),
        "masking left wall time intact"
    );
    assert_eq!(ma, mb, "masked reports differ between same-seed runs");
}

#[test]
fn trace_info_prints_summary_table_on_stderr() {
    let graph = generate_graph("trace.tsv");
    let out = soi(&[
        "infmax",
        graph.to_str().unwrap(),
        "--k",
        "2",
        "--method",
        "tc",
        "--samples",
        "16",
        "--trace",
        "info",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("index built:"),
        "info event missing: {stderr}"
    );
    assert!(
        stderr.contains("engine.median_fit"),
        "summary missing: {stderr}"
    );
    // stdout stays reserved for command output.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("seeds\t"), "stdout polluted: {stdout}");
}

#[test]
fn bad_trace_level_is_rejected() {
    let out = soi(&["stats", "/nonexistent", "--trace", "loud"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown level"), "stderr: {stderr}");
}
