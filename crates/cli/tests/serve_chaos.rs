//! Chaos matrix for the serving daemon: the real `soi` binary run under
//! `SOI_FAILPOINTS` crash/panic schedules (see `docs/ROBUSTNESS.md` §3
//! and `docs/SERVING.md`).
//!
//! Two invariants hold across every schedule:
//!
//! 1. no request ends without a typed response — every id in the batch
//!    gets exactly one line, either a real result or a typed error
//!    (`internal-error`, `connection-lost`), never silence;
//! 2. a retrying client converges — with `--retries`, the masked batch
//!    output is byte-identical to a fault-free run, because every
//!    injected failure is either retried to success or the daemon
//!    answers deterministically around it.
//!
//! The matrix (one test per schedule):
//!
//! * `server.response.write=panic@K` — a connection thread dies mid
//!   write; the daemon keeps serving, the client reconnects and resends.
//! * `server.worker.dispatch=panic@1` — a worker panics mid request;
//!   the in-flight request answers typed `internal-error`, the worker is
//!   respawned, and the daemon serves every subsequent request.
//! * `server.index.build=error` — index builds fail persistently; every
//!   compute request answers a typed `internal-error`, control requests
//!   stay healthy, and the drain is clean.
//! * `server.response.write=exit(N)@K` — the daemon process dies mid
//!   batch; the client synthesizes typed `connection-lost` lines for
//!   every outstanding request and exits 3 instead of hanging.
//!
//! Masked transcripts and the metrics report land in
//! `target/chaos-artifacts/` for CI upload.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Where CI picks up transcripts and metrics reports.
fn artifacts_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/chaos-artifacts");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_artifact(name: &str, contents: &str) {
    std::fs::write(artifacts_dir().join(name), contents).unwrap();
}

fn make_graph(dir: &Path) -> String {
    let g = dir.join("net.tsv").to_string_lossy().into_owned();
    let out = soi()
        .args([
            "generate", "--model", "gnm", "--nodes", "16", "--edges", "64", "--prob", "wc",
            "--seed", "11", "--out", &g,
        ])
        .output()
        .expect("spawn soi generate");
    assert!(out.status.success(), "generate failed");
    g
}

/// A deterministic mixed batch of `n` compute/control requests, ids 1..=n.
fn batch(n: u64) -> String {
    let mut reqs = String::new();
    for id in 1..=n {
        let body = match id % 3 {
            0 => "\"type\":\"health\"".to_string(),
            1 => format!(
                "\"type\":\"typical-cascade\",\"graph\":\"net\",\"source\":{}",
                id % 16
            ),
            _ => format!(
                "\"type\":\"spread-estimate\",\"graph\":\"net\",\"seeds\":[{}],\
                 \"samples\":16,\"seed\":7",
                id % 16
            ),
        };
        reqs.push_str(&format!("{{\"v\":1,\"id\":{id},{body}}}\n"));
    }
    reqs
}

/// A running `soi serve` child (optionally with failpoints armed) plus
/// the port it announced.
struct Daemon {
    child: Child,
    port: String,
}

impl Daemon {
    fn spawn(graph: &str, extra: &[&str], failpoints: Option<&str>) -> Daemon {
        let mut cmd = soi();
        cmd.arg("serve")
            .arg(format!("net={graph}"))
            .args(["--worlds", "16"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = failpoints {
            cmd.env(soi_util::failpoint::ENV_VAR, spec);
        }
        let mut child = cmd.spawn().expect("spawn soi serve");
        let stdout = child.stdout.take().expect("serve stdout");
        let announce = BufReader::new(stdout)
            .lines()
            .next()
            .expect("daemon announced nothing")
            .expect("read announce line");
        let port = announce
            .rsplit(':')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        assert!(
            announce.starts_with("listening on") && !port.is_empty(),
            "bad announce line: {announce:?}"
        );
        Daemon { child, port }
    }

    /// Runs the batch through `soi query` with retries enabled. The
    /// failpoint variable is never inherited: faults live server-side.
    fn query_batch(&self, reqs_file: &str, retries: &str) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port, "--file", reqs_file])
            .args(["--retries", retries, "--backoff-ticks", "0"])
            .args(["--concurrency", "1", "--mask-wall"])
            .output()
            .expect("spawn soi query")
    }

    fn query_one(&self, request: &str) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port, request])
            .output()
            .expect("spawn soi query")
    }

    fn shutdown(mut self) {
        let out = self.query_one("{\"v\":1,\"id\":9999,\"type\":\"shutdown\"}");
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("\"draining\":true"),
            "shutdown not acknowledged"
        );
        let status = self.child.wait().expect("wait for daemon");
        assert_eq!(status.code(), Some(0), "daemon exit code after drain");
    }
}

fn stdout_str(out: &Output) -> String {
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Invariant 1: ids 1..=n each answered exactly once, in request order.
fn assert_all_answered(text: &str, n: u64) {
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), n as usize, "one response per request:\n{text}");
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.contains(&format!("\"id\":{}", i + 1)),
            "response {i} out of order: {line}"
        );
    }
}

fn write_batch(dir: &Path, n: u64) -> String {
    let reqs_file = dir.join("reqs.jsonl").to_string_lossy().into_owned();
    std::fs::write(&reqs_file, batch(n)).unwrap();
    reqs_file
}

#[test]
fn connection_thread_panic_is_survived_and_converges() {
    let dir = fresh_dir("conn-panic");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 10);

    // Fault-free baseline.
    let clean = Daemon::spawn(&graph, &[], None);
    let expected = stdout_str(&clean.query_batch(&reqs, "0"));
    clean.shutdown();

    // The 5th response write panics, killing that connection thread
    // mid-batch. The retrying client reconnects and resends; the daemon
    // keeps serving other connections.
    let chaos = Daemon::spawn(&graph, &[], Some("server.response.write=panic@5"));
    let got = stdout_str(&chaos.query_batch(&reqs, "2"));
    save_artifact("conn-panic.transcript.jsonl", &got);
    assert_all_answered(&got, 10);
    assert_eq!(got, expected, "masked output must converge to fault-free");
    // The daemon survived the thread death: it still drains cleanly.
    chaos.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_panic_answers_typed_respawns_and_keeps_serving() {
    let dir = fresh_dir("worker-panic");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 10);

    let clean = Daemon::spawn(&graph, &["--workers", "1"], None);
    let expected = stdout_str(&clean.query_batch(&reqs, "0"));
    clean.shutdown();

    // The first dispatched job panics its (only) worker. Without
    // retries the client must still see a typed internal-error line —
    // never silence — and the respawned worker serves the rest.
    let metrics = dir.join("metrics.jsonl").to_string_lossy().into_owned();
    let chaos = Daemon::spawn(
        &graph,
        &["--workers", "1", "--metrics-out", &metrics],
        Some("server.worker.dispatch=panic@1"),
    );
    let bare = stdout_str(&chaos.query_batch(&reqs, "0"));
    assert_all_answered(&bare, 10);
    assert!(
        bare.contains("\"kind\":\"internal-error\""),
        "panicked request must answer typed:\n{bare}"
    );

    // With retries, the internal-error is retried against the respawned
    // worker and the batch converges byte-for-byte.
    let got = stdout_str(&chaos.query_batch(&reqs, "2"));
    save_artifact("worker-panic.transcript.jsonl", &got);
    assert_all_answered(&got, 10);
    assert_eq!(got, expected, "masked output must converge to fault-free");

    // Supervision is visible: the panic and respawn are counted, and the
    // daemon serves requests after the panic (the whole second batch).
    let stats = stdout_str(&chaos.query_one("{\"v\":1,\"id\":77,\"type\":\"stats\"}"));
    for needle in [
        "\"worker_panics\":1",
        "\"worker_respawns\":1",
        "\"worker_generations\":2",
    ] {
        assert!(stats.contains(needle), "missing {needle}: {stats}");
    }

    chaos.shutdown();
    let report = std::fs::read_to_string(&metrics).expect("metrics report written");
    save_artifact("worker-panic.metrics.jsonl", &report);
    for counter in [
        "server.worker_panics",
        "server.worker_respawns",
        "server.requests_shed",
        "server.requests_degraded",
    ] {
        assert!(
            report.contains(&format!("\"name\":\"{counter}\"")),
            "missing {counter} in:\n{report}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistent_build_faults_answer_typed_and_drain_cleanly() {
    let dir = fresh_dir("build-fault");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 6);

    let chaos = Daemon::spawn(&graph, &[], Some("server.index.build=error"));
    let got = stdout_str(&chaos.query_batch(&reqs, "0"));
    save_artifact("build-fault.transcript.jsonl", &got);
    assert_all_answered(&got, 6);
    for (i, line) in got.lines().enumerate() {
        let id = i as u64 + 1;
        if id % 3 == 1 {
            // typical-cascade needs the index: fails typed, with the
            // fault's site named so operators can trace it.
            assert!(line.contains("\"kind\":\"internal-error\""), "{line}");
            assert!(line.contains("server.index.build"), "{line}");
        } else {
            // spread-estimate samples the graph directly and health is
            // control-plane: both keep working around the broken index.
            assert!(line.contains("\"status\":\"ok\""), "{line}");
        }
    }
    chaos.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_death_yields_typed_connection_lost_and_exit_3() {
    let dir = fresh_dir("daemon-death");
    let graph = make_graph(&dir);
    let reqs = write_batch(&dir, 8);

    // The 4th response write exits the process: a hard crash mid-batch.
    let mut chaos = Daemon::spawn(&graph, &[], Some("server.response.write=exit(41)@4"));
    let out = chaos.query_batch(&reqs, "1");
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    save_artifact("daemon-death.transcript.jsonl", &text);

    // Invariant 1 even across process death: every id answers exactly
    // once — real results before the crash, typed connection-lost after.
    assert_all_answered(&text, 8);
    let lines: Vec<&str> = text.lines().collect();
    for line in &lines[..3] {
        assert!(line.contains("\"status\":\"ok\""), "{line}");
    }
    for line in &lines[3..] {
        assert!(line.contains("\"kind\":\"connection-lost\""), "{line}");
    }
    assert_eq!(
        out.status.code(),
        Some(3),
        "lost responses must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        chaos.child.wait().expect("wait for daemon").code(),
        Some(41),
        "daemon simulated-crash status"
    );
    std::fs::remove_dir_all(&dir).ok();
}
