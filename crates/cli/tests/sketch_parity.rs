//! Dual-backend serving parity: one `soi serve` daemon answering the
//! same influence questions through the cascade index and the bottom-k
//! sketch oracle (`"backend":"sketch"`), driven end-to-end through the
//! real binary exactly as CI's `sketch-parity` job runs it.
//!
//! Proven here:
//!
//! * a mixed dual-backend batch is byte-identical across two masked
//!   runs — sketch answers are as deterministic as cascade answers;
//! * sketch responses carry the `"backend":"sketch"` tag, cascade
//!   responses stay byte-for-byte what they were before the backend
//!   existed;
//! * the LRU keeps one entry per (graph, backend, parameters): two
//!   sketch-k values and the cascade index coexist without evicting or
//!   aliasing each other (satellite: cache keyed on backend + params).

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn soi() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_soi"));
    c.env_remove(soi_util::failpoint::ENV_VAR);
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-sketch-parity-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn make_graph(dir: &Path) -> String {
    let g = dir.join("net.tsv").to_string_lossy().into_owned();
    let out = soi()
        .args([
            "generate", "--model", "gnm", "--nodes", "24", "--edges", "96", "--prob", "wc",
            "--seed", "11", "--out", &g,
        ])
        .output()
        .expect("spawn soi generate");
    assert!(out.status.success(), "generate failed");
    g
}

struct Daemon {
    child: Child,
    port: String,
}

impl Daemon {
    fn spawn(graph_spec: &str, extra: &[&str]) -> Daemon {
        let mut child = soi()
            .arg("serve")
            .arg(graph_spec)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn soi serve");
        let stdout = child.stdout.take().expect("serve stdout");
        let announce = BufReader::new(stdout)
            .lines()
            .next()
            .expect("daemon announced nothing")
            .expect("read announce line");
        let port = announce
            .rsplit(':')
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        assert!(
            announce.starts_with("listening on") && !port.is_empty(),
            "bad announce line: {announce:?}"
        );
        Daemon { child, port }
    }

    fn query(&self, args: &[&str]) -> Output {
        soi()
            .arg("query")
            .args(["--port", &self.port])
            .args(args)
            .output()
            .expect("spawn soi query")
    }

    fn shutdown(mut self) {
        let out = self.query(&["{\"v\":1,\"id\":9999,\"type\":\"shutdown\"}"]);
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("\"draining\":true"),
            "shutdown not acknowledged"
        );
        let status = self.child.wait().expect("wait for daemon");
        assert_eq!(status.code(), Some(0), "daemon exit code after drain");
    }
}

fn stdout_str(out: &Output) -> String {
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn both_backends_answer_deterministically_from_one_daemon() {
    let dir = fresh_dir("dual");
    let graph = make_graph(&dir);
    let daemon = Daemon::spawn(&format!("net={graph}"), &["--worlds", "64"]);

    // The same questions through both oracles, plus a second sketch-k
    // so three distinct oracle cache entries are live at once.
    let requests = [
        "{\"v\":1,\"id\":1,\"type\":\"spread-estimate\",\"graph\":\"net\",\
         \"seeds\":[0,3],\"samples\":64,\"seed\":7}",
        "{\"v\":1,\"id\":2,\"type\":\"spread-estimate\",\"graph\":\"net\",\
         \"seeds\":[0,3],\"samples\":64,\"seed\":7,\"backend\":\"sketch\"}",
        "{\"v\":1,\"id\":3,\"type\":\"spread-estimate\",\"graph\":\"net\",\
         \"seeds\":[0,3],\"samples\":64,\"seed\":7,\"backend\":\"sketch\",\"sketch_k\":32}",
        "{\"v\":1,\"id\":4,\"type\":\"infmax-tc\",\"graph\":\"net\",\"k\":3}",
        "{\"v\":1,\"id\":5,\"type\":\"infmax-tc\",\"graph\":\"net\",\"k\":3,\
         \"backend\":\"sketch\"}",
        "{\"v\":1,\"id\":6,\"type\":\"health\"}",
    ];
    let reqs_file = dir.join("reqs.jsonl").to_string_lossy().into_owned();
    std::fs::write(&reqs_file, requests.join("\n").to_string() + "\n").unwrap();
    let batch_args = [
        "--file",
        reqs_file.as_str(),
        "--concurrency",
        "1",
        "--mask-wall",
    ];

    let first = stdout_str(&daemon.query(&batch_args));
    let second = stdout_str(&daemon.query(&batch_args));
    assert_eq!(
        first, second,
        "masked dual-backend responses must be byte-identical across runs"
    );

    let lines: Vec<&str> = first.lines().collect();
    assert_eq!(lines.len(), requests.len(), "one response per request");
    for line in &lines {
        assert!(line.contains("\"status\":\"ok\""), "{line}");
    }
    // Sketch answers are tagged; cascade answers are untouched by the
    // new backend's existence.
    for sketch_line in [lines[1], lines[2], lines[4]] {
        assert!(
            sketch_line.contains("\"backend\":\"sketch\""),
            "missing sketch tag: {sketch_line}"
        );
    }
    for cascade_line in [lines[0], lines[3]] {
        assert!(
            !cascade_line.contains("\"backend\""),
            "cascade payload grew a backend field: {cascade_line}"
        );
    }
    // Both backends answer the same question in the same ballpark (they
    // share the sampled-world semantics, not the estimator).
    let spread = |line: &str| -> f64 {
        let at = line.find("\"spread\":").expect("spread field") + "\"spread\":".len();
        line[at..]
            .split([',', '}'])
            .next()
            .unwrap()
            .parse()
            .expect("spread value")
    };
    let cascade = spread(lines[0]);
    let sketch = spread(lines[1]);
    assert!(
        (cascade - sketch).abs() / cascade < 0.35,
        "backends disagree wildly: cascade {cascade} vs sketch {sketch}"
    );
    // Both selections return k seeds; the sketch one also reports its
    // coverage curve.
    assert!(lines[3].contains("\"seeds\":["), "{}", lines[3]);
    assert!(lines[4].contains("\"seeds\":["), "{}", lines[4]);
    assert!(lines[4].contains("\"coverage\":["), "{}", lines[4]);

    // Cache discipline: the warm-up index build plus one build per
    // sketch parameterization — three distinct entries, never aliased,
    // and the whole second batch served from cache.
    let stats =
        stdout_str(&daemon.query(&["--mask-wall", "{\"v\":1,\"id\":7,\"type\":\"stats\"}"]));
    assert!(
        stats.contains("\"cache_hits\":6,\"cache_misses\":3"),
        "want 3 distinct oracle entries (cascade, sketch k=64, sketch k=32) \
         and a fully warm second batch: {stats}"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_backend_is_a_typed_bad_field() {
    let dir = fresh_dir("badfield");
    let graph = make_graph(&dir);
    let daemon = Daemon::spawn(&format!("net={graph}"), &["--worlds", "16"]);
    let out = daemon.query(&[
        "{\"v\":1,\"id\":1,\"type\":\"spread-estimate\",\"graph\":\"net\",\
         \"seeds\":[0],\"samples\":16,\"seed\":7,\"backend\":\"quantum\"}",
    ]);
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("\"kind\":\"bad-field\""), "{text}");
    assert!(text.contains("quantum"), "{text}");
    daemon.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
