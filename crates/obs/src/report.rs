//! Run-report emitters: serialize the registry to JSONL/TSV and a
//! human-readable summary table.
//!
//! Reports are deterministic by construction — config pairs keep their
//! insertion order and every metric table iterates name-sorted — with
//! one deliberate exception: wall-clock numbers. Those appear only in
//! fields whose names start with `wall_`, and [`mask_wall_clock`]
//! rewrites every such value to `0`, after which two same-seed runs
//! must produce byte-identical JSONL (golden-tested in `soi-cli`).

use crate::metrics::WallHistStat;
use crate::perthread::{PoolSnap, ThreadSnap};
use crate::span::SpanStat;
use std::collections::BTreeMap;
use std::io::{self, Write};
use std::time::Duration;

/// A frozen snapshot of one run's observability state.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Exact run configuration (command, arguments, seed, …) in
    /// insertion order.
    pub config: Vec<(String, String)>,
    /// Counter values, name-sorted.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, name-sorted.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram `(bounds, counts)`, name-sorted.
    pub histograms: BTreeMap<String, (Vec<f64>, Vec<u64>)>,
    /// Span statistics keyed by path, name-sorted.
    pub spans: BTreeMap<String, SpanStat>,
    /// Wall-clock latency histogram snapshots, name-sorted. Only the
    /// observation `count` is deterministic; quantiles are wall-clock
    /// data and are emitted exclusively in `wall_`-prefixed fields.
    pub wall_hists: BTreeMap<String, WallHistStat>,
    /// Per-worker timing slots (`thread.*` series), slot-sorted. Every
    /// numeric field is schedule-dependent and is emitted exclusively
    /// in `wall_`-prefixed fields; only the *set* of slots is
    /// deterministic (it mirrors the resolved worker count).
    pub threads: Vec<ThreadSnap>,
    /// Pool-level dispatch aggregates (`pool.*` series). Dispatch and
    /// item totals are deterministic counts; capacity/lifetime/
    /// imbalance are wall-clock.
    pub pool: PoolSnap,
}

impl RunReport {
    /// Snapshots the global registry, span table, and per-thread slots.
    pub fn collect(config: &[(&str, &str)]) -> RunReport {
        let reg = crate::metrics::registry();
        let (threads, pool) = crate::perthread::snapshot();
        RunReport {
            config: config
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            counters: reg.counter_values(),
            gauges: reg.gauge_values(),
            histograms: reg.histogram_values(),
            spans: crate::span::snapshot_spans(),
            wall_hists: reg.wall_hist_values(),
            threads,
            pool,
        }
    }

    /// Report name for a per-thread slot: `thread.N` for workers, the
    /// reserved `thread.coordinator` for unregistered-thread records.
    fn thread_name(slot: usize) -> String {
        if slot >= crate::perthread::MAX_SLOTS {
            "thread.coordinator".to_string()
        } else {
            format!("thread.{slot}")
        }
    }

    /// Writes the report as JSON Lines: one self-describing object per
    /// line (`type` ∈
    /// `config|counter|gauge|histogram|span|wall_hist|thread|pool`).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (k, v) in &self.config {
            writeln!(
                w,
                "{{\"type\":\"config\",\"key\":\"{}\",\"value\":\"{}\"}}",
                json_escape(k),
                json_escape(v)
            )?;
        }
        for (name, value) in &self.counters {
            writeln!(
                w,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
                json_escape(name)
            )?;
        }
        for (name, value) in &self.gauges {
            writeln!(
                w,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                json_escape(name),
                json_num(*value)
            )?;
        }
        for (name, (bounds, counts)) in &self.histograms {
            let bounds: Vec<String> = bounds.iter().map(|b| json_num(*b)).collect();
            let counts: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
            writeln!(
                w,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"bounds\":[{}],\"counts\":[{}]}}",
                json_escape(name),
                bounds.join(","),
                counts.join(",")
            )?;
        }
        for (path, s) in &self.spans {
            writeln!(
                w,
                "{{\"type\":\"span\",\"path\":\"{}\",\"count\":{},\"wall_ns_total\":{},\"wall_ns_min\":{},\"wall_ns_max\":{}}}",
                json_escape(path),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            )?;
        }
        for (name, s) in &self.wall_hists {
            writeln!(
                w,
                "{{\"type\":\"wall_hist\",\"name\":\"{}\",\"count\":{},\"wall_p50_ns\":{},\"wall_p90_ns\":{},\"wall_max_ns\":{}}}",
                json_escape(name),
                s.count,
                s.p50_ns,
                s.p90_ns,
                s.max_ns
            )?;
        }
        for t in &self.threads {
            writeln!(
                w,
                "{{\"type\":\"thread\",\"name\":\"{}\",\"wall_busy_ns\":{},\"wall_idle_ns\":{},\"wall_merge_ns\":{},\"wall_lock_wait_ns\":{},\"wall_lifetime_ns\":{},\"wall_items\":{}}}",
                Self::thread_name(t.slot),
                t.busy_ns,
                t.idle_ns,
                t.merge_ns,
                t.lock_wait_ns,
                t.lifetime_ns,
                t.items
            )?;
        }
        if self.pool.dispatches > 0 {
            writeln!(
                w,
                "{{\"type\":\"pool\",\"name\":\"pool\",\"dispatches\":{},\"items\":{},\"workers_max\":{},\"wall_capacity_ns\":{},\"wall_lifetime_ns\":{},\"wall_imbalance_ns\":{}}}",
                self.pool.dispatches,
                self.pool.items,
                self.pool.workers_max,
                self.pool.capacity_ns,
                self.pool.lifetime_ns,
                self.pool.imbalance_ns
            )?;
        }
        Ok(())
    }

    /// The JSONL report as a string.
    pub fn to_jsonl_string(&self) -> String {
        let mut buf = Vec::new();
        // Writing to a Vec cannot fail.
        let _ = self.write_jsonl(&mut buf);
        String::from_utf8_lossy(&buf).into_owned()
    }

    /// Writes the report as TSV rows: `kind<TAB>name<TAB>field<TAB>value`.
    /// Wall-clock values appear only in fields starting with `wall_`.
    pub fn write_tsv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (k, v) in &self.config {
            writeln!(w, "config\t{k}\tvalue\t{v}")?;
        }
        for (name, value) in &self.counters {
            writeln!(w, "counter\t{name}\tvalue\t{value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(w, "gauge\t{name}\tvalue\t{}", json_num(*value))?;
        }
        for (name, (bounds, counts)) in &self.histograms {
            let bounds: Vec<String> = bounds.iter().map(|b| json_num(*b)).collect();
            let counts: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
            writeln!(w, "histogram\t{name}\tbounds\t{}", bounds.join(","))?;
            writeln!(w, "histogram\t{name}\tcounts\t{}", counts.join(","))?;
        }
        for (path, s) in &self.spans {
            writeln!(w, "span\t{path}\tcount\t{}", s.count)?;
            writeln!(w, "span\t{path}\twall_ns_total\t{}", s.total_ns)?;
            writeln!(w, "span\t{path}\twall_ns_min\t{}", s.min_ns)?;
            writeln!(w, "span\t{path}\twall_ns_max\t{}", s.max_ns)?;
        }
        for (name, s) in &self.wall_hists {
            writeln!(w, "wall_hist\t{name}\tcount\t{}", s.count)?;
            writeln!(w, "wall_hist\t{name}\twall_p50_ns\t{}", s.p50_ns)?;
            writeln!(w, "wall_hist\t{name}\twall_p90_ns\t{}", s.p90_ns)?;
            writeln!(w, "wall_hist\t{name}\twall_max_ns\t{}", s.max_ns)?;
        }
        for t in &self.threads {
            let name = Self::thread_name(t.slot);
            writeln!(w, "thread\t{name}\twall_busy_ns\t{}", t.busy_ns)?;
            writeln!(w, "thread\t{name}\twall_idle_ns\t{}", t.idle_ns)?;
            writeln!(w, "thread\t{name}\twall_merge_ns\t{}", t.merge_ns)?;
            writeln!(w, "thread\t{name}\twall_lock_wait_ns\t{}", t.lock_wait_ns)?;
            writeln!(w, "thread\t{name}\twall_lifetime_ns\t{}", t.lifetime_ns)?;
            writeln!(w, "thread\t{name}\twall_items\t{}", t.items)?;
        }
        if self.pool.dispatches > 0 {
            writeln!(w, "pool\tpool\tdispatches\t{}", self.pool.dispatches)?;
            writeln!(w, "pool\tpool\titems\t{}", self.pool.items)?;
            writeln!(w, "pool\tpool\tworkers_max\t{}", self.pool.workers_max)?;
            writeln!(w, "pool\tpool\twall_capacity_ns\t{}", self.pool.capacity_ns)?;
            writeln!(w, "pool\tpool\twall_lifetime_ns\t{}", self.pool.lifetime_ns)?;
            writeln!(
                w,
                "pool\tpool\twall_imbalance_ns\t{}",
                self.pool.imbalance_ns
            )?;
        }
        Ok(())
    }

    /// Writes the human-readable per-phase summary the CLI prints on
    /// exit: spans first (the phase table), then non-zero counters.
    pub fn write_summary<W: Write>(&self, w: &mut W) -> io::Result<()> {
        if !self.spans.is_empty() {
            writeln!(
                w,
                "{:<44} {:>10} {:>12} {:>12}",
                "phase", "calls", "total", "mean"
            )?;
            for (path, s) in &self.spans {
                let total = Duration::from_nanos(clamp_ns(s.total_ns));
                let mean = Duration::from_nanos(clamp_ns(s.total_ns / u128::from(s.count.max(1))));
                writeln!(
                    w,
                    "{:<44} {:>10} {:>12} {:>12}",
                    path,
                    s.count,
                    format_duration(total),
                    format_duration(mean)
                )?;
            }
        }
        let nonzero: Vec<(&String, &u64)> = self.counters.iter().filter(|(_, v)| **v > 0).collect();
        if !nonzero.is_empty() {
            writeln!(w, "{:<44} {:>10}", "counter", "value")?;
            for (name, value) in nonzero {
                writeln!(w, "{name:<44} {value:>10}")?;
            }
        }
        Ok(())
    }
}

fn clamp_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

/// Compact duration formatting for the summary table. Mirrors
/// `soi_util::timer::format_duration`; duplicated privately because
/// `soi-util` depends on this crate, so importing it here would cycle.
fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    if ns < 1_000_000 {
        let us = ns as f64 / 1e3;
        if us < 999.95 {
            return format!("{us:.1}µs");
        }
        return "1.0ms".to_string();
    }
    if ns < 1_000_000_000 {
        let ms = ns as f64 / 1e6;
        if ms < 999.95 {
            return format!("{ms:.1}ms");
        }
        return "1.00s".to_string();
    }
    let secs = ns as f64 / 1e9;
    if secs < 99.995 {
        return format!("{secs:.2}s");
    }
    let total = secs.round() as u128;
    format!("{}m{:02}s", total / 60, total % 60)
}

/// Replaces the value of every `"wall_*":` field in a JSONL report with
/// `0`, leaving deterministic fields untouched. Masked reports from two
/// same-seed runs must be byte-identical.
pub fn mask_wall_clock(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find("\"wall_") {
        let Some(colon_rel) = rest[at..].find(':') else {
            break;
        };
        let value_start = at + colon_rel + 1;
        out.push_str(&rest[..value_start]);
        out.push('0');
        let tail = &rest[value_start..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    fn seeded_work(sleep: bool) -> RunReport {
        crate::reset();
        crate::metrics::counter("test.report.items").add(42);
        crate::metrics::gauge("test.report.ratio").set(0.5);
        crate::metrics::histogram("test.report.sizes", &[2.0, 8.0]).observe(3.0);
        {
            let _s = crate::span("phase_a");
            if sleep {
                std::thread::sleep(Duration::from_millis(2));
            }
            let _inner = crate::span("phase_b");
        }
        let w = crate::metrics::wall_hist("test.report.latency");
        w.observe_ns(if sleep { 2_000_000 } else { 800 });
        w.observe_ns(if sleep { 9_000_000 } else { 1_200 });
        {
            let _reg = crate::perthread::register(0);
            crate::perthread::record_busy(if sleep { 5_000 } else { 1_000 });
            crate::perthread::record_items(4);
            crate::perthread::record_lifetime(if sleep { 6_000 } else { 2_000 });
        }
        crate::perthread::note_dispatch(2, 4, if sleep { 6_000 } else { 2_000 });
        RunReport::collect(&[("command", "test"), ("seed", "42")])
    }

    #[test]
    fn jsonl_lines_are_self_describing() {
        let _g = lock();
        let report = seeded_work(false);
        let text = report.to_jsonl_string();
        assert!(text.contains("{\"type\":\"config\",\"key\":\"command\",\"value\":\"test\"}"));
        assert!(text.contains("{\"type\":\"counter\",\"name\":\"test.report.items\",\"value\":42}"));
        assert!(text.contains("{\"type\":\"gauge\",\"name\":\"test.report.ratio\",\"value\":0.5}"));
        assert!(text
            .contains("{\"type\":\"histogram\",\"name\":\"test.report.sizes\",\"bounds\":[2,8],\"counts\":[0,1,0]}"));
        assert!(text.contains("\"type\":\"span\",\"path\":\"phase_a/phase_b\""));
        assert!(text.contains(
            "\"type\":\"wall_hist\",\"name\":\"test.report.latency\",\"count\":2,\"wall_p50_ns\":"
        ));
        assert!(text.contains("\"type\":\"thread\",\"name\":\"thread.0\",\"wall_busy_ns\":"));
        assert!(text.contains(
            "\"type\":\"pool\",\"name\":\"pool\",\"dispatches\":1,\"items\":4,\"workers_max\":2,"
        ));
    }

    #[test]
    fn masked_reports_are_identical_across_runs() {
        let _g = lock();
        // Two runs with identical counts but very different wall times.
        let fast = seeded_work(false).to_jsonl_string();
        let slow = seeded_work(true).to_jsonl_string();
        assert_ne!(fast, slow, "span timings should differ before masking");
        assert_eq!(mask_wall_clock(&fast), mask_wall_clock(&slow));
    }

    #[test]
    fn mask_only_touches_wall_fields() {
        let line = "{\"type\":\"span\",\"path\":\"x\",\"count\":3,\"wall_ns_total\":981,\"wall_ns_min\":1,\"wall_ns_max\":977}\n";
        let masked = mask_wall_clock(line);
        assert_eq!(
            masked,
            "{\"type\":\"span\",\"path\":\"x\",\"count\":3,\"wall_ns_total\":0,\"wall_ns_min\":0,\"wall_ns_max\":0}\n"
        );
    }

    #[test]
    fn tsv_isolates_wall_fields_by_name() {
        let _g = lock();
        let report = seeded_work(false);
        let mut buf = Vec::new();
        report.write_tsv(&mut buf).expect("write to Vec");
        let text = String::from_utf8_lossy(&buf);
        for line in text.lines() {
            let fields: Vec<&str> = line.split('\t').collect();
            assert_eq!(fields.len(), 4, "bad row: {line}");
            if (fields[0] == "span" || fields[0] == "wall_hist") && fields[2] != "count" {
                assert!(fields[2].starts_with("wall_"), "unmarked timing: {line}");
            }
            if fields[0] == "thread" {
                assert!(fields[2].starts_with("wall_"), "unmarked timing: {line}");
            }
            if fields[0] == "pool" && !matches!(fields[2], "dispatches" | "items" | "workers_max") {
                assert!(fields[2].starts_with("wall_"), "unmarked timing: {line}");
            }
        }
        assert!(text.contains("thread\tthread.0\twall_busy_ns\t"));
        assert!(text.contains("pool\tpool\tdispatches\t1"));
    }

    #[test]
    fn summary_table_lists_phases_and_counters() {
        let _g = lock();
        let report = seeded_work(false);
        let mut buf = Vec::new();
        report.write_summary(&mut buf).expect("write to Vec");
        let text = String::from_utf8_lossy(&buf);
        assert!(text.contains("phase"));
        assert!(text.contains("phase_a/phase_b"));
        assert!(text.contains("test.report.items"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
