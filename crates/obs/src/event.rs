//! A level-filtered structured event log.
//!
//! Library crates emit through [`crate::event!`]; the macro checks
//! [`enabled`] (one relaxed atomic load) before evaluating any format
//! arguments, so disabled events are free. Emitted events go to the
//! configured sink (stderr by default; a capture buffer in tests) as
//! `[level] target: message` lines, and bump a per-level counter in
//! the metrics registry so reports record *how many* events fired —
//! a deterministic count for a fixed level configuration.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The run is compromised.
    Error = 1,
    /// Something is off but the run continues.
    Warn = 2,
    /// Phase-level progress.
    Info = 3,
    /// Per-call detail.
    Debug = 4,
    /// Hot-loop detail.
    Trace = 5,
}

impl Level {
    /// The lowercase level name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parses a `--trace` argument: a level name or `off`.
pub fn parse_level(s: &str) -> Result<Option<Level>, String> {
    match s {
        "off" => Ok(None),
        "error" => Ok(Some(Level::Error)),
        "warn" => Ok(Some(Level::Warn)),
        "info" => Ok(Some(Level::Info)),
        "debug" => Ok(Some(Level::Debug)),
        "trace" => Ok(Some(Level::Trace)),
        other => Err(format!(
            "unknown level {other:?} (off|error|warn|info|debug|trace)"
        )),
    }
}

/// 0 = off; otherwise the most verbose enabled `Level as usize`.
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(0);

/// Sets the most verbose level that emits; `None` disables all events.
pub fn set_max_level(level: Option<Level>) {
    // ordering: independent config cell consulted per event; no event
    // payload is published through it, so a late level flip only
    // delays filtering by a few events.
    MAX_LEVEL.store(level.map_or(0, |l| l as usize), Ordering::Relaxed);
}

/// The currently enabled level, if any.
pub fn max_level() -> Option<Level> {
    // ordering: config read; see `set_max_level`.
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// True when events at `level` would be emitted. One relaxed load.
#[inline]
pub fn enabled(level: Level) -> bool {
    // ordering: hot-path config read; see `set_max_level`.
    level as usize <= MAX_LEVEL.load(Ordering::Relaxed)
}

type Sink = Box<dyn Write + Send>;

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn relock(m: &Mutex<Option<Sink>>) -> MutexGuard<'_, Option<Sink>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Redirects emitted events to `w` (`None` restores the default,
/// stderr). Used by tests and by the CLI to co-locate events with
/// command output.
pub fn set_sink(w: Option<Sink>) {
    *relock(sink()) = w;
}

/// Writes one event. Called by [`crate::event!`] after the level check;
/// prefer the macro, which skips argument evaluation when disabled.
pub fn emit(level: Level, target: &str, args: fmt::Arguments<'_>) {
    crate::counter_add!("obs.events_emitted", 1);
    let mut guard = relock(sink());
    let result = match guard.as_mut() {
        Some(w) => writeln!(w, "[{}] {}: {}", level.name(), target, args),
        None => writeln!(
            std::io::stderr().lock(),
            "[{}] {}: {}",
            level.name(),
            target,
            args
        ),
    };
    let _ = result; // an unwritable sink must not break the run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;
    use std::sync::Arc;

    /// A sink the test can read back after installing it.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Capture {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
                .into_owned()
        }
    }

    #[test]
    fn level_filtering_and_sink_capture() {
        let _g = lock();
        crate::reset();
        let cap = Capture::default();
        set_sink(Some(Box::new(cap.clone())));
        set_max_level(Some(Level::Info));
        crate::event!(Level::Info, "worlds={}", 256);
        crate::event!(Level::Debug, "suppressed {}", 1);
        set_max_level(None);
        set_sink(None);
        let text = cap.text();
        assert!(text.contains("[info]"), "got: {text}");
        assert!(text.contains("worlds=256"));
        assert!(!text.contains("suppressed"));
    }

    #[test]
    fn disabled_events_do_not_evaluate_arguments() {
        let _g = lock();
        crate::reset();
        set_max_level(None);
        let mut evaluated = false;
        crate::event!(Level::Error, "{}", {
            evaluated = true;
            "x"
        });
        assert!(!evaluated, "disabled event evaluated its arguments");
        assert_eq!(crate::metrics::counter("obs.events_emitted").get(), 0);
    }

    #[test]
    fn parse_level_accepts_all_names() {
        assert_eq!(parse_level("off"), Ok(None));
        assert_eq!(parse_level("error"), Ok(Some(Level::Error)));
        assert_eq!(parse_level("trace"), Ok(Some(Level::Trace)));
        assert!(parse_level("loud").is_err());
    }

    #[test]
    fn max_level_round_trips() {
        let _g = lock();
        for l in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            set_max_level(Some(l));
            assert_eq!(max_level(), Some(l));
            assert!(enabled(l));
        }
        set_max_level(None);
        assert_eq!(max_level(), None);
        assert!(!enabled(Level::Error));
    }
}
