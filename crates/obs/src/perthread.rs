//! Per-thread sharded timing accumulators for parallel-overhead
//! attribution.
//!
//! The scaling benches show threads *hurting* (see ROADMAP); this module
//! answers "where do the cycles go" without perturbing the answer. Each
//! worker thread registers itself into one of [`MAX_SLOTS`] fixed
//! accumulator slots and then records busy / idle / merge / lock-wait
//! nanoseconds (plus an item count) with nothing but relaxed atomic adds
//! on its own slot — **no global mutex on the hot path**, and no
//! cross-thread cache-line ping-pong because distinct workers write
//! distinct slots. Aggregation ([`snapshot`]) walks the slots on demand.
//!
//! Dispatchers (the pool's fan-out, the server's worker supervisor) call
//! [`note_dispatch`] with the wall span of one whole parallel region, so
//! a snapshot can compute *capacity* (`workers × span`) and attribute the
//! gap between capacity and tracked work:
//!
//! ```text
//! capacity = busy + idle + merge + lock_wait + untracked + imbalance
//! ```
//!
//! where `untracked` is per-worker lifetime not covered by a recorded
//! category (e.g. per-worker init) and `imbalance` is capacity outside
//! any worker's lifetime (spawn latency, join skew — the classic
//! straggler cost). The identity holds by construction, which is what
//! lets BENCH_summary.json account for the full t1→tN wall-clock gap.
//!
//! Determinism contract: every nanosecond read from a snapshot is
//! wall-clock and must be emitted in `wall_`-prefixed fields (the run
//! report does this); dispatch/item totals are deterministic counts.
//! The whole plane can be switched off with [`set_enabled`] — callers
//! check [`enabled`] before touching `Instant::now()`, so a disabled
//! plane costs one relaxed load per would-be record.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of distinct worker accumulator slots. Workers beyond this
/// share the last slot (attribution degrades gracefully; counts stay
/// exact). 64 covers every realistic pool width in this workspace.
pub const MAX_SLOTS: usize = 64;

/// Slot index used by threads that never registered (the coordinator /
/// main thread). Kept separate so dispatcher-side time never pollutes
/// worker attribution.
const COORDINATOR: usize = MAX_SLOTS;

/// One worker's accumulators. All fields are monotone sums owned by one
/// writer thread at a time; readers tolerate torn *sets* of fields (a
/// snapshot taken mid-dispatch undercounts, it never corrupts).
struct Slot {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    merge_ns: AtomicU64,
    lock_wait_ns: AtomicU64,
    lifetime_ns: AtomicU64,
    items: AtomicU64,
    touched: AtomicBool,
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as an array initializer
const ZERO_SLOT: Slot = Slot {
    busy_ns: AtomicU64::new(0),
    idle_ns: AtomicU64::new(0),
    merge_ns: AtomicU64::new(0),
    lock_wait_ns: AtomicU64::new(0),
    lifetime_ns: AtomicU64::new(0),
    items: AtomicU64::new(0),
    touched: AtomicBool::new(false),
};

/// Worker slots plus one coordinator slot at index [`COORDINATOR`].
static SLOTS: [Slot; MAX_SLOTS + 1] = [ZERO_SLOT; MAX_SLOTS + 1];

/// Pool-level dispatch aggregates (deterministic counts except the
/// capacity sum, which is wall-clock).
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static ITEMS: AtomicU64 = AtomicU64::new(0);
static WORKERS_MAX: AtomicU64 = AtomicU64::new(0);
static CAPACITY_NS: AtomicU64 = AtomicU64::new(0);

/// Runtime gate for the whole plane. Default on: the per-dispatch cost
/// is a handful of `Instant::now()` calls (never per-item), and the
/// overhead bench (`obs_overhead_*`) holds it under 5%.
static ENABLED: AtomicBool = AtomicBool::new(true);

thread_local! {
    /// The slot this thread records into; coordinator until registered.
    static CURRENT: Cell<usize> = const { Cell::new(COORDINATOR) };
}

/// True when per-thread timing is collected. Callers should check this
/// before taking timestamps so a disabled plane costs one relaxed load.
#[inline]
pub fn enabled() -> bool {
    // ordering: self-contained on/off flag; the flag is the whole
    // payload and stale reads only delay the toggle by one record.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the per-thread timing plane on or off (default on). Used by
/// the instrumentation-overhead bench to measure the plane against its
/// own absence.
pub fn set_enabled(on: bool) {
    // ordering: see `enabled` — a config flag, nothing published through it.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Registers the calling thread as worker `index` for the lifetime of
/// the returned guard; records to slot `min(index, MAX_SLOTS - 1)`.
/// Dropping the guard restores the previous registration (so nested
/// parallel regions attribute to the inner worker while active).
#[must_use = "registration lasts only while the guard lives"]
pub fn register(index: usize) -> Registration {
    let slot = index.min(MAX_SLOTS - 1);
    // ordering: touched is a monotone sticky flag read only by
    // `snapshot`; timing-value visibility is not gated on it (a snapshot
    // concurrent with first touch reports a zeroed, touched slot).
    SLOTS[slot].touched.store(true, Ordering::Relaxed);
    let previous = CURRENT.with(|c| c.replace(slot));
    Registration { previous }
}

/// Live worker registration; restores the previous slot on drop.
#[derive(Debug)]
pub struct Registration {
    previous: usize,
}

impl Drop for Registration {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

#[inline]
fn current_slot() -> &'static Slot {
    &SLOTS[CURRENT.with(Cell::get)]
}

/// Adds `ns` of busy (useful work) time to the calling thread's slot.
#[inline]
pub fn record_busy(ns: u64) {
    current_slot().busy_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Adds `ns` of idle (waiting-for-work) time to the calling thread's slot.
#[inline]
pub fn record_idle(ns: u64) {
    current_slot().idle_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Adds `ns` of merge (result aggregation / reply serialization) time.
#[inline]
pub fn record_merge(ns: u64) {
    current_slot().merge_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Adds `ns` spent acquiring contended locks.
#[inline]
pub fn record_lock_wait(ns: u64) {
    current_slot().lock_wait_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Adds `ns` of total in-region thread lifetime (spawn-to-finish of the
/// worker closure). Lifetime minus the recorded categories is the
/// snapshot's per-worker `untracked` residual.
#[inline]
pub fn record_lifetime(ns: u64) {
    current_slot().lifetime_ns.fetch_add(ns, Ordering::Relaxed);
}

/// Adds `n` processed work items to the calling thread's slot.
#[inline]
pub fn record_items(n: u64) {
    current_slot().items.fetch_add(n, Ordering::Relaxed);
}

/// Records one completed parallel region: `workers` threads covered a
/// dispatcher-observed wall span of `span_ns` over `items` work units.
/// Capacity accumulates as `workers × span_ns`.
pub fn note_dispatch(workers: usize, items: usize, span_ns: u64) {
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    ITEMS.fetch_add(items as u64, Ordering::Relaxed);
    WORKERS_MAX.fetch_max(workers as u64, Ordering::Relaxed);
    let capacity = span_ns.saturating_mul(workers as u64);
    CAPACITY_NS.fetch_add(capacity, Ordering::Relaxed);
}

/// One worker slot's aggregated timings. All `*_ns` values are
/// wall-clock; `items` is schedule-dependent for work-stealing callers
/// and must also be treated as nondeterministic in reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadSnap {
    /// Slot index (worker id clamped to [`MAX_SLOTS`]).
    pub slot: usize,
    /// Useful-work nanoseconds.
    pub busy_ns: u64,
    /// Waiting-for-work nanoseconds.
    pub idle_ns: u64,
    /// Result-merge / serialization nanoseconds.
    pub merge_ns: u64,
    /// Contended-lock acquisition nanoseconds.
    pub lock_wait_ns: u64,
    /// Total in-region lifetime nanoseconds.
    pub lifetime_ns: u64,
    /// Work items processed.
    pub items: u64,
}

/// Pool-level dispatch aggregates plus the derived attribution terms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolSnap {
    /// Completed parallel regions (deterministic).
    pub dispatches: u64,
    /// Total work items across regions (deterministic).
    pub items: u64,
    /// Widest region, in workers (deterministic per configuration).
    pub workers_max: u64,
    /// Σ workers × span over regions (wall-clock).
    pub capacity_ns: u64,
    /// Σ worker lifetimes (wall-clock).
    pub lifetime_ns: u64,
    /// `capacity - lifetime`: spawn latency + join skew (wall-clock).
    pub imbalance_ns: u64,
}

/// A reporting read of one accumulator. Snapshots taken while workers
/// are mid-region undercount; they never corrupt.
fn read(a: &AtomicU64) -> u64 {
    // ordering: independent monotone sums read only for reporting;
    // per-field staleness is tolerated by the snapshot contract.
    a.load(Ordering::Relaxed)
}

/// Zeroes one accumulator during [`reset`].
fn zero(a: &AtomicU64) {
    // ordering: reset runs between workloads; racing records merely
    // land in the fresh epoch, which reporting tolerates.
    a.store(0, Ordering::Relaxed)
}

/// Aggregates every touched worker slot plus the pool totals. The
/// coordinator slot is reported as `slot == MAX_SLOTS` only when it
/// recorded anything.
pub fn snapshot() -> (Vec<ThreadSnap>, PoolSnap) {
    let mut threads = Vec::new();
    let mut lifetime_total = 0u64;
    for (i, slot) in SLOTS.iter().enumerate() {
        let snap = ThreadSnap {
            slot: i,
            busy_ns: read(&slot.busy_ns),
            idle_ns: read(&slot.idle_ns),
            merge_ns: read(&slot.merge_ns),
            lock_wait_ns: read(&slot.lock_wait_ns),
            lifetime_ns: read(&slot.lifetime_ns),
            items: read(&slot.items),
        };
        let coordinator_active = i == COORDINATOR
            && (snap.busy_ns | snap.idle_ns | snap.merge_ns | snap.lock_wait_ns | snap.items) != 0;
        // ordering: sticky reporting flag; see `register`.
        let touched = slot.touched.load(Ordering::Relaxed);
        if (i < MAX_SLOTS && touched) || coordinator_active {
            if i < MAX_SLOTS {
                lifetime_total = lifetime_total.saturating_add(snap.lifetime_ns);
            }
            threads.push(snap);
        }
    }
    let capacity = read(&CAPACITY_NS);
    let pool = PoolSnap {
        dispatches: read(&DISPATCHES),
        items: read(&ITEMS),
        workers_max: read(&WORKERS_MAX),
        capacity_ns: capacity,
        lifetime_ns: lifetime_total,
        imbalance_ns: capacity.saturating_sub(lifetime_total),
    };
    (threads, pool)
}

/// Zeroes every slot and the pool aggregates (the enabled flag is
/// configuration and survives). Wired into `soi_obs::reset`.
pub fn reset() {
    for slot in &SLOTS {
        zero(&slot.busy_ns);
        zero(&slot.idle_ns);
        zero(&slot.merge_ns);
        zero(&slot.lock_wait_ns);
        zero(&slot.lifetime_ns);
        zero(&slot.items);
        // ordering: see `zero` — reset between workloads.
        slot.touched.store(false, Ordering::Relaxed);
    }
    zero(&DISPATCHES);
    zero(&ITEMS);
    zero(&WORKERS_MAX);
    zero(&CAPACITY_NS);
}

/// Times `f` and adds the elapsed nanoseconds via `record` when the
/// plane is enabled; calls `f` directly otherwise. The standard shape
/// for instrumenting a coarse region (a chunk loop, a blocking pop).
#[inline]
pub fn timed_region<T>(record: fn(u64), f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    record(clamp_ns(start.elapsed().as_nanos()));
    out
}

/// Saturates a nanosecond count into `u64` (585 years; effectively ∞).
#[inline]
pub fn clamp_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn registered_threads_record_into_their_own_slots() {
        let _g = lock();
        crate::reset();
        std::thread::scope(|s| {
            for t in 0..3usize {
                s.spawn(move || {
                    let _reg = register(t);
                    record_busy((t as u64 + 1) * 100);
                    record_items(t as u64 + 1);
                    record_lifetime((t as u64 + 1) * 150);
                });
            }
        });
        let (threads, pool) = snapshot();
        assert_eq!(threads.len(), 3);
        for (i, th) in threads.iter().enumerate() {
            assert_eq!(th.slot, i);
            assert_eq!(th.busy_ns, (i as u64 + 1) * 100);
            assert_eq!(th.items, i as u64 + 1);
        }
        assert_eq!(pool.lifetime_ns, 150 + 300 + 450);
    }

    #[test]
    fn unregistered_records_land_in_the_coordinator_slot() {
        let _g = lock();
        crate::reset();
        record_busy(40);
        let (threads, _) = snapshot();
        assert_eq!(threads.len(), 1);
        assert_eq!(threads[0].slot, MAX_SLOTS, "coordinator slot");
        assert_eq!(threads[0].busy_ns, 40);
    }

    #[test]
    fn registration_nests_and_restores_on_drop() {
        let _g = lock();
        crate::reset();
        let outer = register(2);
        record_busy(10);
        {
            let _inner = register(5);
            record_busy(20);
        }
        record_busy(1);
        drop(outer);
        record_busy(100); // back to coordinator
        let (threads, _) = snapshot();
        let by_slot = |s: usize| threads.iter().find(|t| t.slot == s).copied();
        assert_eq!(by_slot(2).unwrap().busy_ns, 11);
        assert_eq!(by_slot(5).unwrap().busy_ns, 20);
        assert_eq!(by_slot(MAX_SLOTS).unwrap().busy_ns, 100);
    }

    #[test]
    fn attribution_identity_capacity_covers_lifetime_plus_imbalance() {
        let _g = lock();
        crate::reset();
        let _reg = register(0);
        record_lifetime(700);
        record_busy(600);
        record_idle(50);
        note_dispatch(2, 10, 500); // capacity 1000
        let (threads, pool) = snapshot();
        assert_eq!(pool.capacity_ns, 1000);
        assert_eq!(pool.lifetime_ns, 700);
        assert_eq!(pool.imbalance_ns, 300);
        let th = threads[0];
        let untracked = th.lifetime_ns - th.busy_ns - th.idle_ns - th.merge_ns - th.lock_wait_ns;
        assert_eq!(untracked, 50);
        // The full identity: capacity = categories + untracked + imbalance.
        assert_eq!(
            pool.capacity_ns,
            th.busy_ns + th.idle_ns + th.merge_ns + th.lock_wait_ns + untracked + pool.imbalance_ns
        );
    }

    #[test]
    fn dispatch_totals_accumulate_and_reset_zeroes_everything() {
        let _g = lock();
        crate::reset();
        note_dispatch(4, 100, 50);
        note_dispatch(2, 28, 25);
        let (_, pool) = snapshot();
        assert_eq!(pool.dispatches, 2);
        assert_eq!(pool.items, 128);
        assert_eq!(pool.workers_max, 4);
        assert_eq!(pool.capacity_ns, 250);
        crate::reset();
        let (threads, pool) = snapshot();
        assert!(threads.is_empty());
        assert_eq!(pool, PoolSnap::default());
    }

    #[test]
    fn disabled_plane_skips_timed_regions_but_still_runs_them() {
        let _g = lock();
        crate::reset();
        let _reg = register(0);
        set_enabled(false);
        let v = timed_region(record_busy, || 7);
        set_enabled(true);
        assert_eq!(v, 7);
        let (threads, _) = snapshot();
        assert_eq!(threads[0].busy_ns, 0, "disabled plane recorded time");
        let v2 = timed_region(record_busy, || 9);
        assert_eq!(v2, 9);
    }

    #[test]
    fn out_of_range_workers_share_the_last_slot() {
        let _g = lock();
        crate::reset();
        {
            let _reg = register(MAX_SLOTS + 17);
            record_items(3);
        }
        {
            let _reg = register(MAX_SLOTS * 2);
            record_items(4);
        }
        let (threads, _) = snapshot();
        assert_eq!(threads.len(), 1);
        assert_eq!(threads[0].slot, MAX_SLOTS - 1);
        assert_eq!(threads[0].items, 7);
    }
}
