//! The global metrics registry: named counters, gauges, and
//! fixed-bucket histograms with atomic updates.
//!
//! Handles are `Arc`-backed and cheap to clone; the registry maps names
//! to handles in `BTreeMap`s so snapshots iterate in a deterministic
//! order. [`Registry::reset`] zeroes values *in place* — it never
//! removes entries — so handles cached by [`crate::counter_add!`] call
//! sites survive across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` (relaxed; safe from any thread).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A histogram with fixed upper-bound buckets plus an overflow bucket.
///
/// `bounds` are ascending inclusive upper edges; an observation lands in
/// the first bucket whose bound is `>= x`, or in the overflow bucket.
/// Bucket counts are atomic, so observation is hot-loop safe.
#[derive(Clone, Debug)]
pub struct HistogramMetric {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // bounds.len() + 1 (last = overflow)
}

impl HistogramMetric {
    fn new(bounds: &[f64]) -> HistogramMetric {
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramMetric {
            inner: Arc::new(HistInner {
                bounds: bounds.to_vec(),
                counts,
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, x: f64) {
        let b = self
            .inner
            .bounds
            .iter()
            .position(|&ub| x <= ub)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[b].fetch_add(1, Ordering::Relaxed);
    }

    /// The configured upper bounds (excludes the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    fn reset(&self) {
        for c in self.inner.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-global metric tables.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramMetric>>,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    pub fn counter(&self, name: &str) -> Counter {
        relock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        relock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`. The first caller
    /// fixes the bucket bounds; later bounds are ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> HistogramMetric {
        relock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| HistogramMetric::new(bounds))
            .clone()
    }

    /// Zeroes every registered value in place. Entries (and therefore
    /// cached handles) are preserved.
    pub fn reset(&self) {
        for c in relock(&self.counters).values() {
            c.reset();
        }
        for g in relock(&self.gauges).values() {
            g.reset();
        }
        for h in relock(&self.histograms).values() {
            h.reset();
        }
    }

    /// Counter names and values, sorted by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        relock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Gauge names and values, sorted by name.
    pub fn gauge_values(&self) -> BTreeMap<String, f64> {
        relock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Histogram names with `(bounds, counts)`, sorted by name.
    pub fn histogram_values(&self) -> BTreeMap<String, (Vec<f64>, Vec<u64>)> {
        relock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), (v.bounds().to_vec(), v.counts())))
            .collect()
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name, bounds)`.
pub fn histogram(name: &str, bounds: &[f64]) -> HistogramMetric {
    registry().histogram(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn counters_accumulate_across_threads() {
        let _g = lock();
        crate::reset();
        let c = counter("test.metrics.threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let _g = lock();
        crate::reset();
        let g = gauge("test.metrics.gauge");
        g.set(-3.75);
        assert_eq!(g.get(), -3.75);
        g.set(1e18);
        assert_eq!(g.get(), 1e18);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _g = lock();
        crate::reset();
        let h = histogram("test.metrics.hist", &[1.0, 10.0, 100.0]);
        // Exactly on a bound lands in that bucket (inclusive upper edge).
        for x in [0.5, 1.0] {
            h.observe(x);
        }
        for x in [1.0001, 10.0] {
            h.observe(x);
        }
        for x in [10.5, 100.0] {
            h.observe(x);
        }
        for x in [100.0001, 1e9] {
            h.observe(x);
        }
        assert_eq!(h.counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_bounds_fixed_by_first_registration() {
        let _g = lock();
        crate::reset();
        let a = histogram("test.metrics.hist_fixed", &[5.0]);
        let b = histogram("test.metrics.hist_fixed", &[99.0, 100.0]);
        assert_eq!(b.bounds(), a.bounds());
    }

    #[test]
    fn snapshot_maps_are_name_sorted() {
        let _g = lock();
        crate::reset();
        counter("test.sorted.b").add(2);
        counter("test.sorted.a").add(1);
        let names: Vec<String> = registry()
            .counter_values()
            .into_keys()
            .filter(|k| k.starts_with("test.sorted."))
            .collect();
        assert_eq!(names, vec!["test.sorted.a", "test.sorted.b"]);
    }
}
