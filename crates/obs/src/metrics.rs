//! The global metrics registry: named counters, gauges, and
//! fixed-bucket histograms with atomic updates.
//!
//! Handles are `Arc`-backed and cheap to clone; the registry maps names
//! to handles in `BTreeMap`s so snapshots iterate in a deterministic
//! order. [`Registry::reset`] zeroes values *in place* — it never
//! removes entries — so handles cached by [`crate::counter_add!`] call
//! sites survive across runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter. Cloning shares the value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` (relaxed; safe from any thread).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: self-contained stats cell; readers tolerate a stale
        // count and no other memory is published through it.
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        // ordering: report-boundary reset of a stats cell; callers
        // serialize phases themselves (see `Registry::reset`).
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        // ordering: last-write-wins stats cell; the bits are the whole
        // payload, so no Release fence is needed to publish them.
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ordering: stats read; staleness is acceptable.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        // ordering: report-boundary reset of a stats cell.
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// A histogram with fixed upper-bound buckets plus an overflow bucket.
///
/// `bounds` are ascending inclusive upper edges; an observation lands in
/// the first bucket whose bound is `>= x`, or in the overflow bucket.
/// Bucket counts are atomic, so observation is hot-loop safe.
#[derive(Clone, Debug)]
pub struct HistogramMetric {
    inner: Arc<HistInner>,
}

#[derive(Debug)]
struct HistInner {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // bounds.len() + 1 (last = overflow)
}

impl HistogramMetric {
    fn new(bounds: &[f64]) -> HistogramMetric {
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistogramMetric {
            inner: Arc::new(HistInner {
                bounds: bounds.to_vec(),
                counts,
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, x: f64) {
        let b = self
            .inner
            .bounds
            .iter()
            .position(|&ub| x <= ub)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[b].fetch_add(1, Ordering::Relaxed);
    }

    /// The configured upper bounds (excludes the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            // ordering: each bucket is an independent stats cell; a
            // snapshot taken mid-observation is acceptable.
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations across all buckets.
    pub fn total(&self) -> u64 {
        self.counts().iter().sum()
    }

    fn reset(&self) {
        for c in self.inner.counts.iter() {
            // ordering: report-boundary reset of independent stats cells.
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// A latency histogram over wall-clock nanoseconds, log2-bucketed.
///
/// Unlike [`HistogramMetric`], whose bucket counts are part of the
/// deterministic report surface, a `WallHistogram` records *timings*:
/// only its total observation count is deterministic; the quantiles it
/// reports appear in `wall_`-prefixed fields that
/// [`crate::report::mask_wall_clock`] zeroes. Bucket `b` holds
/// observations with `ns` in `[2^(b-1), 2^b)`, so 64 buckets cover the
/// full `u64` range with ≤ 2x quantile error — plenty for p50/p90
/// service-latency reporting.
#[derive(Clone, Debug)]
pub struct WallHistogram {
    inner: Arc<WallHistInner>,
}

#[derive(Debug)]
struct WallHistInner {
    /// counts[b] = observations with bucket(ns) == b; bucket 0 is ns == 0.
    counts: Vec<AtomicU64>,
    max_ns: AtomicU64,
}

/// A frozen quantile summary of one [`WallHistogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WallHistStat {
    /// Total observations (deterministic given deterministic traffic).
    pub count: u64,
    /// Median latency upper bound in nanoseconds (wall clock).
    pub p50_ns: u64,
    /// 90th-percentile latency upper bound in nanoseconds (wall clock).
    pub p90_ns: u64,
    /// Largest single observation in nanoseconds (wall clock).
    pub max_ns: u64,
}

impl WallHistogram {
    fn new() -> WallHistogram {
        WallHistogram {
            inner: Arc::new(WallHistInner {
                counts: (0..65).map(|_| AtomicU64::new(0)).collect(),
                max_ns: AtomicU64::new(0),
            }),
        }
    }

    /// `ns == 0` lands in bucket 0; otherwise bucket `64 - leading_zeros`.
    fn bucket(ns: u64) -> usize {
        (64 - ns.leading_zeros()) as usize
    }

    /// Records one wall-clock observation.
    pub fn observe_ns(&self, ns: u64) {
        self.inner.counts[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.inner.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] observation.
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner
            .counts
            .iter()
            // ordering: independent stats cells; a mid-observation
            // snapshot is acceptable for latency reporting.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Upper bound (ns) of the bucket containing quantile `q` in `[0,1]`,
    /// clamped to the observed maximum. 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .inner
            .counts
            .iter()
            // ordering: stats snapshot; quantiles already carry ≤ 2x
            // bucket error, so torn cross-bucket reads are in budget.
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Inclusive upper edge of bucket b: 2^b - 1 (bucket 0 is
                // exactly 0).
                let edge = if b == 0 {
                    0
                } else {
                    (1u64 << b).wrapping_sub(1)
                };
                // ordering: stats read of a fetch_max cell.
                return edge.min(self.inner.max_ns.load(Ordering::Relaxed));
            }
        }
        // ordering: stats read of a fetch_max cell.
        self.inner.max_ns.load(Ordering::Relaxed)
    }

    /// A frozen `{count, p50, p90, max}` summary.
    pub fn snapshot(&self) -> WallHistStat {
        WallHistStat {
            count: self.count(),
            p50_ns: self.quantile_ns(0.5),
            p90_ns: self.quantile_ns(0.9),
            // ordering: stats read of a fetch_max cell.
            max_ns: self.inner.max_ns.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for c in self.inner.counts.iter() {
            // ordering: report-boundary reset of independent stats cells.
            c.store(0, Ordering::Relaxed);
        }
        // ordering: report-boundary reset of a stats cell.
        self.inner.max_ns.store(0, Ordering::Relaxed);
    }
}

/// The process-global metric tables.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, HistogramMetric>>,
    wall_hists: Mutex<BTreeMap<String, WallHistogram>>,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    pub fn counter(&self, name: &str) -> Counter {
        relock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        relock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`. The first caller
    /// fixes the bucket bounds; later bounds are ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> HistogramMetric {
        relock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| HistogramMetric::new(bounds))
            .clone()
    }

    /// Returns the wall-clock latency histogram registered under `name`.
    pub fn wall_hist(&self, name: &str) -> WallHistogram {
        relock(&self.wall_hists)
            .entry(name.to_string())
            .or_insert_with(WallHistogram::new)
            .clone()
    }

    /// Zeroes every registered value in place. Entries (and therefore
    /// cached handles) are preserved.
    pub fn reset(&self) {
        for c in relock(&self.counters).values() {
            c.reset();
        }
        for g in relock(&self.gauges).values() {
            g.reset();
        }
        for h in relock(&self.histograms).values() {
            h.reset();
        }
        for w in relock(&self.wall_hists).values() {
            w.reset();
        }
    }

    /// Counter names and values, sorted by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        relock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Gauge names and values, sorted by name.
    pub fn gauge_values(&self) -> BTreeMap<String, f64> {
        relock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Histogram names with `(bounds, counts)`, sorted by name.
    pub fn histogram_values(&self) -> BTreeMap<String, (Vec<f64>, Vec<u64>)> {
        relock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), (v.bounds().to_vec(), v.counts())))
            .collect()
    }

    /// Wall-histogram names with quantile snapshots, sorted by name.
    pub fn wall_hist_values(&self) -> BTreeMap<String, WallHistStat> {
        relock(&self.wall_hists)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name, bounds)`.
pub fn histogram(name: &str, bounds: &[f64]) -> HistogramMetric {
    registry().histogram(name, bounds)
}

/// Shorthand for `registry().wall_hist(name)`.
pub fn wall_hist(name: &str) -> WallHistogram {
    registry().wall_hist(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn counters_accumulate_across_threads() {
        let _g = lock();
        crate::reset();
        let c = counter("test.metrics.threads");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let _g = lock();
        crate::reset();
        let g = gauge("test.metrics.gauge");
        g.set(-3.75);
        assert_eq!(g.get(), -3.75);
        g.set(1e18);
        assert_eq!(g.get(), 1e18);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _g = lock();
        crate::reset();
        let h = histogram("test.metrics.hist", &[1.0, 10.0, 100.0]);
        // Exactly on a bound lands in that bucket (inclusive upper edge).
        for x in [0.5, 1.0] {
            h.observe(x);
        }
        for x in [1.0001, 10.0] {
            h.observe(x);
        }
        for x in [10.5, 100.0] {
            h.observe(x);
        }
        for x in [100.0001, 1e9] {
            h.observe(x);
        }
        assert_eq!(h.counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_bounds_fixed_by_first_registration() {
        let _g = lock();
        crate::reset();
        let a = histogram("test.metrics.hist_fixed", &[5.0]);
        let b = histogram("test.metrics.hist_fixed", &[99.0, 100.0]);
        assert_eq!(b.bounds(), a.bounds());
    }

    #[test]
    fn wall_hist_quantiles_bracket_observations() {
        let _g = lock();
        crate::reset();
        let w = wall_hist("test.metrics.wall");
        // 9 fast observations and one slow outlier: p50 stays near the
        // fast cluster, p90 reaches the outlier's bucket, max is exact.
        for _ in 0..9 {
            w.observe_ns(1_000);
        }
        w.observe_ns(1_000_000);
        let s = w.snapshot();
        assert_eq!(s.count, 10);
        assert!(s.p50_ns >= 1_000 && s.p50_ns < 2_048, "p50 {}", s.p50_ns);
        assert!(s.p90_ns >= 1_000 && s.p90_ns < 2_048, "p90 {}", s.p90_ns);
        assert_eq!(s.max_ns, 1_000_000);
        // The 95th percentile reaches the outlier.
        assert!(w.quantile_ns(0.95) >= 524_288, "{}", w.quantile_ns(0.95));
    }

    #[test]
    fn wall_hist_empty_and_zero() {
        let _g = lock();
        crate::reset();
        let w = wall_hist("test.metrics.wall_empty");
        assert_eq!(w.snapshot(), WallHistStat::default());
        w.observe_ns(0);
        let s = w.snapshot();
        assert_eq!((s.count, s.p50_ns, s.max_ns), (1, 0, 0));
    }

    #[test]
    fn wall_hist_resets_in_place() {
        let _g = lock();
        crate::reset();
        let w = wall_hist("test.metrics.wall_reset");
        w.observe_ns(500);
        crate::reset();
        assert_eq!(w.count(), 0);
        w.observe(std::time::Duration::from_micros(2));
        assert_eq!(w.count(), 1);
        assert_eq!(w.snapshot().max_ns, 2_000);
    }

    #[test]
    fn snapshot_maps_are_name_sorted() {
        let _g = lock();
        crate::reset();
        counter("test.sorted.b").add(2);
        counter("test.sorted.a").add(1);
        let names: Vec<String> = registry()
            .counter_values()
            .into_keys()
            .filter(|k| k.starts_with("test.sorted."))
            .collect();
        assert_eq!(names, vec!["test.sorted.a", "test.sorted.b"]);
    }
}
