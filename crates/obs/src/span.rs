//! Hierarchical wall-clock spans.
//!
//! [`span`] returns a guard; while the guard lives, nested spans (on
//! the *same thread*) record under a `parent/child` path. On drop the
//! elapsed time is folded into a process-global table of
//! [`SpanStat`]s — count, total, min, max — keyed by the full path.
//!
//! Each thread keeps its own path stack, so spans opened on worker
//! threads (e.g. inside `std::thread::scope`) root at that thread's
//! own stack rather than inheriting the spawner's path; aggregation
//! into the shared table is mutex-protected and merge-order
//! independent, which keeps span *counts* deterministic under any
//! scheduling. Only the nanosecond fields are wall-clock.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans at this path (deterministic).
    pub count: u64,
    /// Total elapsed nanoseconds (wall-clock).
    pub total_ns: u128,
    /// Fastest single span (wall-clock).
    pub min_ns: u128,
    /// Slowest single span (wall-clock).
    pub max_ns: u128,
}

impl SpanStat {
    fn record(&mut self, elapsed_ns: u128) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.min_ns = if self.count == 1 {
            elapsed_ns
        } else {
            self.min_ns.min(elapsed_ns)
        };
        self.max_ns = self.max_ns.max(elapsed_ns);
    }
}

thread_local! {
    static PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

fn table() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static TABLE: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn relock(m: &Mutex<BTreeMap<String, SpanStat>>) -> MutexGuard<'_, BTreeMap<String, SpanStat>> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Opens a span named `name` under the current thread's span path.
/// Close it by dropping the guard (usually by leaving scope). Guards
/// must drop in reverse creation order — ordinary lexical scoping
/// guarantees this.
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    PATH.with(|p| p.borrow_mut().push(name));
    SpanGuard {
        start: Instant::now(),
    }
}

/// Runs `f` inside a span named `name`.
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let _guard = span(name);
    f()
}

/// An open span; records its elapsed time into the global table on drop.
#[derive(Debug)]
pub struct SpanGuard {
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        let path = PATH.with(|p| {
            let mut stack = p.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        relock(table()).entry(path).or_default().record(elapsed);
    }
}

/// A sorted snapshot of every span path recorded so far.
pub fn snapshot_spans() -> BTreeMap<String, SpanStat> {
    relock(table()).clone()
}

/// Clears all recorded span statistics.
pub fn reset_spans() {
    relock(table()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn nested_spans_record_hierarchical_paths() {
        let _g = lock();
        crate::reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        let snap = snapshot_spans();
        assert_eq!(snap["outer"].count, 1);
        assert_eq!(snap["outer/inner"].count, 3);
        assert!(snap["outer"].total_ns >= snap["outer/inner"].total_ns);
        assert!(snap["outer/inner"].min_ns <= snap["outer/inner"].max_ns);
    }

    #[test]
    fn spans_nest_per_thread_not_across_threads() {
        let _g = lock();
        crate::reset();
        let _outer = span("parent_thread");
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _w = span("worker");
                    let _n = span("step");
                });
            }
        });
        drop(_outer);
        let snap = snapshot_spans();
        // Workers root at their own stacks: no "parent_thread/worker".
        assert_eq!(snap["worker"].count, 4);
        assert_eq!(snap["worker/step"].count, 4);
        assert!(!snap.contains_key("parent_thread/worker"));
        assert_eq!(snap["parent_thread"].count, 1);
    }

    #[test]
    fn timed_returns_closure_result() {
        let _g = lock();
        crate::reset();
        let v = timed("timed_helper", || 2 + 2);
        assert_eq!(v, 4);
        assert_eq!(snapshot_spans()["timed_helper"].count, 1);
    }
}
