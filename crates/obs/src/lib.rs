//! # soi-obs
//!
//! Dependency-free observability for the spheres-of-influence pipeline:
//! hierarchical wall-clock **spans**, a registry of named **metrics**
//! (counters, gauges, fixed-bucket histograms), a level-filtered
//! **event log**, and **run-report** emitters (JSONL/TSV) that keep
//! deterministic counts separate from wall-clock timings.
//!
//! Everything lives in one process-global registry so instrumentation
//! can be dropped into any crate without threading handles through
//! signatures. The design contract, mirrored by `cargo xtask lint`'s
//! determinism and observability passes:
//!
//! - **Counts are deterministic.** Counters, gauges, histogram bucket
//!   counts, and span *call counts* must depend only on the seeded
//!   inputs — never on wall-clock time. Two same-seed runs produce
//!   byte-identical reports once wall-clock fields are masked with
//!   [`report::mask_wall_clock`].
//! - **Timings are quarantined.** Every nanosecond value in a report
//!   lives in a field whose name starts with `wall_` (JSONL) or whose
//!   TSV field column starts with `wall_`, so golden tests and diff
//!   tooling can ignore them mechanically.
//! - **Hot loops stay hot.** [`counter_add!`] caches its registry
//!   handle in a per-call-site `static`, so the steady-state cost is a
//!   single relaxed atomic add. Disabled events cost one relaxed
//!   atomic load — format arguments are not evaluated.
//!
//! See `docs/OBSERVABILITY.md` for naming conventions and wiring
//! guidance.

pub mod event;
pub mod metrics;
pub mod perthread;
pub mod report;
pub mod span;

pub use event::Level;
pub use metrics::{
    counter, gauge, histogram, wall_hist, Counter, Gauge, HistogramMetric, WallHistStat,
    WallHistogram,
};
pub use report::RunReport;
pub use span::{span, SpanGuard, SpanStat};

/// Resets all global observability state: metric values, span
/// statistics, per-thread timing slots, and event counters. Cached
/// [`counter_add!`] handles stay valid — values are zeroed in place,
/// entries are never removed.
pub fn reset() {
    metrics::registry().reset();
    span::reset_spans();
    perthread::reset();
}

/// Increments a named counter, caching the registry handle at the call
/// site so hot loops pay one relaxed atomic add after the first call.
///
/// ```
/// soi_obs::counter_add!("sampling.worlds_sampled", 1);
/// ```
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $delta:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::counter($name))
            .add($delta as u64);
    }};
}

/// Records one observation in a named fixed-bucket histogram, caching
/// the registry handle at the call site.
///
/// ```
/// soi_obs::hist_observe!("engine.sphere_size", &[1.0, 8.0, 64.0], 5.0);
/// ```
#[macro_export]
macro_rules! hist_observe {
    ($name:expr, $bounds:expr, $value:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::metrics::HistogramMetric> =
            ::std::sync::OnceLock::new();
        HANDLE
            .get_or_init(|| $crate::metrics::histogram($name, $bounds))
            .observe($value as f64);
    }};
}

/// Emits a level-filtered event. When the level is disabled this is a
/// single atomic load; the format arguments are **not** evaluated.
///
/// ```
/// soi_obs::event!(soi_obs::Level::Debug, "sampled {} worlds", 256);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $($arg:tt)*) => {
        if $crate::event::enabled($level) {
            $crate::event::emit($level, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    /// Serializes tests that touch the process-global registry.
    pub fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn counter_add_macro_caches_handle() {
        let _g = lock();
        super::reset();
        for _ in 0..10 {
            crate::counter_add!("test.lib.macro_counter", 2);
        }
        assert_eq!(super::metrics::counter("test.lib.macro_counter").get(), 20);
    }

    #[test]
    fn hist_observe_macro_records() {
        let _g = lock();
        super::reset();
        crate::hist_observe!("test.lib.macro_hist", &[1.0, 10.0], 5);
        let h = super::metrics::histogram("test.lib.macro_hist", &[1.0, 10.0]);
        assert_eq!(h.counts(), vec![0, 1, 0]);
    }

    #[test]
    fn reset_keeps_cached_handles_valid() {
        let _g = lock();
        super::reset();
        crate::counter_add!("test.lib.reset_counter", 7);
        super::reset();
        assert_eq!(super::metrics::counter("test.lib.reset_counter").get(), 0);
        crate::counter_add!("test.lib.reset_counter", 3);
        assert_eq!(super::metrics::counter("test.lib.reset_counter").get(), 3);
    }
}
