//! Jaccard distance over canonical sorted sets.
//!
//! `d_J(A, B) = 1 - |A ∩ B| / |A ∪ B|` (§2.2). We adopt the standard
//! convention `d_J(∅, ∅) = 0` (two identical sets are at distance zero).
//! Jaccard distance is a metric; a property test below exercises the
//! triangle inequality, which the paper's Theorem 1/2 proofs lean on.

/// `|A ∩ B|` for sorted, deduplicated slices, by linear merge.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a not canonical");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b not canonical");
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `|A ∪ B|` for sorted, deduplicated slices.
pub fn union_size(a: &[u32], b: &[u32]) -> usize {
    a.len() + b.len() - intersection_size(a, b)
}

/// Jaccard distance between two canonical sets; `0.0` for two empty sets.
pub fn jaccard_distance(a: &[u32], b: &[u32]) -> f64 {
    let union = union_size(a, b);
    if union == 0 {
        return 0.0;
    }
    let inter = a.len() + b.len() - union;
    1.0 - inter as f64 / union as f64
}

/// Jaccard *similarity* (`1 - distance`); `1.0` for two empty sets.
pub fn jaccard_similarity(a: &[u32], b: &[u32]) -> f64 {
    1.0 - jaccard_distance(a, b)
}

/// Sorts and deduplicates a node list into the canonical set form.
pub fn canonicalize(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_distances() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[1], &[]), 1.0);
        assert_eq!(jaccard_distance(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
        assert!((jaccard_distance(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_counts() {
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(union_size(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 7);
        assert_eq!(intersection_size(&[], &[1, 2]), 0);
        assert_eq!(union_size(&[], &[]), 0);
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        assert_eq!(canonicalize(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(canonicalize(vec![]), Vec::<u32>::new());
    }

    fn set_strategy() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::btree_set(0u32..50, 0..20).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #[test]
        fn distance_is_symmetric_and_bounded(a in set_strategy(), b in set_strategy()) {
            let d = jaccard_distance(&a, &b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert_eq!(d, jaccard_distance(&b, &a));
        }

        #[test]
        fn identity_of_indiscernibles(a in set_strategy(), b in set_strategy()) {
            let d = jaccard_distance(&a, &b);
            prop_assert_eq!(d == 0.0, a == b);
        }

        #[test]
        fn triangle_inequality(
            a in set_strategy(),
            b in set_strategy(),
            c in set_strategy(),
        ) {
            let ab = jaccard_distance(&a, &b);
            let bc = jaccard_distance(&b, &c);
            let ac = jaccard_distance(&a, &c);
            prop_assert!(ac <= ab + bc + 1e-12, "d(a,c)={ac} > {ab}+{bc}");
        }

        #[test]
        fn sizes_consistent(a in set_strategy(), b in set_strategy()) {
            let i = intersection_size(&a, &b);
            let u = union_size(&a, &b);
            prop_assert_eq!(i + u, a.len() + b.len());
            prop_assert!(i <= a.len().min(b.len()));
            prop_assert!(u >= a.len().max(b.len()));
        }
    }
}
