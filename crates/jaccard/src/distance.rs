//! Jaccard distance over canonical sorted sets.
//!
//! `d_J(A, B) = 1 - |A ∩ B| / |A ∪ B|` (§2.2). We adopt the standard
//! convention `d_J(∅, ∅) = 0` (two identical sets are at distance zero).
//! Jaccard distance is a metric; a property test below exercises the
//! triangle inequality, which the paper's Theorem 1/2 proofs lean on.

/// `|A ∩ B|` for sorted, deduplicated slices, by linear merge.
pub fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a not canonical");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b not canonical");
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `|A ∪ B|` for sorted, deduplicated slices.
pub fn union_size(a: &[u32], b: &[u32]) -> usize {
    a.len() + b.len() - intersection_size(a, b)
}

/// Jaccard distance between two canonical sets; `0.0` for two empty sets.
pub fn jaccard_distance(a: &[u32], b: &[u32]) -> f64 {
    let union = union_size(a, b);
    if union == 0 {
        return 0.0;
    }
    let inter = a.len() + b.len() - union;
    1.0 - inter as f64 / union as f64
}

/// Jaccard *similarity* (`1 - distance`); `1.0` for two empty sets.
pub fn jaccard_similarity(a: &[u32], b: &[u32]) -> f64 {
    1.0 - jaccard_distance(a, b)
}

/// Sorts and deduplicates a node list into the canonical set form.
pub fn canonicalize(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[1], &[]), 1.0);
        assert_eq!(jaccard_distance(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
        assert!((jaccard_distance(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_counts() {
        assert_eq!(intersection_size(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 2);
        assert_eq!(union_size(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), 7);
        assert_eq!(intersection_size(&[], &[1, 2]), 0);
        assert_eq!(union_size(&[], &[]), 0);
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        assert_eq!(canonicalize(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(canonicalize(vec![]), Vec::<u32>::new());
    }

    /// Random canonical set over a 50-element universe, from a derived
    /// per-(case, slot) stream.
    fn random_set(case: u64, slot: u64) -> Vec<u32> {
        use soi_util::rng::{Rng, Xoshiro256pp};
        use std::collections::BTreeSet;
        let mut rng = Xoshiro256pp::from_stream(0xD157 ^ slot, case);
        let len = rng.random_range(0usize..20);
        let set: BTreeSet<u32> = (0..len).map(|_| rng.random_range(0u32..50)).collect();
        set.into_iter().collect()
    }

    /// Metric-space properties over 64 seeded random (a, b, c) triples.
    #[test]
    fn distance_is_a_bounded_metric() {
        for case in 0..64u64 {
            let a = random_set(case, 1);
            let b = random_set(case, 2);
            let c = random_set(case, 3);

            // Symmetric and bounded.
            let d = jaccard_distance(&a, &b);
            assert!((0.0..=1.0).contains(&d), "case {case}");
            assert_eq!(d, jaccard_distance(&b, &a), "case {case}");

            // Identity of indiscernibles.
            assert_eq!(d == 0.0, a == b, "case {case}");

            // Triangle inequality.
            let ab = d;
            let bc = jaccard_distance(&b, &c);
            let ac = jaccard_distance(&a, &c);
            assert!(
                ac <= ab + bc + 1e-12,
                "case {case}: d(a,c)={ac} > {ab}+{bc}"
            );
        }
    }

    /// Intersection/union size identities over 64 seeded random pairs.
    #[test]
    fn sizes_consistent() {
        for case in 0..64u64 {
            let a = random_set(case, 4);
            let b = random_set(case, 5);
            let i = intersection_size(&a, &b);
            let u = union_size(&a, &b);
            assert_eq!(i + u, a.len() + b.len(), "case {case}");
            assert!(i <= a.len().min(b.len()), "case {case}");
            assert!(u >= a.len().max(b.len()), "case {case}");
        }
    }
}
