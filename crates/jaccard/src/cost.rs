//! Empirical expected cost `ρ̂(C)` of a candidate median.
//!
//! §3 of the paper: since the true cost `ρ(C) = E[d_J(R_s(G), C)]` is
//! `#P`-hard (Theorem 1), it is estimated as the mean Jaccard distance of
//! `C` to ℓ sampled cascades. The [`IncrementalCost`] evaluator supports
//! the median sweep: it maintains `|C ∩ S_i|` per sample under single-
//! element insertions/removals of `C`, so evaluating a whole family of
//! nested candidates costs `O(Σ|S_i| + n·ℓ)` instead of
//! `O(n · Σ|S_i|)`.

use crate::distance::jaccard_distance;
use std::collections::HashMap;

/// Mean Jaccard distance from `candidate` to every set in `samples`
/// (the unbiased estimator `ρ̂` of the paper). Returns 0 for no samples.
pub fn empirical_cost(candidate: &[u32], samples: &[Vec<u32>]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: f64 = samples.iter().map(|s| jaccard_distance(candidate, s)).sum();
    total / samples.len() as f64
}

/// Incremental cost evaluator over a fixed collection of sample sets.
///
/// Maintains the candidate `C` implicitly through per-sample intersection
/// counters; `insert`/`remove` cost `O(#samples containing the element)`
/// (via an inverted index) and [`IncrementalCost::cost`] is `O(ℓ)`.
pub struct IncrementalCost {
    /// For each element, the indices of samples containing it.
    inverted: HashMap<u32, Vec<u32>>,
    /// `|S_i|` for each sample.
    sizes: Vec<u32>,
    /// `|C ∩ S_i|` for each sample.
    inter: Vec<u32>,
    /// `|C|`.
    candidate_len: usize,
    /// Membership of the current candidate.
    in_candidate: std::collections::HashSet<u32>,
}

impl IncrementalCost {
    /// Builds the evaluator with `C = ∅`.
    pub fn new(samples: &[Vec<u32>]) -> Self {
        let mut inverted: HashMap<u32, Vec<u32>> = HashMap::new();
        for (i, s) in samples.iter().enumerate() {
            debug_assert!(s.windows(2).all(|w| w[0] < w[1]), "sample not canonical");
            for &e in s {
                inverted.entry(e).or_default().push(i as u32);
            }
        }
        IncrementalCost {
            inverted,
            sizes: samples.iter().map(|s| s.len() as u32).collect(),
            inter: vec![0; samples.len()],
            candidate_len: 0,
            in_candidate: std::collections::HashSet::new(),
        }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.sizes.len()
    }

    /// Current candidate size.
    pub fn candidate_len(&self) -> usize {
        self.candidate_len
    }

    /// How many samples contain `element`.
    pub fn frequency(&self, element: u32) -> usize {
        self.inverted.get(&element).map_or(0, |v| v.len())
    }

    /// All distinct elements appearing in any sample.
    pub fn universe(&self) -> impl Iterator<Item = u32> + '_ {
        self.inverted.keys().copied()
    }

    /// Adds `element` to the candidate. No-op if already present.
    pub fn insert(&mut self, element: u32) {
        if !self.in_candidate.insert(element) {
            return;
        }
        self.candidate_len += 1;
        if let Some(ids) = self.inverted.get(&element) {
            for &i in ids {
                self.inter[i as usize] += 1;
            }
        }
    }

    /// Removes `element` from the candidate. No-op if absent.
    pub fn remove(&mut self, element: u32) {
        if !self.in_candidate.remove(&element) {
            return;
        }
        self.candidate_len -= 1;
        if let Some(ids) = self.inverted.get(&element) {
            for &i in ids {
                self.inter[i as usize] -= 1;
            }
        }
    }

    /// The empirical cost `ρ̂(C)` of the current candidate.
    pub fn cost(&self) -> f64 {
        if self.sizes.is_empty() {
            return 0.0;
        }
        let k = self.candidate_len as f64;
        let mut total = 0.0;
        for (i, &sz) in self.sizes.iter().enumerate() {
            let inter = self.inter[i] as f64;
            let union = k + sz as f64 - inter;
            total += if union == 0.0 {
                0.0
            } else {
                1.0 - inter / union
            };
        }
        total / self.sizes.len() as f64
    }

    /// Cost change if `element` were toggled (inserted when absent,
    /// removed when present), without mutating the candidate: returns
    /// `cost_after - cost_before`.
    pub fn toggle_delta(&self, element: u32) -> f64 {
        let ell = self.sizes.len() as f64;
        if ell == 0.0 {
            return 0.0;
        }
        let present = self.in_candidate.contains(&element);
        let k = self.candidate_len as f64;
        let k_after = if present { k - 1.0 } else { k + 1.0 };
        // Samples containing the element get their intersection changed;
        // *all* samples see the union change through |C|.
        let empty: Vec<u32> = Vec::new();
        let containing = self.inverted.get(&element).unwrap_or(&empty);
        let mut is_member = vec![false; 0];
        // Mark containment lazily only when needed for the loop below.
        is_member.resize(self.sizes.len(), false);
        for &i in containing {
            is_member[i as usize] = true;
        }
        let mut delta = 0.0;
        for (i, &sz) in self.sizes.iter().enumerate() {
            let inter = self.inter[i] as f64;
            let union = k + sz as f64 - inter;
            let before = if union == 0.0 {
                0.0
            } else {
                1.0 - inter / union
            };
            let inter_after = if is_member[i] {
                if present {
                    inter - 1.0
                } else {
                    inter + 1.0
                }
            } else {
                inter
            };
            let union_after = k_after + sz as f64 - inter_after;
            let after = if union_after == 0.0 {
                0.0
            } else {
                1.0 - inter_after / union_after
            };
            delta += after - before;
        }
        delta / ell
    }

    /// The current candidate as a canonical sorted vector.
    pub fn candidate(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.in_candidate.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_cost_basics() {
        let samples = vec![vec![1, 2], vec![2, 3]];
        // d({2}, {1,2}) = 0.5; d({2}, {2,3}) = 0.5.
        assert!((empirical_cost(&[2], &samples) - 0.5).abs() < 1e-12);
        assert_eq!(empirical_cost(&[], &[]), 0.0);
        assert_eq!(empirical_cost(&[1, 2], &samples[..1]), 0.0);
    }

    #[test]
    fn incremental_tracks_direct() {
        let samples = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3]];
        let mut inc = IncrementalCost::new(&samples);
        assert!((inc.cost() - empirical_cost(&[], &samples)).abs() < 1e-12);
        for (insert, e) in [(true, 3u32), (true, 2), (true, 9), (false, 2), (false, 9)] {
            if insert {
                inc.insert(e);
            } else {
                inc.remove(e);
            }
            let direct = empirical_cost(&inc.candidate(), &samples);
            assert!(
                (inc.cost() - direct).abs() < 1e-12,
                "after {:?}{}: {} vs {}",
                insert,
                e,
                inc.cost(),
                direct
            );
        }
    }

    #[test]
    fn double_insert_remove_are_noops() {
        let samples = vec![vec![1, 2]];
        let mut inc = IncrementalCost::new(&samples);
        inc.insert(1);
        inc.insert(1);
        assert_eq!(inc.candidate_len(), 1);
        inc.remove(1);
        inc.remove(1);
        assert_eq!(inc.candidate_len(), 0);
        inc.remove(42);
        assert_eq!(inc.cost(), 1.0, "d(∅, {{1,2}}) = 1");
    }

    #[test]
    fn toggle_delta_matches_actual_toggle() {
        let samples = vec![vec![1, 2, 3], vec![2, 4], vec![5]];
        let mut inc = IncrementalCost::new(&samples);
        inc.insert(2);
        inc.insert(5);
        for e in [1u32, 2, 5, 7] {
            let predicted = inc.toggle_delta(e);
            let before = inc.cost();
            let present = inc.candidate().contains(&e);
            if present {
                inc.remove(e);
            } else {
                inc.insert(e);
            }
            let actual = inc.cost() - before;
            assert!(
                (predicted - actual).abs() < 1e-12,
                "element {e}: predicted {predicted}, actual {actual}"
            );
            // Restore.
            if present {
                inc.insert(e);
            } else {
                inc.remove(e);
            }
        }
    }

    #[test]
    fn frequency_and_universe() {
        let samples = vec![vec![1, 2], vec![2], vec![2, 3]];
        let inc = IncrementalCost::new(&samples);
        assert_eq!(inc.frequency(2), 3);
        assert_eq!(inc.frequency(1), 1);
        assert_eq!(inc.frequency(99), 0);
        let mut u: Vec<u32> = inc.universe().collect();
        u.sort_unstable();
        assert_eq!(u, vec![1, 2, 3]);
    }

    /// Incremental cost tracking agrees with the direct computation along
    /// random insert/remove walks. 64 seeded random cases.
    #[test]
    fn incremental_equals_direct_on_random_walks() {
        use soi_util::rng::{Rng, Xoshiro256pp};
        use std::collections::BTreeSet;
        for case in 0..64u64 {
            let mut rng = Xoshiro256pp::from_stream(0xC057, case);
            let samples: Vec<Vec<u32>> = (0..rng.random_range(1usize..8))
                .map(|_| {
                    let len = rng.random_range(0usize..10);
                    let set: BTreeSet<u32> = (0..len).map(|_| rng.random_range(0u32..30)).collect();
                    set.into_iter().collect()
                })
                .collect();
            let mut inc = IncrementalCost::new(&samples);
            for _ in 0..rng.random_range(0usize..40) {
                let insert: bool = rng.random();
                let e = rng.random_range(0u32..35);
                if insert {
                    inc.insert(e)
                } else {
                    inc.remove(e)
                }
                let direct = empirical_cost(&inc.candidate(), &samples);
                assert!((inc.cost() - direct).abs() < 1e-9, "case {case}");
            }
        }
    }
}
