//! # soi-jaccard
//!
//! The set-similarity machinery behind typical cascades:
//!
//! * [`distance`] — Jaccard distance over canonical (sorted, deduplicated)
//!   node-id sets; it is a metric, which §2.2 of the paper relies on;
//! * [`cost`] — the empirical expected cost `ρ̂(C)` of a candidate median
//!   against a collection of sampled cascades, plus an incremental
//!   evaluator used by the sweep algorithm;
//! * [`median`] — Jaccard-median algorithms (Problem 2 of the paper):
//!   majority vote, the frequency-prefix sweep in the spirit of
//!   Chierichetti et al. (SODA 2010) §3.2 achieving a `1 + O(ε)` factor,
//!   bounded local-search polish, and an exact brute force for tiny
//!   universes that anchors the tests;
//! * [`theory`] — the sample-size bounds of Theorem 2
//!   (`ℓ = O(log(1/α)/α²)` gives a `1 + O(α)` approximation, independent
//!   of the graph size).
//!
//! Sets are `Vec<u32>`/`&[u32]`, sorted ascending with no duplicates — the
//! representation cascades arrive in from `soi-sampling`.

pub mod cost;
pub mod distance;
pub mod median;
pub mod theory;

pub use cost::empirical_cost;
pub use distance::jaccard_distance;
pub use median::{jaccard_median, jaccard_median_budgeted, MedianConfig, MedianResult};
