//! Jaccard-median algorithms (Problem 2 of the paper).
//!
//! Given sampled cascades `S_1, …, S_ℓ`, find a set minimizing the mean
//! Jaccard distance. The problem is NP-hard (Chierichetti et al., SODA
//! 2010); the paper uses the practical `1 + O(ε)` algorithm from §3.2 of
//! that work. Our pipeline:
//!
//! 1. **Frequency-prefix sweep** — order elements by sample frequency
//!    (descending) and evaluate *every* prefix of that order with the
//!    incremental cost evaluator. The majority set (elements present in
//!    ≥ ½ the samples, cost at most `ε + O(ε^{3/2})`) is one of these
//!    prefixes, so the sweep can only improve on it.
//! 2. **Local search** — bounded single-element toggles, accepting strict
//!    improvements, to polish the sweep result.
//!
//! An exact exponential solver over tiny universes anchors the tests.

use crate::cost::{empirical_cost, IncrementalCost};
use soi_util::runtime::{Deadline, Outcome};

/// Tuning for [`jaccard_median`].
#[derive(Clone, Copy, Debug)]
pub struct MedianConfig {
    /// Maximum local-search passes over the candidate pool (0 disables
    /// polishing; the sweep result is returned as-is).
    pub local_search_rounds: usize,
    /// Elements with sample frequency strictly below this are never
    /// considered (they can still only help when ε is large; pruning them
    /// bounds the sweep on heavy-tailed cascade collections). Expressed as
    /// a fraction of ℓ in `[0, 1)`.
    pub min_frequency: f64,
}

impl Default for MedianConfig {
    fn default() -> Self {
        MedianConfig {
            local_search_rounds: 2,
            min_frequency: 0.0,
        }
    }
}

/// A median candidate with its empirical cost.
#[derive(Clone, Debug, PartialEq)]
pub struct MedianResult {
    /// The median set, canonical (sorted ascending, deduplicated).
    pub median: Vec<u32>,
    /// Its empirical expected cost `ρ̂(median)` on the input samples.
    pub cost: f64,
}

/// Computes an approximate Jaccard median with default configuration
/// (frequency sweep + 2 local-search rounds).
///
/// ```
/// use soi_jaccard::jaccard_median;
/// let samples = vec![vec![1, 2], vec![2, 3], vec![2]];
/// let r = jaccard_median(&samples);
/// assert_eq!(r.median, vec![2]);          // the stable core
/// assert!((r.cost - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jaccard_median(samples: &[Vec<u32>]) -> MedianResult {
    jaccard_median_with(samples, &MedianConfig::default())
}

/// Computes an approximate Jaccard median with explicit configuration.
///
/// Candidates considered: every prefix of the frequency order (includes
/// the majority set), plus a spread of the input sets themselves (the
/// best input set is a classic 2-approximation for medians in any metric
/// space, and rescues clustered instances where no frequency prefix is
/// good); the best candidate is then polished by local search.
pub fn jaccard_median_with(samples: &[Vec<u32>], config: &MedianConfig) -> MedianResult {
    jaccard_median_budgeted(samples, config, &Deadline::unlimited()).value()
}

/// Budgeted [`jaccard_median_with`]: one tick per candidate evaluation
/// (frequency prefix, input-set candidate, or local-search toggle). On
/// expiry returns the best candidate found so far — always a valid
/// median candidate with a verifiable cost, just possibly less polished.
pub fn jaccard_median_budgeted(
    samples: &[Vec<u32>],
    config: &MedianConfig,
    deadline: &Deadline,
) -> Outcome<MedianResult> {
    if samples.is_empty() {
        return Outcome::Completed(MedianResult {
            median: Vec::new(),
            cost: 0.0,
        });
    }
    soi_obs::counter_add!("median.calls", 1);
    soi_obs::event!(
        soi_obs::Level::Debug,
        "median fit over {} sample sets",
        samples.len()
    );
    let mut done = 0u64;
    let sweep = frequency_sweep_budgeted(samples, config, deadline, &mut done);
    let (mut inc, mut best) = (sweep.inc, sweep.best);
    let stride = samples.len().div_ceil(24).max(1);
    let input_evals = samples.len().div_ceil(stride) as u64;
    // Planned candidate evaluations; local search may converge early, so
    // its contribution is an upper bound (the toggle pool is a subset of
    // the sample universe).
    let total = sweep.order_len as u64
        + input_evals
        + config.local_search_rounds as u64 * sweep.universe_size as u64;

    // Evaluate up to 24 evenly-spaced input sets as candidates.
    for s in samples.iter().step_by(stride) {
        if !deadline.tick(1) {
            return deadline.outcome(best, done, total);
        }
        done += 1;
        soi_obs::counter_add!("median.input_set_evals", 1);
        let cost = empirical_cost(s, samples);
        if cost < best.cost - 1e-15 {
            best = MedianResult {
                median: s.clone(),
                cost,
            };
        }
    }

    if config.local_search_rounds > 0 {
        // Load the evaluator with the winning candidate before polishing.
        let current = inc.candidate();
        for &e in &current {
            if !best.median.contains(&e) {
                inc.remove(e);
            }
        }
        for &e in &best.median {
            inc.insert(e);
        }
        best = local_search_inner(
            &mut inc,
            best,
            config.local_search_rounds,
            deadline,
            &mut done,
        );
    }
    deadline.outcome(best, done, total)
}

/// The majority median: every element present in at least half of the
/// samples (`≥ ⌈ℓ/2⌉`). Chierichetti et al. show its cost is at most
/// `ε + O(ε^{3/2})` where `ε` is the optimum.
pub fn majority_median(samples: &[Vec<u32>]) -> Vec<u32> {
    let inc = IncrementalCost::new(samples);
    let threshold = samples.len().div_ceil(2);
    let mut out: Vec<u32> = inc
        .universe()
        .filter(|&e| inc.frequency(e) >= threshold)
        .collect();
    out.sort_unstable();
    out
}

/// The frequency-prefix sweep alone (no local search), returning the best
/// prefix of the frequency-descending element order.
pub fn frequency_sweep(samples: &[Vec<u32>]) -> MedianResult {
    if samples.is_empty() {
        return MedianResult {
            median: Vec::new(),
            cost: 0.0,
        };
    }
    let mut done = 0u64;
    frequency_sweep_budgeted(
        samples,
        &MedianConfig::default(),
        &Deadline::unlimited(),
        &mut done,
    )
    .best
}

/// Sweep state handed back to the full pipeline: the loaded evaluator,
/// the best prefix, and the unit counts the budgeted caller folds into
/// its progress accounting.
struct SweepState {
    inc: IncrementalCost,
    best: MedianResult,
    order_len: usize,
    universe_size: usize,
}

fn frequency_sweep_budgeted(
    samples: &[Vec<u32>],
    config: &MedianConfig,
    deadline: &Deadline,
    done: &mut u64,
) -> SweepState {
    let mut inc = IncrementalCost::new(samples);
    // Elements ordered by descending frequency; ties by ascending id for
    // determinism.
    let min_count = ((config.min_frequency * samples.len() as f64).ceil() as usize).max(1);
    let universe_size = inc.universe().count();
    let mut order: Vec<(u32, u32)> = inc
        .universe()
        .map(|e| (e, inc.frequency(e) as u32))
        .filter(|&(_, f)| f as usize >= min_count)
        .collect();
    order.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    soi_obs::counter_add!("median.prefix_evals", order.len());
    soi_obs::counter_add!("median.pruned_elements", universe_size - order.len());

    // Evaluate every prefix, starting with the empty set.
    let mut best_cost = inc.cost();
    let mut best_len = 0usize;
    let mut inserted = 0usize;
    for &(e, _) in order.iter() {
        if !deadline.tick(1) {
            break;
        }
        inc.insert(e);
        inserted += 1;
        *done += 1;
        let c = inc.cost();
        if c < best_cost - 1e-15 {
            best_cost = c;
            best_len = inserted;
        }
    }
    // Rewind to the best prefix.
    for &(e, _) in order[best_len..inserted].iter().rev() {
        inc.remove(e);
    }
    let median = inc.candidate();
    debug_assert!((empirical_cost(&median, samples) - best_cost).abs() < 1e-9);
    SweepState {
        inc,
        best: MedianResult {
            median,
            cost: best_cost,
        },
        order_len: order.len(),
        universe_size,
    }
}

/// Local search from an explicit starting candidate: repeatedly applies
/// the single-element toggle with the largest strict improvement, for at
/// most `rounds` full passes over the candidate pool.
pub fn local_search(initial: &[u32], samples: &[Vec<u32>], rounds: usize) -> MedianResult {
    let mut inc = IncrementalCost::new(samples);
    for &e in initial {
        inc.insert(e);
    }
    let start = MedianResult {
        median: inc.candidate(),
        cost: inc.cost(),
    };
    let mut done = 0u64;
    local_search_inner(&mut inc, start, rounds, &Deadline::unlimited(), &mut done)
}

fn local_search_inner(
    inc: &mut IncrementalCost,
    mut best: MedianResult,
    rounds: usize,
    deadline: &Deadline,
    done: &mut u64,
) -> MedianResult {
    // Pool: every element of every sample, plus whatever the starting
    // candidate already contains — elements outside the sample universe
    // can never help (they grow unions without growing intersections) but
    // must stay toggleable so a bad starting candidate can shed them.
    let mut pool: Vec<u32> = inc.universe().chain(best.median.iter().copied()).collect();
    pool.sort_unstable();
    pool.dedup();
    'rounds: for _ in 0..rounds {
        soi_obs::counter_add!("median.local_search_rounds", 1);
        let mut improved = false;
        for &e in &pool {
            if !deadline.tick(1) {
                break 'rounds;
            }
            *done += 1;
            if inc.toggle_delta(e) < -1e-12 {
                soi_obs::counter_add!("median.local_search_toggles", 1);
                // Apply the improving toggle immediately (first-improvement
                // strategy — cheaper than best-improvement and converges to
                // the same local optima class).
                if inc.candidate().contains(&e) {
                    inc.remove(e);
                } else {
                    inc.insert(e);
                }
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let cost = inc.cost();
    if cost < best.cost - 1e-15 {
        best = MedianResult {
            median: inc.candidate(),
            cost,
        };
    }
    best
}

/// Exact Jaccard median by exhaustive search over all subsets of the
/// universe (union of samples). Only for universes of ≤ 22 elements.
pub fn exact_median_bruteforce(samples: &[Vec<u32>]) -> MedianResult {
    let mut universe: Vec<u32> = samples.iter().flatten().copied().collect();
    universe.sort_unstable();
    universe.dedup();
    assert!(universe.len() <= 22, "brute force limited to 22 elements");
    let mut best = MedianResult {
        median: Vec::new(),
        cost: empirical_cost(&[], samples),
    };
    for mask in 1u32..(1 << universe.len()) {
        let candidate: Vec<u32> = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let c = empirical_cost(&candidate, samples);
        if c < best.cost - 1e-15 {
            best = MedianResult {
                median: candidate,
                cost: c,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_yield_that_set() {
        let samples = vec![vec![1, 2, 3]; 5];
        let r = jaccard_median(&samples);
        assert_eq!(r.median, vec![1, 2, 3]);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn empty_inputs() {
        let r = jaccard_median(&[]);
        assert!(r.median.is_empty());
        assert_eq!(r.cost, 0.0);
        // All-empty samples: ∅ is optimal with cost 0.
        let r = jaccard_median(&[vec![], vec![]]);
        assert!(r.median.is_empty());
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn majority_threshold() {
        // Element 1 in 3/4 samples, element 2 in 2/4, element 3 in 1/4.
        let samples = vec![vec![1, 2], vec![1, 2], vec![1, 3], vec![4]];
        assert_eq!(majority_median(&samples), vec![1, 2]);
        // Odd ℓ: threshold is ⌈ℓ/2⌉ = 2 of 3.
        let samples = vec![vec![1], vec![1, 2], vec![2]];
        assert_eq!(majority_median(&samples), vec![1, 2]);
    }

    #[test]
    fn sweep_beats_or_matches_majority() {
        let samples = vec![
            vec![1, 2, 3, 4],
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 5],
            vec![6, 7],
        ];
        let maj = majority_median(&samples);
        let sweep = frequency_sweep(&samples);
        assert!(sweep.cost <= empirical_cost(&maj, &samples) + 1e-12);
    }

    #[test]
    fn known_small_instance() {
        // Samples {1,2},{2,3},{2}: the singleton {2} is optimal:
        // costs 0.5, 0.5, 0 → mean 1/3.
        let samples = vec![vec![1, 2], vec![2, 3], vec![2]];
        let exact = exact_median_bruteforce(&samples);
        assert_eq!(exact.median, vec![2]);
        assert!((exact.cost - 1.0 / 3.0).abs() < 1e-12);
        let ours = jaccard_median(&samples);
        assert_eq!(ours.median, vec![2]);
    }

    #[test]
    fn local_search_only_improves() {
        let samples = vec![vec![1, 2, 3], vec![2, 3, 4], vec![3, 4, 5]];
        let bad_start = vec![9, 10, 11];
        let polished = local_search(&bad_start, &samples, 5);
        assert!(polished.cost <= empirical_cost(&bad_start, &samples) + 1e-12);
        assert!(
            polished.cost <= 0.5,
            "should find something near {{3}}/{{2,3,4}}"
        );
    }

    #[test]
    fn min_frequency_pruning() {
        let samples = vec![vec![1, 2], vec![1, 3], vec![1, 4], vec![1, 5]];
        let config = MedianConfig {
            local_search_rounds: 0,
            min_frequency: 0.9,
        };
        let r = jaccard_median_with(&samples, &config);
        // Only element 1 survives the pruning.
        assert_eq!(r.median, vec![1]);
    }

    #[test]
    fn deterministic_output() {
        let samples = vec![vec![5, 6], vec![6, 7], vec![5, 7], vec![5, 6, 7]];
        let a = jaccard_median(&samples);
        let b = jaccard_median(&samples);
        assert_eq!(a, b);
    }

    /// Random sample collection for the property tests below: 1–6 sets
    /// over a 12-element universe, drawn from a per-case derived stream.
    fn sample_collection(case: u64) -> Vec<Vec<u32>> {
        use soi_util::rng::{Rng, Xoshiro256pp};
        use std::collections::BTreeSet;
        let mut rng = Xoshiro256pp::from_stream(0x3ED1A0, case);
        (0..rng.random_range(1usize..7))
            .map(|_| {
                let len = rng.random_range(0usize..7);
                let set: BTreeSet<u32> = (0..len).map(|_| rng.random_range(0u32..12)).collect();
                set.into_iter().collect()
            })
            .collect()
    }

    /// The pipeline's cost is never worse than majority's and within a
    /// modest factor of the true optimum on small instances. 64 seeded
    /// random cases.
    #[test]
    fn near_optimality_on_small_instances() {
        for case in 0..64u64 {
            let samples = sample_collection(case);
            let exact = exact_median_bruteforce(&samples);
            let ours = jaccard_median(&samples);
            let maj = empirical_cost(&majority_median(&samples), &samples);
            assert!(
                ours.cost <= maj + 1e-12,
                "worse than majority (case {case})"
            );
            // The guarantee is multiplicative with an ε-dependent factor:
            // 1 + O(ε). Use the theory-shaped bound (1 + 2ε*) — tight at
            // small ε, permissive on clustered high-ε instances where the
            // optimum itself is poor.
            assert!(
                ours.cost <= exact.cost * (1.0 + 2.0 * exact.cost) + 1e-9,
                "ours {} vs optimal {} (case {case})",
                ours.cost,
                exact.cost
            );
        }
    }

    #[test]
    fn budgeted_with_unlimited_deadline_matches_plain() {
        for case in 0..16u64 {
            let samples = sample_collection(case);
            let plain = jaccard_median(&samples);
            let budgeted =
                jaccard_median_budgeted(&samples, &MedianConfig::default(), &Deadline::unlimited());
            assert!(budgeted.is_complete());
            assert_eq!(budgeted.value(), plain, "case {case}");
        }
    }

    #[test]
    fn budgeted_partial_result_is_still_valid() {
        let samples = vec![vec![1, 2, 3], vec![2, 3, 4], vec![2, 3], vec![3, 4, 5]];
        // One tick: only the first prefix evaluation happens.
        let d = Deadline::ticks(1);
        let out = jaccard_median_budgeted(&samples, &MedianConfig::default(), &d);
        assert!(!out.is_complete());
        let progress = out.progress().unwrap();
        assert!(progress.done <= progress.total);
        assert!(progress.fraction() < 1.0);
        // The carried candidate still reports a verifiable cost.
        let r = out.value();
        assert!((r.cost - empirical_cost(&r.median, &samples)).abs() < 1e-9);
        // Zero budget: the empty-prefix candidate comes back.
        let out = jaccard_median_budgeted(&samples, &MedianConfig::default(), &Deadline::ticks(0));
        assert!(!out.is_complete());
    }

    /// Reported cost always matches a direct recomputation.
    #[test]
    fn reported_cost_is_verifiable() {
        for case in 64..128u64 {
            let samples = sample_collection(case);
            let r = jaccard_median(&samples);
            let direct = empirical_cost(&r.median, &samples);
            assert!((r.cost - direct).abs() < 1e-9, "case {case}");
        }
    }
}
