//! Sample-size bounds from Theorem 2 of the paper.
//!
//! The striking result of §3: a *constant* number of samples — independent
//! of the graph size — suffices for a multiplicative approximation. For
//! any `α > ε*` (the optimal cost), `ℓ = log(1/α)/α²` samples give a
//! `(1 + O(α))`-approximate median with high probability; to make the
//! guarantee hold simultaneously for every vertex of an `n`-node graph,
//! `ℓ = O(log(n/α)/α²)`.

/// Samples sufficient for a `(1 + O(alpha))`-approximate median of one
/// source node (Theorem 2). `alpha` must be in `(0, 1)`.
pub fn samples_for_alpha(alpha: f64) -> usize {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    ((1.0 / alpha).ln() / (alpha * alpha)).ceil().max(1.0) as usize
}

/// Samples sufficient for the guarantee to hold simultaneously for all `n`
/// vertices (union bound over sources, §4).
pub fn samples_for_all_nodes(n: usize, alpha: f64) -> usize {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    assert!(n >= 1);
    ((n as f64 / alpha).ln() / (alpha * alpha)).ceil().max(1.0) as usize
}

/// The approximation slack `O(sqrt(log(ℓ/δ)/ℓ))` appearing in Theorem 2,
/// up to its constant: useful for reporting expected accuracy of a run.
pub fn sampling_slack(num_samples: usize, delta: f64) -> f64 {
    assert!(num_samples >= 1);
    assert!(delta > 0.0 && delta < 1.0);
    ((num_samples as f64 / delta).ln() / num_samples as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_counts_are_sane() {
        // α = 0.1 → ln(10)/0.01 ≈ 230.
        let l = samples_for_alpha(0.1);
        assert!((225..=235).contains(&l), "{l}");
        // Coarser α needs fewer samples.
        assert!(samples_for_alpha(0.3) < samples_for_alpha(0.1));
        assert!(samples_for_alpha(0.01) > samples_for_alpha(0.1));
    }

    #[test]
    fn all_nodes_bound_grows_logarithmically() {
        let a = samples_for_all_nodes(1_000, 0.2);
        let b = samples_for_all_nodes(1_000_000, 0.2);
        assert!(b > a);
        // log-scaling: a 1000× larger graph costs < 2× the samples here.
        assert!((b as f64) < 2.0 * a as f64, "{a} -> {b}");
    }

    #[test]
    fn slack_shrinks_with_samples() {
        let s1 = sampling_slack(100, 0.05);
        let s2 = sampling_slack(10_000, 0.05);
        assert!(s2 < s1);
        assert!(s2 > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn rejects_bad_alpha() {
        samples_for_alpha(1.5);
    }
}
