//! The typical-cascade solver (§3–§4, Algorithm 2).

use soi_graph::{NodeId, ProbGraph};
use soi_index::CascadeIndex;
use soi_jaccard::median::{jaccard_median_with, MedianConfig};
use soi_sampling::CascadeSampler;
use soi_util::ckpt::{self, ByteReader, Checkpoint, KIND_TYPICAL_CASCADES};
use soi_util::rng::derive_seed;
use soi_util::runtime::{Deadline, Outcome};
use soi_util::SoiError;
use std::path::Path;

/// Power-of-two buckets for the `engine.sphere_size` histogram (sphere
/// sizes are counts, so bucket totals stay deterministic).
const SPHERE_SIZE_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0,
];

/// Configuration for typical-cascade computation.
#[derive(Clone, Copy, Debug)]
pub struct TypicalCascadeConfig {
    /// Cascade samples ℓ used to compute the median (the paper uses 1000).
    pub median_samples: usize,
    /// Fresh, independent samples used to estimate the median's expected
    /// cost (stability). 0 skips the estimate (cost is reported from the
    /// training pool instead).
    pub cost_samples: usize,
    /// Jaccard-median tuning.
    pub median: MedianConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for TypicalCascadeConfig {
    fn default() -> Self {
        TypicalCascadeConfig {
            median_samples: 256,
            cost_samples: 256,
            median: MedianConfig::default(),
            seed: 0,
        }
    }
}

impl TypicalCascadeConfig {
    /// Sizes the sample pools from Theorem 2's bound: `ℓ = log(1/α)/α²`
    /// samples give a `(1 + O(α))`-approximate median whenever the optimal
    /// cost exceeds `α`.
    ///
    /// ```
    /// use soi_core::TypicalCascadeConfig;
    /// let config = TypicalCascadeConfig::for_accuracy(0.1, 7);
    /// assert!(config.median_samples >= 230); // ln(10)/0.01
    /// ```
    pub fn for_accuracy(alpha: f64, seed: u64) -> Self {
        let samples = soi_jaccard::theory::samples_for_alpha(alpha);
        TypicalCascadeConfig {
            median_samples: samples,
            cost_samples: samples,
            median: MedianConfig::default(),
            seed,
        }
    }

    /// Like [`TypicalCascadeConfig::for_accuracy`], but with the union
    /// bound over all `n` vertices (§4), for batch pipelines that need
    /// the guarantee to hold simultaneously for every node.
    pub fn for_accuracy_all_nodes(alpha: f64, num_nodes: usize, seed: u64) -> Self {
        let samples = soi_jaccard::theory::samples_for_all_nodes(num_nodes, alpha);
        TypicalCascadeConfig {
            median_samples: samples,
            cost_samples: samples,
            median: MedianConfig::default(),
            seed,
        }
    }
}

/// A typical cascade (sphere of influence) with its quality measures.
#[derive(Clone, Debug, PartialEq)]
pub struct TypicalCascade {
    /// The median set `C̃*`, canonical (sorted, deduplicated). Contains the
    /// source whenever the source appears in the median — for non-trivial
    /// sources it always does (the source is in every sampled cascade).
    pub median: Vec<NodeId>,
    /// Empirical cost on the training pool (`ρ̂` on the samples used to fit
    /// the median; optimistic).
    pub training_cost: f64,
    /// Expected cost on a fresh pool — the paper's stability measure
    /// `ρ(C̃*)` estimate. Equals `training_cost` when `cost_samples == 0`.
    pub expected_cost: f64,
}

impl TypicalCascade {
    /// Size of the sphere of influence.
    pub fn size(&self) -> usize {
        self.median.len()
    }
}

/// Computes the typical cascade of a single source by direct sampling
/// (no index). The per-query cost is `O(ℓ · cascade work)`; batch callers
/// should build a [`CascadeIndex`] and use [`all_typical_cascades`].
pub fn typical_cascade(
    pg: &ProbGraph,
    source: NodeId,
    config: &TypicalCascadeConfig,
) -> TypicalCascade {
    typical_cascade_of_set(pg, std::slice::from_ref(&source), config)
}

/// Computes the typical cascade of a *seed set* (all seeds active at time
/// zero) — §5 extends the single-source definition this way, and the
/// stability analysis of Figure 8 evaluates it.
pub fn typical_cascade_of_set(
    pg: &ProbGraph,
    seeds: &[NodeId],
    config: &TypicalCascadeConfig,
) -> TypicalCascade {
    assert!(config.median_samples > 0, "need at least one sample");
    soi_obs::counter_add!("engine.tc_queries", 1);
    let _span = soi_obs::span("engine.typical_cascade");
    let train_seed = derive_seed(config.seed, 0x7261696e); // "rain"
    let samples = {
        let _s = soi_obs::span("engine.sample");
        sample_set_cascades(pg, seeds, config.median_samples, train_seed)
    };
    let fit = {
        let _s = soi_obs::span("engine.median_fit");
        jaccard_median_with(&samples, &config.median)
    };
    let expected_cost = if config.cost_samples == 0 {
        fit.cost
    } else {
        let _s = soi_obs::span("engine.cost_eval");
        let eval_seed = derive_seed(config.seed, 0x6576616c); // "eval"
        crate::stability::expected_cost_of_seed_set(
            pg,
            seeds,
            &fit.median,
            config.cost_samples,
            eval_seed,
        )
    };
    TypicalCascade {
        median: fit.median,
        training_cost: fit.cost,
        expected_cost,
    }
}

pub(crate) fn sample_set_cascades(
    pg: &ProbGraph,
    seeds: &[NodeId],
    count: usize,
    seed: u64,
) -> Vec<Vec<NodeId>> {
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut out = Vec::new();
    (0..count)
        .map(|i| {
            let mut rng = soi_sampling::world::world_rng(seed, i);
            sampler.sample_multi(pg, seeds, &mut rng, &mut out);
            let mut set = out.clone();
            set.sort_unstable();
            set
        })
        .collect()
}

/// The typical cascade of one node as produced by the batch pipeline.
#[derive(Clone, Debug)]
pub struct NodeTypicalCascade {
    /// The node.
    pub node: NodeId,
    /// Its typical cascade (canonical sorted set).
    pub median: Vec<NodeId>,
    /// Empirical cost on the index's sample pool.
    pub training_cost: f64,
}

/// Algorithm 2: typical cascades for **every** node of the indexed graph,
/// re-using the ℓ sampled worlds stored in `index`. Fans out across
/// `threads` workers (0 = all cores). Results are in node order and
/// deterministic regardless of thread count.
///
/// The expected-cost (stability) estimate on fresh samples is *not*
/// computed here — it costs another ℓ cascades per node; callers that need
/// it (Figure 4/5 experiments) invoke
/// [`crate::stability::expected_cost`] on the nodes of interest.
pub fn all_typical_cascades(
    index: &CascadeIndex,
    median: &MedianConfig,
    threads: usize,
) -> Vec<NodeTypicalCascade> {
    let n = index.num_nodes();
    let threads = soi_util::pool::effective_threads(threads, n);
    let mut results: Vec<Option<NodeTypicalCascade>> = (0..n).map(|_| None).collect();
    let solve = |v: NodeId| {
        // Per-node phase breakdown — the Figure 4 quantity: index lookup
        // vs median fit, aggregated in the span table.
        soi_obs::counter_add!("engine.nodes_solved", 1);
        let samples = {
            let _s = soi_obs::span("engine.index_lookup");
            index.cascades_of(v)
        };
        let fit = {
            let _s = soi_obs::span("engine.median_fit");
            jaccard_median_with(&samples, median)
        };
        soi_obs::hist_observe!("engine.sphere_size", SPHERE_SIZE_BUCKETS, fit.median.len());
        NodeTypicalCascade {
            node: v,
            median: fit.median,
            training_cost: fit.cost,
        }
    };
    soi_util::pool::for_each_indexed(&mut results, threads, |v, slot| {
        *slot = Some(solve(v as NodeId));
    });
    soi_obs::event!(
        soi_obs::Level::Info,
        "typical cascades solved for {n} nodes on {threads} thread(s)"
    );
    // The chunked scoped threads fill every slot exactly once, and
    // thread::scope joins before this point. xtask-allow: panic_policy
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Options for [`all_typical_cascades_resumable`]: deadline budget,
/// checkpoint location, and resume behavior.
#[derive(Clone, Copy, Debug)]
pub struct EngineRunOpts<'a> {
    /// Cooperative budget, ticked once per node solved.
    pub deadline: &'a Deadline,
    /// Checkpoint file; `None` disables checkpointing.
    pub checkpoint: Option<&'a Path>,
    /// Write a checkpoint every this many nodes (also the block size for
    /// deadline checks). Clamped to at least 1.
    pub checkpoint_every: usize,
    /// Resume from `checkpoint` if it exists (fresh start otherwise).
    pub resume: bool,
}

/// Binds the config fingerprint to everything that changes per-node
/// output: the checkpoint kind and the median tuning. The graph
/// fingerprint (worlds, seed, structure) is carried separately.
fn engine_config_fingerprint(median: &MedianConfig) -> u64 {
    let mut h = soi_util::hash::Mix64Hasher::new();
    h.update_u64(KIND_TYPICAL_CASCADES as u64);
    h.update_u64(median.local_search_rounds as u64);
    h.update_u64(median.min_frequency.to_bits());
    h.finish()
}

/// Payload: u32 count, then per node `u32 node | f64 cost bits | u32 len |
/// len x u32 median`, little-endian throughout.
fn encode_tc_payload(results: &[NodeTypicalCascade]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(results.len() as u32).to_le_bytes());
    for r in results {
        out.extend_from_slice(&r.node.to_le_bytes());
        out.extend_from_slice(&r.training_cost.to_bits().to_le_bytes());
        out.extend_from_slice(&(r.median.len() as u32).to_le_bytes());
        for &m in &r.median {
            out.extend_from_slice(&m.to_le_bytes());
        }
    }
    out
}

fn decode_tc_payload(
    c: &Checkpoint,
    num_nodes: usize,
) -> Result<Vec<NodeTypicalCascade>, SoiError> {
    let mut r = ByteReader::new(&c.payload);
    let count = r.u32("node count")? as usize;
    if count as u64 != c.done_units || count > num_nodes {
        return Err(SoiError::invalid(format!(
            "checkpoint payload holds {count} nodes but header says {} of {num_nodes}",
            c.done_units
        )));
    }
    let mut results = Vec::with_capacity(count);
    for i in 0..count {
        let node = r.u32("node id")?;
        if node as usize != i {
            return Err(SoiError::invalid(format!(
                "checkpoint node {node} out of order at position {i}"
            )));
        }
        let training_cost = f64::from_bits(r.u64("training cost")?);
        let len = r.u32("median length")? as usize;
        if len > num_nodes {
            return Err(SoiError::invalid(format!(
                "checkpoint median of node {node} has {len} > {num_nodes} members"
            )));
        }
        let mut median = Vec::with_capacity(len);
        for _ in 0..len {
            let m = r.u32("median member")?;
            if m as usize >= num_nodes {
                return Err(SoiError::invalid(format!(
                    "checkpoint median member {m} out of range for node {node}"
                )));
            }
            if let Some(&prev) = median.last() {
                if m <= prev {
                    return Err(SoiError::invalid(format!(
                        "checkpoint median of node {node} is not canonical (sorted, unique)"
                    )));
                }
            }
            median.push(m);
        }
        results.push(NodeTypicalCascade {
            node,
            median,
            training_cost,
        });
    }
    r.expect_end("typical-cascade payload")?;
    Ok(results)
}

/// Fault-tolerant [`all_typical_cascades`]: same node-order deterministic
/// output, plus cooperative deadlines and checkpoint/resume.
///
/// Nodes are solved in blocks of `opts.checkpoint_every`; each block ticks
/// the deadline once per node up front, so on expiry the partial value is
/// an exact node-prefix of the uninterrupted run (per-node work depends
/// only on the index and the median config, never on other nodes). After
/// each block a [`KIND_TYPICAL_CASCADES`] checkpoint is written atomically
/// when a path is configured; resuming validates the checkpoint against
/// the index fingerprint and median config and continues from the stored
/// prefix, yielding byte-identical final output.
pub fn all_typical_cascades_resumable(
    index: &CascadeIndex,
    median: &MedianConfig,
    threads: usize,
    opts: &EngineRunOpts<'_>,
) -> Result<Outcome<Vec<NodeTypicalCascade>>, SoiError> {
    let n = index.num_nodes();
    let graph_fp = index.fingerprint();
    let config_fp = engine_config_fingerprint(median);
    let every = opts.checkpoint_every.max(1);
    let threads = soi_util::pool::effective_threads(threads, n);

    let mut results: Vec<NodeTypicalCascade> = Vec::with_capacity(n);
    if opts.resume {
        if let Some(path) = opts.checkpoint.filter(|p| p.exists()) {
            let c = ckpt::read_checkpoint(path, KIND_TYPICAL_CASCADES)?;
            c.validate(KIND_TYPICAL_CASCADES, graph_fp, config_fp)?;
            if c.total_units != n as u64 {
                return Err(SoiError::CkptMismatch {
                    field: "total_units",
                    stored: c.total_units,
                    expected: n as u64,
                });
            }
            results = decode_tc_payload(&c, n)?;
            soi_obs::counter_add!("engine.tc_resumes", 1);
            soi_obs::event!(
                soi_obs::Level::Info,
                "resuming typical cascades from checkpoint: {} of {n} nodes done",
                results.len()
            );
        }
    }

    let solve = |v: NodeId| {
        soi_obs::counter_add!("engine.nodes_solved", 1);
        let samples = {
            let _s = soi_obs::span("engine.index_lookup");
            index.cascades_of(v)
        };
        let fit = {
            let _s = soi_obs::span("engine.median_fit");
            jaccard_median_with(&samples, median)
        };
        soi_obs::hist_observe!("engine.sphere_size", SPHERE_SIZE_BUCKETS, fit.median.len());
        NodeTypicalCascade {
            node: v,
            median: fit.median,
            training_cost: fit.cost,
        }
    };

    let resumed_from = results.len();
    while results.len() < n {
        let start = results.len();
        let end = (start + every).min(n);
        let block_len = (end - start) as u64;
        // First block of this run is unconditional so a budgeted fresh run
        // always makes progress; later blocks stop cleanly at a boundary.
        let proceed = opts.deadline.tick(block_len);
        if start > resumed_from && !proceed {
            break;
        }
        soi_util::failpoint!("engine.block");
        let mut block: Vec<Option<NodeTypicalCascade>> = (start..end).map(|_| None).collect();
        soi_util::pool::for_each_indexed(&mut block, threads, |j, slot| {
            *slot = Some(solve((start + j) as NodeId));
        });
        // Scoped threads fill every slot exactly once. xtask-allow: panic_policy
        results.extend(block.into_iter().map(|r| r.expect("filled")));
        if let Some(path) = opts.checkpoint {
            let c = Checkpoint {
                kind: KIND_TYPICAL_CASCADES,
                graph_fingerprint: graph_fp,
                config_fingerprint: config_fp,
                total_units: n as u64,
                done_units: results.len() as u64,
                payload: encode_tc_payload(&results),
            };
            ckpt::write_checkpoint(path, &c)?;
            soi_obs::counter_add!("engine.tc_checkpoints", 1);
        }
        if !proceed {
            break;
        }
    }
    let done = results.len() as u64;
    Ok(opts.deadline.outcome(results, done, n as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};
    use soi_index::IndexConfig;

    fn small_config() -> TypicalCascadeConfig {
        TypicalCascadeConfig {
            median_samples: 200,
            cost_samples: 200,
            ..TypicalCascadeConfig::default()
        }
    }

    #[test]
    fn deterministic_graph_typical_cascade_is_reachability() {
        let pg = ProbGraph::fixed(gen::path(5), 1.0).unwrap();
        let tc = typical_cascade(&pg, 1, &small_config());
        assert_eq!(tc.median, vec![1, 2, 3, 4]);
        assert_eq!(tc.training_cost, 0.0);
        assert_eq!(tc.expected_cost, 0.0);
    }

    #[test]
    fn isolated_node_sphere_is_itself() {
        let pg = ProbGraph::fixed(gen::path(3), 1e-12).unwrap();
        let tc = typical_cascade(&pg, 0, &small_config());
        assert_eq!(tc.median, vec![0]);
        assert!(tc.expected_cost < 0.01);
    }

    #[test]
    fn high_probability_star_includes_leaves() {
        // Star with p = 0.95: every leaf is in ~95% of cascades, so the
        // median is (almost surely, at ℓ = 200) the full star.
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6 {
            b.add_weighted_edge(0, leaf, 0.95);
        }
        let pg = b.build_prob().unwrap();
        let tc = typical_cascade(&pg, 0, &small_config());
        assert_eq!(tc.median, vec![0, 1, 2, 3, 4, 5]);
        assert!(tc.expected_cost < 0.2, "cost {}", tc.expected_cost);
    }

    #[test]
    fn low_probability_star_excludes_leaves() {
        let mut b = GraphBuilder::new(6);
        for leaf in 1..6 {
            b.add_weighted_edge(0, leaf, 0.05);
        }
        let pg = b.build_prob().unwrap();
        let tc = typical_cascade(&pg, 0, &small_config());
        assert_eq!(tc.median, vec![0], "rare leaves stay out of the sphere");
    }

    #[test]
    fn seed_set_cascade_unions_sources() {
        let mut b = GraphBuilder::new(6);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(2, 3, 1.0);
        let pg = b.build_prob().unwrap();
        let tc = typical_cascade_of_set(&pg, &[0, 2], &small_config());
        assert_eq!(tc.median, vec![0, 1, 2, 3]);
        assert_eq!(tc.expected_cost, 0.0);
    }

    #[test]
    fn expected_cost_close_to_training_cost_with_enough_samples() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        let pg = ProbGraph::fixed(gen::gnm(40, 200, &mut rng), 0.25).unwrap();
        let tc = typical_cascade(&pg, 0, &small_config());
        assert!(
            (tc.training_cost - tc.expected_cost).abs() < 0.1,
            "train {} vs eval {}",
            tc.training_cost,
            tc.expected_cost
        );
    }

    #[test]
    fn batch_matches_index_medians_and_parallel_is_deterministic() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(4);
        let pg = ProbGraph::fixed(gen::gnm(50, 250, &mut rng), 0.3).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 32,
                seed: 6,
                ..IndexConfig::default()
            },
        );
        let serial = all_typical_cascades(&index, &MedianConfig::default(), 1);
        let parallel = all_typical_cascades(&index, &MedianConfig::default(), 4);
        assert_eq!(serial.len(), 50);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.median, b.median);
            assert_eq!(a.training_cost, b.training_cost);
        }
        // Each node's batch median equals a direct median of its indexed
        // cascades.
        for v in [0u32, 17, 42] {
            let direct = jaccard_median_with(&index.cascades_of(v), &MedianConfig::default());
            assert_eq!(serial[v as usize].median, direct.median);
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("soi-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn test_index(num_worlds: usize) -> CascadeIndex {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(9);
        let pg = ProbGraph::fixed(gen::gnm(40, 180, &mut rng), 0.3).unwrap();
        CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds,
                seed: 11,
                ..IndexConfig::default()
            },
        )
    }

    fn assert_same(a: &[NodeTypicalCascade], b: &[NodeTypicalCascade]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.median, y.median);
            assert_eq!(x.training_cost.to_bits(), y.training_cost.to_bits());
        }
    }

    #[test]
    fn resumable_matches_plain_without_interruption() {
        use soi_util::runtime::Deadline;
        let index = test_index(16);
        let plain = all_typical_cascades(&index, &MedianConfig::default(), 2);
        let unlimited = Deadline::unlimited();
        let out = all_typical_cascades_resumable(
            &index,
            &MedianConfig::default(),
            2,
            &EngineRunOpts {
                deadline: &unlimited,
                checkpoint: None,
                checkpoint_every: 7,
                resume: false,
            },
        )
        .unwrap();
        assert!(out.is_complete());
        assert_same(&out.value(), &plain);
    }

    #[test]
    fn deadline_yields_a_node_prefix() {
        use soi_util::runtime::Deadline;
        let index = test_index(16);
        let plain = all_typical_cascades(&index, &MedianConfig::default(), 1);
        let d = Deadline::ticks(10);
        let out = all_typical_cascades_resumable(
            &index,
            &MedianConfig::default(),
            1,
            &EngineRunOpts {
                deadline: &d,
                checkpoint: None,
                checkpoint_every: 5,
                resume: false,
            },
        )
        .unwrap();
        assert!(!out.is_complete());
        let progress = out.progress().unwrap();
        assert_eq!(progress.done, 10);
        assert_eq!(progress.total, 40);
        assert_same(&out.value(), &plain[..10]);
    }

    #[test]
    fn interrupted_run_resumes_to_identical_output() {
        use soi_util::runtime::Deadline;
        let _g = soi_util::failpoint::test_guard();
        let index = test_index(16);
        let plain = all_typical_cascades(&index, &MedianConfig::default(), 2);
        let dir = tmp_dir("resume");
        let path = dir.join("tc.ckpt");
        let _ = std::fs::remove_file(&path);
        let unlimited = Deadline::unlimited();
        let opts = |resume| EngineRunOpts {
            deadline: &unlimited,
            checkpoint: Some(path.as_path()),
            checkpoint_every: 6,
            resume,
        };

        // Crash the third block: blocks 1 and 2 (12 nodes) are durable.
        soi_util::failpoint::install("engine.block=error@3").unwrap();
        let err = all_typical_cascades_resumable(&index, &MedianConfig::default(), 2, &opts(false))
            .unwrap_err();
        assert!(matches!(err, SoiError::Fault { .. }), "{err}");
        soi_util::failpoint::clear();

        let c = ckpt::read_checkpoint(&path, KIND_TYPICAL_CASCADES).unwrap();
        assert_eq!(c.done_units, 12, "two 6-node blocks checkpointed");

        let out = all_typical_cascades_resumable(&index, &MedianConfig::default(), 2, &opts(true))
            .unwrap();
        assert!(out.is_complete());
        assert_same(&out.value(), &plain);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_mismatches_are_rejected() {
        use soi_util::runtime::Deadline;
        let index = test_index(16);
        let dir = tmp_dir("mismatch");
        let path = dir.join("tc.ckpt");
        let unlimited = Deadline::unlimited();
        let opts = |resume| EngineRunOpts {
            deadline: &unlimited,
            checkpoint: Some(path.as_path()),
            checkpoint_every: 50,
            resume,
        };
        all_typical_cascades_resumable(&index, &MedianConfig::default(), 1, &opts(false)).unwrap();

        // Different median config: config fingerprint differs.
        let other = MedianConfig {
            local_search_rounds: 5,
            ..MedianConfig::default()
        };
        let err = all_typical_cascades_resumable(&index, &other, 1, &opts(true)).unwrap_err();
        assert!(
            matches!(
                err,
                SoiError::CkptMismatch {
                    field: "config_fingerprint",
                    ..
                }
            ),
            "{err}"
        );

        // Different index: graph fingerprint differs.
        let other_index = test_index(8);
        let err =
            all_typical_cascades_resumable(&other_index, &MedianConfig::default(), 1, &opts(true))
                .unwrap_err();
        assert!(
            matches!(
                err,
                SoiError::CkptMismatch {
                    field: "graph_fingerprint",
                    ..
                }
            ),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn runs_are_reproducible_across_calls() {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(5);
        let pg = ProbGraph::fixed(gen::gnm(30, 120, &mut rng), 0.3).unwrap();
        let a = typical_cascade(&pg, 3, &small_config());
        let b = typical_cascade(&pg, 3, &small_config());
        assert_eq!(a, b);
    }
}
