//! Stability: the expected cost `ρ(C)` of a candidate sphere of influence.
//!
//! §2.2 of the paper: the expected Jaccard distance between `C` and a
//! random cascade from the source measures how much cascades deviate from
//! the typical one — lower is more stable/reliable. Exact evaluation is
//! `#P`-hard (Theorem 1), so this module provides the Monte-Carlo
//! estimator `ρ̂` used throughout the evaluation (notably Figures 4, 5
//! and 8), plus an exact brute-force evaluator over tiny graphs that the
//! tests compare against.

use soi_graph::{NodeId, ProbGraph};
use soi_jaccard::distance::jaccard_distance;
use soi_sampling::CascadeSampler;

/// Monte-Carlo estimate of `ρ_{G,s}(candidate)` from `samples` fresh
/// cascades. `candidate` must be canonical (sorted, deduplicated).
/// Deterministic in `seed`.
pub fn expected_cost(
    pg: &ProbGraph,
    source: NodeId,
    candidate: &[NodeId],
    samples: usize,
    seed: u64,
) -> f64 {
    expected_cost_of_seed_set(pg, std::slice::from_ref(&source), candidate, samples, seed)
}

/// Monte-Carlo estimate of the expected cost for a *seed set* (Figure 8's
/// stability analysis evaluates exactly this, with 1000 cascades).
pub fn expected_cost_of_seed_set(
    pg: &ProbGraph,
    seeds: &[NodeId],
    candidate: &[NodeId],
    samples: usize,
    seed: u64,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    debug_assert!(
        candidate.windows(2).all(|w| w[0] < w[1]),
        "candidate not canonical"
    );
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut cascade = Vec::new();
    let mut total = 0.0;
    for i in 0..samples {
        let mut rng = soi_sampling::world::world_rng(seed, i);
        sampler.sample_multi(pg, seeds, &mut rng, &mut cascade);
        cascade.sort_unstable();
        total += jaccard_distance(candidate, &cascade);
    }
    total / samples as f64
}

/// An expected-cost estimate with a normal-approximation confidence
/// interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// The point estimate `ρ̂`.
    pub mean: f64,
    /// Half-width of the confidence interval at the requested level.
    pub half_width: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl CostEstimate {
    /// Lower confidence bound, clamped into `[0, 1]`.
    pub fn lo(&self) -> f64 {
        (self.mean - self.half_width).max(0.0)
    }

    /// Upper confidence bound, clamped into `[0, 1]`.
    pub fn hi(&self) -> f64 {
        (self.mean + self.half_width).min(1.0)
    }
}

/// Like [`expected_cost_of_seed_set`], but also reports a
/// normal-approximation confidence interval at `z` standard errors
/// (`z = 1.96` for 95%). Jaccard distances live in `[0, 1]`, so the
/// normal approximation is solid for the sample counts used here.
pub fn expected_cost_with_ci(
    pg: &ProbGraph,
    seeds: &[NodeId],
    candidate: &[NodeId],
    samples: usize,
    seed: u64,
    z: f64,
) -> CostEstimate {
    assert!(samples > 1, "need at least two samples for a CI");
    assert!(z > 0.0, "z must be positive");
    let mut sampler = CascadeSampler::new(pg.num_nodes());
    let mut cascade = Vec::new();
    let mut stats = soi_util::RunningStats::new();
    for i in 0..samples {
        let mut rng = soi_sampling::world::world_rng(seed, i);
        sampler.sample_multi(pg, seeds, &mut rng, &mut cascade);
        cascade.sort_unstable();
        stats.push(jaccard_distance(candidate, &cascade));
    }
    CostEstimate {
        mean: stats.mean(),
        half_width: z * stats.sample_sd() / (samples as f64).sqrt(),
        samples,
    }
}

/// Exact `ρ_{G,s}(C)` by exhaustive enumeration of all `2^E` worlds.
/// Only for ≤ 20 edges; anchors the estimator tests and reproduces the
/// closed-form quantities of Example 1.
pub fn exact_expected_cost_bruteforce(pg: &ProbGraph, source: NodeId, candidate: &[NodeId]) -> f64 {
    let m = pg.num_edges();
    assert!(m <= 20, "brute force limited to 20 edges");
    let g = pg.graph();
    let mut reach = soi_graph::Reachability::new(pg.num_nodes());
    let mut cascade = Vec::new();
    let mut total = 0.0;
    for mask in 0u32..(1 << m) {
        let mut edges = Vec::new();
        let mut prob = 1.0;
        let mut e = 0usize;
        for u in g.nodes() {
            for &v in g.out_neighbors(u) {
                if mask & (1 << e) != 0 {
                    edges.push((u, v));
                    prob *= pg.edge_prob(e);
                } else {
                    prob *= 1.0 - pg.edge_prob(e);
                }
                e += 1;
            }
        }
        // World edges are a subset of pg's arcs, so ids are in range.
        // xtask-allow: panic_policy
        let world = soi_graph::DiGraph::from_edges(pg.num_nodes(), &edges).expect("subset of pg");
        reach.reachable_from(&world, source, &mut cascade);
        cascade.sort_unstable();
        total += prob * jaccard_distance(candidate, &cascade);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, GraphBuilder};

    #[test]
    fn deterministic_graph_has_zero_cost_at_reachability() {
        let pg = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
        assert_eq!(expected_cost(&pg, 0, &[0, 1, 2, 3], 100, 1), 0.0);
        // And positive cost for a wrong candidate.
        assert!(expected_cost(&pg, 0, &[0], 100, 1) > 0.0);
    }

    #[test]
    fn estimator_matches_bruteforce() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 0.6);
        b.add_weighted_edge(0, 2, 0.3);
        b.add_weighted_edge(1, 3, 0.5);
        let pg = b.build_prob().unwrap();
        for candidate in [vec![0], vec![0, 1], vec![0, 1, 3], vec![0, 1, 2, 3]] {
            let exact = exact_expected_cost_bruteforce(&pg, 0, &candidate);
            let est = expected_cost(&pg, 0, &candidate, 200_000, 9);
            assert!(
                (est - exact).abs() < 0.005,
                "candidate {candidate:?}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn theorem1_identity_on_example_reduction() {
        // Sanity-check the Theorem 1 reduction arithmetic on a concrete
        // instance: rel(G, s, t) recovered from ρ(H1), ρ(H2) on G'.
        // G: 0 -> 1 with p = 0.3 (so rel(G, 0, 1) = 0.3), n = 2.
        // G': adds arcs 1 -> 0 and 1 -> 1(dropped) with probability 1.
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 0.3);
        b.add_weighted_edge(1, 0, 1.0); // t -> every node, p = 1
        let gp = b.build_prob().unwrap();
        let n = 2.0;
        let rho_h1 = exact_expected_cost_bruteforce(&gp, 0, &[0, 1]);
        let rho_h2 = exact_expected_cost_bruteforce(&gp, 0, &[0]);
        // The intermediate identity the proof derives,
        //   n·ρ(H1) − (n−1)·ρ(H2) = q(2 − 1/n) − 1 + 1/n,
        // rearranges to rel = 1 − q = (1 − n·ρ(H1) + (n−1)·ρ(H2)) / (2 − 1/n).
        // (The paper's final displayed formula carries an extra −1/n in the
        // numerator, inconsistent with its own intermediate step; we verify
        // the corrected form.)
        let rel = (1.0 - n * rho_h1 + (n - 1.0) * rho_h2) / (2.0 - 1.0 / n);
        assert!((rel - 0.3).abs() < 1e-9, "recovered reliability {rel}");
        // And the intermediate identity itself, with q = 0.7:
        let lhs = n * rho_h1 - (n - 1.0) * rho_h2;
        let rhs = 0.7 * (2.0 - 1.0 / n) - 1.0 + 1.0 / n;
        assert!((lhs - rhs).abs() < 1e-9, "identity: {lhs} vs {rhs}");
    }

    #[test]
    fn seed_set_cost_of_union_candidate() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(0, 1, 1.0);
        b.add_weighted_edge(2, 3, 1.0);
        let pg = b.build_prob().unwrap();
        let c = expected_cost_of_seed_set(&pg, &[0, 2], &[0, 1, 2, 3], 50, 3);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn ci_covers_the_truth_and_shrinks() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(1, 2, 0.5);
        let pg = b.build_prob().unwrap();
        let truth = exact_expected_cost_bruteforce(&pg, 0, &[0, 1]);
        let small = expected_cost_with_ci(&pg, &[0], &[0, 1], 200, 5, 1.96);
        let large = expected_cost_with_ci(&pg, &[0], &[0, 1], 20_000, 5, 1.96);
        assert!(
            truth >= large.lo() && truth <= large.hi(),
            "truth {truth} outside [{}, {}]",
            large.lo(),
            large.hi()
        );
        assert!(
            large.half_width < small.half_width,
            "CI shrinks with samples"
        );
        assert!((large.mean - truth).abs() < 0.01);
    }

    #[test]
    fn ci_degenerate_distribution_has_zero_width() {
        let pg = ProbGraph::fixed(gen::path(3), 1.0).unwrap();
        let est = expected_cost_with_ci(&pg, &[0], &[0, 1, 2], 100, 1, 1.96);
        assert_eq!(est.mean, 0.0);
        assert_eq!(est.half_width, 0.0);
        assert_eq!(est.lo(), 0.0);
        assert_eq!(est.hi(), 0.0);
    }

    #[test]
    fn determinism() {
        let pg = ProbGraph::fixed(gen::star(6), 0.5).unwrap();
        let a = expected_cost(&pg, 0, &[0, 1, 2], 500, 11);
        let b = expected_cost(&pg, 0, &[0, 1, 2], 500, 11);
        assert_eq!(a, b);
    }
}
