//! # soi-core
//!
//! The paper's primary contribution: computing **typical cascades**
//! (spheres of influence) and their **stability**.
//!
//! For a source `s` in a probabilistic graph, the typical cascade is the
//! set `C*` minimizing the expected Jaccard distance to a random cascade
//! from `s` (Problem 1, §2.2). Evaluating that expectation exactly is
//! `#P`-hard (Theorem 1), so the solver follows §3–§4:
//!
//! 1. sample ℓ cascades from `s` (via direct sampling or the shared
//!    [`soi_index::CascadeIndex`]);
//! 2. compute their Jaccard median (Problem 2) with the
//!    `soi-jaccard` pipeline;
//! 3. report the median's *expected cost* on a **fresh** sample pool — the
//!    stability measure of §2.2 — so the estimate is not biased by the
//!    overfitting phenomenon Theorem 2 controls.
//!
//! [`all_typical_cascades`] is Algorithm 2: one shared index, a median per
//! node, optionally fanned out over threads.

pub mod catalog;
pub mod engine;
pub mod stability;

pub use catalog::SphereCatalog;
pub use engine::{
    all_typical_cascades, all_typical_cascades_resumable, typical_cascade, typical_cascade_of_set,
    EngineRunOpts, NodeTypicalCascade, TypicalCascade, TypicalCascadeConfig,
};
pub use stability::{
    expected_cost, expected_cost_of_seed_set, expected_cost_with_ci, CostEstimate,
};
