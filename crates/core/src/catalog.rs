//! A queryable catalog of all spheres of influence.
//!
//! §8 of the paper argues the value of *precomputing* the spheres: once
//! stored, many campaign variants are answered directly without touching
//! the graph again. [`SphereCatalog`] is that artifact — all typical
//! cascades plus an inverted index — with the queries the paper sketches:
//! ranking influencers by reach or reliability, finding who covers a
//! target segment, and feeding any subset straight into the max-cover
//! machinery.

use crate::engine::NodeTypicalCascade;
use soi_graph::NodeId;
use std::collections::HashMap;

/// All spheres of influence of a network, indexed both ways.
pub struct SphereCatalog {
    spheres: Vec<NodeTypicalCascade>,
    /// `covered_by[v]` = nodes whose sphere contains `v`.
    covered_by: HashMap<NodeId, Vec<NodeId>>,
}

impl SphereCatalog {
    /// Builds a catalog from the output of
    /// [`crate::all_typical_cascades`]. Expects one entry per node in
    /// node order (as that function returns).
    pub fn new(spheres: Vec<NodeTypicalCascade>) -> Self {
        let mut covered_by: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for s in &spheres {
            for &covered in &s.median {
                covered_by.entry(covered).or_default().push(s.node);
            }
        }
        SphereCatalog {
            spheres,
            covered_by,
        }
    }

    /// Number of cataloged nodes.
    pub fn len(&self) -> usize {
        self.spheres.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.spheres.is_empty()
    }

    /// The sphere record of node `v`, if cataloged.
    pub fn sphere(&self, v: NodeId) -> Option<&NodeTypicalCascade> {
        self.spheres.get(v as usize).filter(|s| s.node == v)
    }

    /// All sphere sets in node order — the input shape `infmax_tc` takes.
    pub fn cascade_sets(&self) -> Vec<Vec<NodeId>> {
        self.spheres.iter().map(|s| s.median.clone()).collect()
    }

    /// Nodes ranked by sphere size (descending; ties toward smaller id).
    /// The paper's "large spheres are reliable influencers" shortlist.
    pub fn top_by_reach(&self, k: usize) -> Vec<&NodeTypicalCascade> {
        let mut ranked: Vec<&NodeTypicalCascade> = self.spheres.iter().collect();
        ranked.sort_by(|a, b| {
            b.median
                .len()
                .cmp(&a.median.len())
                .then(a.node.cmp(&b.node))
        });
        ranked.truncate(k);
        ranked
    }

    /// Nodes with sphere size ≥ `min_size`, ranked by stability (lowest
    /// training cost first) — "reliable influencers" in the paper's sense.
    pub fn most_reliable(&self, min_size: usize, k: usize) -> Vec<&NodeTypicalCascade> {
        let mut ranked: Vec<&NodeTypicalCascade> = self
            .spheres
            .iter()
            .filter(|s| s.median.len() >= min_size)
            .collect();
        ranked.sort_by(|a, b| {
            a.training_cost
                .total_cmp(&b.training_cost)
                .then(a.node.cmp(&b.node))
        });
        ranked.truncate(k);
        ranked
    }

    /// The nodes whose typical cascade covers `target` — candidate seeds
    /// for reaching one specific user/segment member.
    pub fn influencers_of(&self, target: NodeId) -> &[NodeId] {
        self.covered_by
            .get(&target)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// How many of `targets` are covered by at least one sphere of
    /// `seeds` — a coverage check for a proposed campaign.
    pub fn coverage_of(&self, seeds: &[NodeId], targets: &[NodeId]) -> usize {
        let mut covered = std::collections::HashSet::new();
        for &s in seeds {
            if let Some(sphere) = self.sphere(s) {
                covered.extend(sphere.median.iter().copied());
            }
        }
        targets.iter().filter(|t| covered.contains(t)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(node: NodeId, median: Vec<NodeId>, cost: f64) -> NodeTypicalCascade {
        NodeTypicalCascade {
            node,
            median,
            training_cost: cost,
        }
    }

    fn toy_catalog() -> SphereCatalog {
        SphereCatalog::new(vec![
            record(0, vec![0, 1, 2], 0.3),
            record(1, vec![1], 0.0),
            record(2, vec![2, 3], 0.1),
            record(3, vec![0, 2, 3], 0.5),
        ])
    }

    #[test]
    fn lookup_and_sets() {
        let c = toy_catalog();
        assert_eq!(c.len(), 4);
        assert_eq!(c.sphere(2).unwrap().median, vec![2, 3]);
        assert!(c.sphere(9).is_none());
        assert_eq!(c.cascade_sets().len(), 4);
    }

    #[test]
    fn reach_ranking() {
        let c = toy_catalog();
        let top = c.top_by_reach(2);
        // Sizes: node 0 -> 3, node 3 -> 3 (tie, smaller id first).
        assert_eq!(top[0].node, 0);
        assert_eq!(top[1].node, 3);
    }

    #[test]
    fn reliability_ranking_filters_by_size() {
        let c = toy_catalog();
        let reliable = c.most_reliable(2, 10);
        // min_size 2 keeps nodes 0 (0.3), 2 (0.1), 3 (0.5); by cost: 2, 0, 3.
        let ids: Vec<NodeId> = reliable.iter().map(|s| s.node).collect();
        assert_eq!(ids, vec![2, 0, 3]);
    }

    #[test]
    fn inverted_index() {
        let c = toy_catalog();
        assert_eq!(c.influencers_of(2), &[0, 2, 3]);
        assert_eq!(c.influencers_of(1), &[0, 1]);
        assert!(c.influencers_of(42).is_empty());
    }

    #[test]
    fn coverage_check() {
        let c = toy_catalog();
        assert_eq!(c.coverage_of(&[0], &[1, 2, 3]), 2);
        assert_eq!(c.coverage_of(&[0, 2], &[1, 2, 3]), 3);
        assert_eq!(c.coverage_of(&[], &[1]), 0);
        assert_eq!(c.coverage_of(&[1], &[]), 0);
    }

    #[test]
    fn end_to_end_from_engine() {
        use soi_graph::{gen, ProbGraph};
        use soi_index::{CascadeIndex, IndexConfig};
        let pg = ProbGraph::fixed(gen::star(10), 0.9).unwrap();
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 64,
                seed: 1,
                ..IndexConfig::default()
            },
        );
        let catalog =
            SphereCatalog::new(crate::all_typical_cascades(&index, &Default::default(), 1));
        // The hub has by far the largest sphere.
        assert_eq!(catalog.top_by_reach(1)[0].node, 0);
        // Every leaf is covered by the hub's sphere.
        for leaf in 1..10u32 {
            assert!(catalog.influencers_of(leaf).contains(&0));
        }
    }
}
