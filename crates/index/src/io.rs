//! Cascade-index persistence.
//!
//! §8 of the paper: "having the spheres of influence precomputed and
//! stored in an index might provide a direct solution to several variants
//! of influence maximization" — campaigns are re-run against a stored
//! index without resampling. This module serializes a [`CascadeIndex`] to
//! a compact little-endian binary format with a magic header and version
//! byte; loads verify structural invariants before returning.
//!
//! Format (v1), all integers little-endian:
//!
//! ```text
//! magic "SOIIDX\0" (7 bytes) | version u8
//! num_nodes u64 | num_worlds u64 | seed u64 | reduced u8
//! per world:
//!   num_comps u64 | dag_edges u64
//!   dag offsets  (num_comps + 1) x u64
//!   dag targets  dag_edges x u32
//!   member_offsets (num_comps + 1) x u64
//!   members      num_nodes x u32
//! comp_matrix    (num_nodes * num_worlds) x u32
//! ```

use crate::{CascadeIndex, IndexConfig, WorldIndex};
use soi_graph::DiGraph;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 7] = b"SOIIDX\0";
const VERSION: u8 = 1;

/// Errors loading a stored index.
#[derive(Debug)]
pub enum LoadError {
    /// The stream does not start with the expected magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Structural inconsistency (corrupt or truncated payload).
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a cascade-index stream (bad magic)"),
            LoadError::BadVersion(v) => write!(f, "unsupported index version {v}"),
            LoadError::Corrupt(m) => write!(f, "corrupt index: {m}"),
            LoadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<LoadError> for soi_util::SoiError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(io) => soi_util::SoiError::io("cascade index", io),
            other => soi_util::SoiError::Invalid(other.to_string()),
        }
    }
}

fn w_u64<W: Write>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn w_u32<W: Write>(w: &mut W, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes `index` to `out` in the v1 binary format.
pub fn save_index<W: Write>(index: &CascadeIndex, mut out: W) -> io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION])?;
    w_u64(&mut out, index.num_nodes() as u64)?;
    w_u64(&mut out, index.num_worlds() as u64)?;
    w_u64(&mut out, index.config().seed)?;
    out.write_all(&[index.config().transitive_reduction as u8])?;
    for i in 0..index.num_worlds() {
        let w = index.world(i);
        let nc = w.num_comps();
        w_u64(&mut out, nc as u64)?;
        w_u64(&mut out, w.dag.num_edges() as u64)?;
        // CSR arrays of the DAG.
        let mut offset = 0usize;
        w_u64(&mut out, 0)?;
        for c in 0..nc as u32 {
            offset += w.dag.out_degree(c);
            w_u64(&mut out, offset as u64)?;
        }
        for c in 0..nc as u32 {
            for &t in w.dag.out_neighbors(c) {
                w_u32(&mut out, t)?;
            }
        }
        // Member lists.
        for c in 0..=nc {
            w_u64(&mut out, w.member_offset(c) as u64)?;
        }
        for c in 0..nc as u32 {
            for &m in w.members_of(c) {
                w_u32(&mut out, m)?;
            }
        }
    }
    for v in 0..index.num_nodes() {
        for i in 0..index.num_worlds() {
            w_u32(&mut out, index.comp_of(v as u32, i))?;
        }
    }
    Ok(())
}

/// Reads an index previously written with [`save_index`].
pub fn load_index<R: Read>(mut input: R) -> Result<CascadeIndex, LoadError> {
    let mut magic = [0u8; 7];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let mut version = [0u8; 1];
    input.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(LoadError::BadVersion(version[0]));
    }
    let num_nodes = r_u64(&mut input)? as usize;
    let num_worlds = r_u64(&mut input)? as usize;
    let seed = r_u64(&mut input)?;
    let mut reduced = [0u8; 1];
    input.read_exact(&mut reduced)?;
    if num_worlds == 0 {
        return Err(LoadError::Corrupt("zero worlds".into()));
    }
    // Guard against absurd sizes before allocating.
    const MAX_REASONABLE: u64 = 1 << 40;
    if (num_nodes as u64) * (num_worlds as u64) > MAX_REASONABLE {
        return Err(LoadError::Corrupt("implausible dimensions".into()));
    }

    let mut worlds = Vec::with_capacity(num_worlds);
    let mut max_comps = 0usize;
    for wi in 0..num_worlds {
        let nc = r_u64(&mut input)? as usize;
        let ne = r_u64(&mut input)? as usize;
        if nc > num_nodes {
            return Err(LoadError::Corrupt(format!(
                "world {wi}: {nc} components > {num_nodes} nodes"
            )));
        }
        let mut offsets = Vec::with_capacity(nc + 1);
        for _ in 0..=nc {
            offsets.push(r_u64(&mut input)? as usize);
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&ne) {
            return Err(LoadError::Corrupt(format!("world {wi}: bad dag offsets")));
        }
        if offsets.windows(2).any(|p| p[0] > p[1]) {
            return Err(LoadError::Corrupt(format!(
                "world {wi}: non-monotone dag offsets"
            )));
        }
        let mut targets = Vec::with_capacity(ne);
        for _ in 0..ne {
            let t = r_u32(&mut input)?;
            if t as usize >= nc {
                return Err(LoadError::Corrupt(format!(
                    "world {wi}: dag target {t} out of range"
                )));
            }
            targets.push(t);
        }
        // Per-node slices must be sorted for DiGraph::from_csr_parts.
        for c in 0..nc {
            let s = &targets[offsets[c]..offsets[c + 1]];
            if s.windows(2).any(|p| p[0] > p[1]) {
                return Err(LoadError::Corrupt(format!(
                    "world {wi}: unsorted dag adjacency"
                )));
            }
        }
        let dag = DiGraph::from_csr_parts(offsets, targets);

        let mut member_offsets = Vec::with_capacity(nc + 1);
        for _ in 0..=nc {
            member_offsets.push(r_u64(&mut input)? as usize);
        }
        if member_offsets.first() != Some(&0)
            || member_offsets.last() != Some(&num_nodes)
            || member_offsets.windows(2).any(|p| p[0] > p[1])
        {
            return Err(LoadError::Corrupt(format!(
                "world {wi}: bad member offsets"
            )));
        }
        let mut members = Vec::with_capacity(num_nodes);
        for _ in 0..num_nodes {
            let m = r_u32(&mut input)?;
            if m as usize >= num_nodes {
                return Err(LoadError::Corrupt(format!(
                    "world {wi}: member {m} out of range"
                )));
            }
            members.push(m);
        }
        max_comps = max_comps.max(nc);
        worlds.push(WorldIndex::from_parts(dag, member_offsets, members));
    }

    let mut comp_matrix = vec![0u32; num_nodes * num_worlds];
    for slot in comp_matrix.iter_mut() {
        *slot = r_u32(&mut input)?;
    }
    // Validate matrix entries against each world's component count.
    for v in 0..num_nodes {
        for (i, world) in worlds.iter().enumerate() {
            let c = comp_matrix[v * num_worlds + i];
            if c as usize >= world.num_comps() {
                return Err(LoadError::Corrupt(format!(
                    "node {v}, world {i}: component {c} out of range"
                )));
            }
        }
    }

    Ok(CascadeIndex::from_parts(
        num_nodes,
        worlds,
        comp_matrix,
        max_comps,
        IndexConfig {
            num_worlds,
            seed,
            transitive_reduction: reduced[0] != 0,
            threads: 0,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::{gen, ProbGraph};

    fn sample_index() -> CascadeIndex {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(3);
        let pg = ProbGraph::fixed(gen::gnm(40, 160, &mut rng), 0.3).unwrap();
        CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 8,
                seed: 5,
                ..IndexConfig::default()
            },
        )
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let index = sample_index();
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let loaded = load_index(&buf[..]).unwrap();
        assert_eq!(loaded.num_nodes(), index.num_nodes());
        assert_eq!(loaded.num_worlds(), index.num_worlds());
        assert_eq!(loaded.config().seed, index.config().seed);
        for v in 0..index.num_nodes() as u32 {
            assert_eq!(loaded.cascades_of(v), index.cascades_of(v), "node {v}");
        }
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let index = sample_index();
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(load_index(&bad[..]), Err(LoadError::BadMagic)));
        let mut bad = buf.clone();
        bad[7] = 99;
        assert!(matches!(
            load_index(&bad[..]),
            Err(LoadError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let index = sample_index();
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        for cut in [10, buf.len() / 2, buf.len() - 1] {
            assert!(
                matches!(load_index(&buf[..cut]), Err(LoadError::Io(_))),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_corrupted_component_ids() {
        let index = sample_index();
        let mut buf = Vec::new();
        save_index(&index, &mut buf).unwrap();
        // The comp matrix is the last num_nodes*num_worlds u32s; blast one
        // to a huge value.
        let pos = buf.len() - 4;
        buf[pos..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(load_index(&buf[..]), Err(LoadError::Corrupt(_))));
    }

    #[test]
    fn empty_stream_fails_cleanly() {
        assert!(matches!(load_index(&b""[..]), Err(LoadError::Io(_))));
    }
}
