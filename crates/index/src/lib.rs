//! # soi-index
//!
//! The cascade index of §4 (Algorithm 1 of the paper).
//!
//! To compute typical cascades for *every* node, the paper samples ℓ
//! possible worlds once and stores each world compactly:
//!
//! 1. the **condensation** of the world's SCCs — all vertices of one SCC
//!    share a reachability set, so cascades only need component-level DFS;
//! 2. after a **transitive reduction** of the condensation — reachability
//!    is preserved with the minimum number of DAG arcs;
//! 3. a **node × world matrix** `I[v, i]` giving the component of `v` in
//!    world `i`.
//!
//! The cascade of `v` in world `i` is then: DFS from `I[v, i]` over the
//! reduced condensation, union of the member lists of reached components —
//! time linear in the output plus the condensation arcs traversed.
//!
//! Worlds are derived deterministically from `(seed, world-id)`, so a
//! build is reproducible bit-for-bit regardless of thread count.

pub mod io;

use soi_graph::{scc::Condensation, transitive, DiGraph, NodeId, ProbGraph, Reachability};
use soi_sampling::world::world_rng;
use soi_sampling::WorldSampler;

/// Build-time options for [`CascadeIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IndexConfig {
    /// Number of possible worlds ℓ to sample (the paper uses 1000).
    pub num_worlds: usize,
    /// Master seed; world `i` uses the sub-seed `derive_seed(seed, i)`.
    pub seed: u64,
    /// Apply transitive reduction to each condensation (§4). Reduces arc
    /// storage and query traversal cost at some build-time expense.
    pub transitive_reduction: bool,
    /// Worker threads for the build (0 = all available cores).
    pub threads: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            num_worlds: 256,
            seed: 0,
            transitive_reduction: true,
            threads: 0,
        }
    }
}

/// One sampled world, stored as its (reduced) condensation plus component
/// member lists. The per-node component assignment lives in the index's
/// shared matrix.
#[derive(Clone, Debug)]
pub struct WorldIndex {
    /// Condensation DAG over component ids (transitively reduced when the
    /// config asked for it).
    pub dag: DiGraph,
    member_offsets: Vec<usize>,
    members: Vec<NodeId>,
}

impl WorldIndex {
    /// Reassembles a world from its stored parts (used by [`io`]).
    pub(crate) fn from_parts(
        dag: DiGraph,
        member_offsets: Vec<usize>,
        members: Vec<NodeId>,
    ) -> Self {
        WorldIndex {
            dag,
            member_offsets,
            members,
        }
    }

    /// Raw member-offset accessor (used by [`io`]): the CSR offset of
    /// component `c`'s member slice; `c` may equal `num_comps` (the end
    /// sentinel).
    pub fn member_offset(&self, c: usize) -> usize {
        self.member_offsets[c]
    }

    /// Number of SCCs in this world.
    pub fn num_comps(&self) -> usize {
        self.dag.num_nodes()
    }

    /// The original nodes in component `c`.
    pub fn members_of(&self, c: u32) -> &[NodeId] {
        &self.members[self.member_offsets[c as usize]..self.member_offsets[c as usize + 1]]
    }

    /// Size of component `c`.
    pub fn comp_size(&self, c: u32) -> usize {
        self.member_offsets[c as usize + 1] - self.member_offsets[c as usize]
    }
}

/// The cascade index: ℓ condensed worlds plus the `node × world`
/// component matrix (Algorithm 1).
pub struct CascadeIndex {
    num_nodes: usize,
    worlds: Vec<WorldIndex>,
    /// Node-major layout: `comp_matrix[v * ℓ + i]` is `I[v, i]`. Node-major
    /// because queries iterate all worlds of one node.
    comp_matrix: Vec<u32>,
    max_comps: usize,
    config: IndexConfig,
}

impl CascadeIndex {
    /// Builds the index over `config.num_worlds` sampled worlds
    /// (Algorithm 1). Deterministic in `config.seed`.
    ///
    /// ```
    /// use soi_graph::{gen, ProbGraph};
    /// use soi_index::{CascadeIndex, IndexConfig};
    /// let pg = ProbGraph::fixed(gen::path(4), 1.0).unwrap();
    /// let index = CascadeIndex::build(&pg, IndexConfig {
    ///     num_worlds: 4, seed: 1, ..IndexConfig::default()
    /// });
    /// // Deterministic graph: every sampled cascade of node 1 is {1,2,3}.
    /// assert!(index.cascades_of(1).iter().all(|c| c == &vec![1, 2, 3]));
    /// ```
    pub fn build(pg: &ProbGraph, config: IndexConfig) -> Self {
        assert!(config.num_worlds > 0, "need at least one world");
        let _span = soi_obs::span("index.build");
        let n = pg.num_nodes();
        let ell = config.num_worlds;
        let threads = effective_threads(config.threads, ell);

        // Each world is independent; distribute world ids across workers.
        // Contiguous world-id chunks per worker, one sampler allocation
        // per worker. World `i` depends only on `(seed, i)`, so the
        // partition does not affect the result.
        let mut slots: Vec<Option<(WorldIndex, Vec<u32>)>> = (0..ell).map(|_| None).collect();
        soi_util::pool::for_each_indexed_with(
            &mut slots,
            threads,
            WorldSampler::new,
            |sampler, i, slot| {
                *slot = Some(build_world(pg, &config, i, sampler));
            },
        );

        let mut worlds = Vec::with_capacity(ell);
        let mut comp_matrix = vec![0u32; n * ell];
        let mut max_comps = 0usize;
        for (i, slot) in slots.into_iter().enumerate() {
            // The chunked scoped threads cover every slot exactly once,
            // and thread::scope joins before we get here.
            // xtask-allow: panic_policy
            let (w, comp_of) = slot.expect("world built");
            max_comps = max_comps.max(w.num_comps());
            for v in 0..n {
                comp_matrix[v * ell + i] = comp_of[v];
            }
            worlds.push(w);
        }

        let index = CascadeIndex {
            num_nodes: n,
            worlds,
            comp_matrix,
            max_comps,
            config,
        };
        index.record_build_metrics();
        index
    }

    /// Budgeted [`build`](CascadeIndex::build): one tick per sampled
    /// world, checked at block boundaries (blocks of [`BUILD_BLOCK`]
    /// worlds, parallel within a block). On expiry the partial index
    /// covers a *prefix* of the world ids — world `i` depends only on
    /// `(seed, i)`, so the prefix is identical to the first worlds of an
    /// uninterrupted build regardless of thread count. At least one block
    /// is always built, so even an expired deadline yields a usable
    /// (small-ℓ) index.
    pub fn build_budgeted(
        pg: &ProbGraph,
        config: IndexConfig,
        deadline: &soi_util::runtime::Deadline,
    ) -> soi_util::runtime::Outcome<Self> {
        assert!(config.num_worlds > 0, "need at least one world");
        let _span = soi_obs::span("index.build");
        let n = pg.num_nodes();
        let ell = config.num_worlds;
        let threads = effective_threads(config.threads, BUILD_BLOCK);

        let mut built: Vec<(WorldIndex, Vec<u32>)> = Vec::with_capacity(ell);
        let mut next = 0usize;
        while next < ell {
            let block_len = BUILD_BLOCK.min(ell - next);
            // The first block runs unconditionally (its ticks still count)
            // so a partial index is never empty.
            let proceed = deadline.tick(block_len as u64);
            if next > 0 && !proceed {
                break;
            }
            let mut slots: Vec<Option<(WorldIndex, Vec<u32>)>> =
                (0..block_len).map(|_| None).collect();
            soi_util::pool::for_each_indexed_with(
                &mut slots,
                threads,
                WorldSampler::new,
                |sampler, j, slot| {
                    *slot = Some(build_world(pg, &config, next + j, sampler));
                },
            );
            for slot in slots {
                // Chunked scoped threads fill every slot before the scope
                // joins. xtask-allow: panic_policy
                built.push(slot.expect("world built"));
            }
            next += block_len;
        }

        let done = built.len();
        let mut worlds = Vec::with_capacity(done);
        let mut comp_matrix = vec![0u32; n * done];
        let mut max_comps = 0usize;
        for (i, (w, comp_of)) in built.into_iter().enumerate() {
            max_comps = max_comps.max(w.num_comps());
            for v in 0..n {
                comp_matrix[v * done + i] = comp_of[v];
            }
            worlds.push(w);
        }
        let index = CascadeIndex {
            num_nodes: n,
            worlds,
            comp_matrix,
            max_comps,
            // Record the ℓ actually built so the stored config matches
            // the partial index's true dimensions.
            config: IndexConfig {
                num_worlds: done,
                ..config
            },
        };
        index.record_build_metrics();
        deadline.outcome(index, done as u64, ell as u64)
    }

    /// A 64-bit fingerprint of the index identity: dimensions, build
    /// configuration, and per-world structural summary. Used to pin
    /// checkpoints to the index a run was started with.
    pub fn fingerprint(&self) -> u64 {
        let mut h = soi_util::hash::Mix64Hasher::new();
        h.update_u64(self.num_nodes as u64);
        h.update_u64(self.worlds.len() as u64);
        h.update_u64(self.config.seed);
        h.update_u64(self.config.transitive_reduction as u64);
        for w in &self.worlds {
            h.update_u64(w.num_comps() as u64);
            h.update_u64(w.dag.num_edges() as u64);
        }
        h.finish()
    }

    /// A 64-bit cache key identifying the index that [`build`](Self::build)
    /// would produce for `(pg, config)`, computable **without** building
    /// it. Combines the graph fingerprint with every config field that
    /// changes index contents (`threads` is excluded: builds are
    /// thread-count invariant). `soi serve` keys its index cache on this.
    pub fn cache_key(pg: &ProbGraph, config: &IndexConfig) -> u64 {
        let mut h = soi_util::hash::Mix64Hasher::new();
        h.update_u64(pg.fingerprint());
        h.update_u64(config.num_worlds as u64);
        h.update_u64(config.seed);
        h.update_u64(config.transitive_reduction as u64);
        h.finish()
    }

    /// Reassembles an index from stored parts (used by [`io`]); inputs
    /// are assumed already validated.
    pub(crate) fn from_parts(
        num_nodes: usize,
        worlds: Vec<WorldIndex>,
        comp_matrix: Vec<u32>,
        max_comps: usize,
        config: IndexConfig,
    ) -> Self {
        CascadeIndex {
            num_nodes,
            worlds,
            comp_matrix,
            max_comps,
            config,
        }
    }

    /// Builds an index from externally supplied live-edge worlds — any
    /// propagation model with a live-edge equivalence (e.g. the Linear
    /// Threshold sampler in `soi-sampling::lt`) plugs into the same
    /// typical-cascade pipeline this way. `config.num_worlds` and
    /// `config.seed` are recorded but ignored for sampling; worlds are
    /// taken verbatim, in order.
    pub fn build_from_worlds<'w>(
        num_nodes: usize,
        worlds: impl Iterator<Item = &'w DiGraph>,
        config: IndexConfig,
    ) -> Self {
        let built: Vec<(WorldIndex, Vec<u32>)> = worlds
            .map(|world| {
                assert_eq!(world.num_nodes(), num_nodes, "world node-count mismatch");
                condense_world(world, config.transitive_reduction)
            })
            .collect();
        assert!(!built.is_empty(), "need at least one world");
        let ell = built.len();
        let mut worlds_out = Vec::with_capacity(ell);
        let mut comp_matrix = vec![0u32; num_nodes * ell];
        let mut max_comps = 0usize;
        for (i, (w, comp_of)) in built.into_iter().enumerate() {
            max_comps = max_comps.max(w.num_comps());
            for v in 0..num_nodes {
                comp_matrix[v * ell + i] = comp_of[v];
            }
            worlds_out.push(w);
        }
        let index = CascadeIndex {
            num_nodes,
            worlds: worlds_out,
            comp_matrix,
            max_comps,
            config,
        };
        index.record_build_metrics();
        index
    }

    /// Records closure/size counters and gauges for a finished build.
    /// Everything here is a function of the seeded inputs, so the values
    /// are deterministic.
    fn record_build_metrics(&self) {
        soi_obs::counter_add!("index.builds", 1);
        soi_obs::counter_add!("index.worlds_built", self.worlds.len());
        let comps: usize = self.worlds.iter().map(WorldIndex::num_comps).sum();
        let dag_edges: usize = self.worlds.iter().map(|w| w.dag.num_edges()).sum();
        let members: usize = self.worlds.iter().map(|w| w.members.len()).sum();
        soi_obs::counter_add!("index.total_comps", comps);
        soi_obs::counter_add!("index.total_dag_edges", dag_edges);
        soi_obs::counter_add!("index.total_member_entries", members);
        soi_obs::gauge("index.memory_bytes").set(self.memory_bytes() as f64);
        soi_obs::gauge("index.max_comps").set(self.max_comps as f64);
        soi_obs::event!(
            soi_obs::Level::Info,
            "index built: {} worlds, {} comps, {} member entries, {} bytes",
            self.worlds.len(),
            comps,
            members,
            self.memory_bytes()
        );
    }

    /// Number of nodes of the indexed graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of indexed worlds ℓ.
    pub fn num_worlds(&self) -> usize {
        self.worlds.len()
    }

    /// The build configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The stored world structures.
    pub fn world(&self, i: usize) -> &WorldIndex {
        &self.worlds[i]
    }

    /// `I[v, i]`: the component of node `v` in world `i`.
    #[inline]
    pub fn comp_of(&self, v: NodeId, i: usize) -> u32 {
        self.comp_matrix[v as usize * self.worlds.len() + i]
    }

    /// Creates reusable query scratch sized for this index.
    pub fn query(&self) -> IndexQuery {
        IndexQuery {
            reach: Reachability::new(self.max_comps),
            comps: Vec::new(),
        }
    }

    /// The cascade of `v` in world `i`, written to `out` (unsorted,
    /// no duplicates). `out` is cleared first.
    pub fn cascade(&self, v: NodeId, i: usize, q: &mut IndexQuery, out: &mut Vec<NodeId>) {
        self.multi_cascade(std::slice::from_ref(&v), i, q, out)
    }

    /// The cascade of a seed set in world `i` (union of per-seed
    /// cascades), written to `out` (unsorted, no duplicates).
    pub fn multi_cascade(
        &self,
        seeds: &[NodeId],
        i: usize,
        q: &mut IndexQuery,
        out: &mut Vec<NodeId>,
    ) {
        let w = &self.worlds[i];
        q.comps.clear();
        let seed_comps: Vec<u32> = seeds.iter().map(|&s| self.comp_of(s, i)).collect();
        q.reach.multi_source(&w.dag, &seed_comps, &mut q.comps);
        out.clear();
        for &c in &q.comps {
            out.extend_from_slice(w.members_of(c));
        }
    }

    /// Cascade size of `v` in world `i` without materializing node ids.
    pub fn cascade_size(&self, v: NodeId, i: usize, q: &mut IndexQuery) -> usize {
        let w = &self.worlds[i];
        q.reach
            .multi_source(&w.dag, &[self.comp_of(v, i)], &mut q.comps);
        q.comps.iter().map(|&c| w.comp_size(c)).sum()
    }

    /// All ℓ cascades of `v` as canonical sorted sets — the input shape
    /// the Jaccard-median machinery expects (Algorithm 2's inner loop).
    pub fn cascades_of(&self, v: NodeId) -> Vec<Vec<NodeId>> {
        let mut q = self.query();
        let mut out = Vec::new();
        (0..self.num_worlds())
            .map(|i| {
                self.cascade(v, i, &mut q, &mut out);
                let mut set = out.clone();
                set.sort_unstable();
                set
            })
            .collect()
    }

    /// Approximate heap footprint in bytes (matrix + world structures):
    /// the quantity §4 argues the condensation representation keeps small.
    pub fn memory_bytes(&self) -> usize {
        let matrix = self.comp_matrix.len() * std::mem::size_of::<u32>();
        let worlds: usize = self
            .worlds
            .iter()
            .map(|w| {
                w.dag.num_edges() * std::mem::size_of::<NodeId>()
                    + (w.dag.num_nodes() + 1) * std::mem::size_of::<usize>()
                    + w.members.len() * std::mem::size_of::<NodeId>()
                    + w.member_offsets.len() * std::mem::size_of::<usize>()
            })
            .sum();
        matrix + worlds
    }

    /// Mean number of SCCs per world (diagnostics for EXPERIMENTS.md).
    pub fn mean_comps(&self) -> f64 {
        self.worlds
            .iter()
            .map(|w| w.num_comps() as f64)
            .sum::<f64>()
            / self.worlds.len() as f64
    }

    /// Mean number of condensation arcs per world.
    pub fn mean_dag_edges(&self) -> f64 {
        self.worlds
            .iter()
            .map(|w| w.dag.num_edges() as f64)
            .sum::<f64>()
            / self.worlds.len() as f64
    }
}

/// Reusable per-thread query scratch for [`CascadeIndex`].
pub struct IndexQuery {
    reach: Reachability,
    comps: Vec<u32>,
}

/// Worlds per deadline check in [`CascadeIndex::build_budgeted`]. A fixed
/// block size (independent of thread count) keeps the partial prefix
/// deterministic across machines.
pub const BUILD_BLOCK: usize = 16;

fn effective_threads(requested: usize, work_items: usize) -> usize {
    soi_util::pool::effective_threads(requested, work_items)
}

fn build_world(
    pg: &ProbGraph,
    config: &IndexConfig,
    i: usize,
    sampler: &mut WorldSampler,
) -> (WorldIndex, Vec<u32>) {
    let mut rng = world_rng(config.seed, i);
    let world = {
        let _span = soi_obs::span("index.sample_world");
        sampler.sample(pg, &mut rng)
    };
    let _span = soi_obs::span("index.condense_world");
    condense_world(&world, config.transitive_reduction)
}

fn condense_world(world: &DiGraph, reduce: bool) -> (WorldIndex, Vec<u32>) {
    let cond = Condensation::new(world);
    let dag = if reduce {
        // A condensation is acyclic by construction (checked in debug
        // builds by soi_util::invariant::debug_check_acyclic), and
        // transitive_reduction only returns None on cyclic input.
        // xtask-allow: panic_policy
        transitive::transitive_reduction(&cond.dag).expect("condensation is a DAG")
    } else {
        cond.dag
    };
    (
        WorldIndex {
            dag,
            member_offsets: cond.member_offsets,
            members: cond.members,
        },
        cond.comp_of,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_graph::gen;

    fn test_graph(seed: u64) -> ProbGraph {
        let mut rng = soi_util::rng::Xoshiro256pp::seed_from_u64(seed);
        ProbGraph::fixed(gen::gnm(60, 300, &mut rng), 0.3).unwrap()
    }

    #[test]
    fn index_cascades_match_direct_reachability() {
        let pg = test_graph(1);
        let config = IndexConfig {
            num_worlds: 12,
            seed: 77,
            transitive_reduction: true,
            threads: 1,
        };
        let index = CascadeIndex::build(&pg, config);
        let mut q = index.query();
        let mut out = Vec::new();
        let mut sampler = WorldSampler::new();
        let mut reach = Reachability::new(pg.num_nodes());
        let mut direct = Vec::new();
        for i in 0..12 {
            // Re-derive the exact world the index sampled.
            let world = sampler.sample(&pg, &mut world_rng(77, i));
            for v in 0..pg.num_nodes() as NodeId {
                index.cascade(v, i, &mut q, &mut out);
                out.sort_unstable();
                reach.reachable_from(&world, v, &mut direct);
                direct.sort_unstable();
                assert_eq!(out, direct, "world {i}, node {v}");
            }
        }
    }

    #[test]
    fn cache_key_tracks_content_inputs_only() {
        let pg = test_graph(1);
        let config = IndexConfig {
            num_worlds: 8,
            seed: 5,
            transitive_reduction: true,
            threads: 1,
        };
        let base = CascadeIndex::cache_key(&pg, &config);
        // Thread count never changes index contents, so it never changes
        // the key; every content-bearing input does.
        assert_eq!(
            base,
            CascadeIndex::cache_key(
                &pg,
                &IndexConfig {
                    threads: 4,
                    ..config
                }
            )
        );
        assert_ne!(
            base,
            CascadeIndex::cache_key(
                &pg,
                &IndexConfig {
                    num_worlds: 9,
                    ..config
                }
            )
        );
        assert_ne!(
            base,
            CascadeIndex::cache_key(&pg, &IndexConfig { seed: 6, ..config })
        );
        assert_ne!(
            base,
            CascadeIndex::cache_key(
                &pg,
                &IndexConfig {
                    transitive_reduction: false,
                    ..config
                }
            )
        );
        assert_ne!(base, CascadeIndex::cache_key(&test_graph(2), &config));
    }

    #[test]
    fn parallel_build_matches_serial() {
        let pg = test_graph(2);
        let mk = |threads| {
            CascadeIndex::build(
                &pg,
                IndexConfig {
                    num_worlds: 8,
                    seed: 5,
                    transitive_reduction: true,
                    threads,
                },
            )
        };
        let serial = mk(1);
        let parallel = mk(4);
        assert_eq!(serial.num_worlds(), parallel.num_worlds());
        for v in 0..pg.num_nodes() as NodeId {
            assert_eq!(serial.cascades_of(v), parallel.cascades_of(v), "node {v}");
        }
    }

    #[test]
    fn reduction_does_not_change_cascades() {
        let pg = test_graph(3);
        let mk = |reduce| {
            CascadeIndex::build(
                &pg,
                IndexConfig {
                    num_worlds: 6,
                    seed: 9,
                    transitive_reduction: reduce,
                    threads: 1,
                },
            )
        };
        let reduced = mk(true);
        let full = mk(false);
        for v in (0..pg.num_nodes() as NodeId).step_by(7) {
            assert_eq!(reduced.cascades_of(v), full.cascades_of(v));
        }
        // The reduction should not add arcs.
        let re: f64 = reduced.mean_dag_edges();
        let fe: f64 = full.mean_dag_edges();
        assert!(re <= fe + 1e-9, "{re} > {fe}");
    }

    #[test]
    fn cascade_size_matches_materialization() {
        let pg = test_graph(4);
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 5,
                seed: 3,
                ..IndexConfig::default()
            },
        );
        let mut q = index.query();
        let mut out = Vec::new();
        for i in 0..5 {
            for v in (0..60).step_by(11) {
                index.cascade(v, i, &mut q, &mut out);
                let len = out.len();
                assert_eq!(index.cascade_size(v, i, &mut q), len);
            }
        }
    }

    #[test]
    fn multi_cascade_is_union_of_singles() {
        let pg = test_graph(5);
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 4,
                seed: 8,
                ..IndexConfig::default()
            },
        );
        let mut q = index.query();
        let (mut a, mut b, mut ab) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..4 {
            index.cascade(10, i, &mut q, &mut a);
            index.cascade(20, i, &mut q, &mut b);
            index.multi_cascade(&[10, 20], i, &mut q, &mut ab);
            let mut union: Vec<NodeId> = a.iter().chain(b.iter()).copied().collect();
            union.sort_unstable();
            union.dedup();
            ab.sort_unstable();
            assert_eq!(ab, union, "world {i}");
        }
    }

    #[test]
    fn cascades_contain_their_source_and_sizes_bounded() {
        let pg = test_graph(6);
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 10,
                seed: 2,
                ..IndexConfig::default()
            },
        );
        for v in (0..60).step_by(13) {
            for c in index.cascades_of(v as NodeId) {
                assert!(c.contains(&(v as NodeId)));
                assert!(c.len() <= 60);
            }
        }
    }

    #[test]
    fn budgeted_build_yields_a_world_prefix() {
        use soi_util::runtime::Deadline;
        let pg = test_graph(8);
        let config = IndexConfig {
            num_worlds: 40,
            seed: 13,
            transitive_reduction: true,
            threads: 2,
        };
        let full = CascadeIndex::build(&pg, config);

        let complete = CascadeIndex::build_budgeted(&pg, config, &Deadline::unlimited());
        assert!(complete.is_complete());
        let complete = complete.value();
        assert_eq!(complete.num_worlds(), 40);
        assert_eq!(complete.cascades_of(3), full.cascades_of(3));
        assert_eq!(complete.fingerprint(), full.fingerprint());

        // Budget for one block: the partial index is worlds 0..BUILD_BLOCK.
        let partial = CascadeIndex::build_budgeted(&pg, config, &Deadline::ticks(1));
        assert!(!partial.is_complete());
        let progress = partial.progress().unwrap();
        assert_eq!(progress.done, crate::BUILD_BLOCK as u64);
        assert_eq!(progress.total, 40);
        let partial = partial.value();
        assert_eq!(partial.num_worlds(), crate::BUILD_BLOCK);
        for v in (0..60).step_by(9) {
            assert_eq!(
                partial.cascades_of(v),
                full.cascades_of(v)[..crate::BUILD_BLOCK].to_vec(),
                "node {v}"
            );
        }
    }

    #[test]
    fn fingerprint_distinguishes_builds() {
        let pg = test_graph(9);
        let mk = |seed| {
            CascadeIndex::build(
                &pg,
                IndexConfig {
                    num_worlds: 4,
                    seed,
                    ..IndexConfig::default()
                },
            )
        };
        assert_eq!(mk(1).fingerprint(), mk(1).fingerprint());
        assert_ne!(mk(1).fingerprint(), mk(2).fingerprint());
    }

    #[test]
    fn diagnostics_are_positive() {
        let pg = test_graph(7);
        let index = CascadeIndex::build(
            &pg,
            IndexConfig {
                num_worlds: 3,
                seed: 1,
                ..IndexConfig::default()
            },
        );
        assert!(index.memory_bytes() > 0);
        assert!(index.mean_comps() >= 1.0);
        assert!(index.mean_comps() <= 60.0);
    }
}
