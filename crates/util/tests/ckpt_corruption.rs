//! Checkpoint corruption matrix: every checkpoint kind crossed with every
//! corruption mode must surface a *distinct* typed error — never a panic,
//! never a silent resume from poisoned state — and a fresh run must be
//! able to proceed once the corrupt file is removed.

use std::path::{Path, PathBuf};

use soi_util::ckpt::{
    read_checkpoint, write_checkpoint, Checkpoint, KIND_GREEDY, KIND_ROUTER_OVERRIDES,
    KIND_SKETCH_BUILD, KIND_TYPICAL_CASCADES,
};
use soi_util::error::SoiError;

const ALL_KINDS: [u8; 4] = [
    KIND_TYPICAL_CASCADES,
    KIND_GREEDY,
    KIND_SKETCH_BUILD,
    KIND_ROUTER_OVERRIDES,
];

const GRAPH_FP: u64 = 0x5151_aaaa_bbbb_cccc;
const CONFIG_FP: u64 = 0x1234_5678_9abc_def0;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("soi-ckpt-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample(kind: u8) -> Checkpoint {
    Checkpoint {
        kind,
        graph_fingerprint: GRAPH_FP,
        config_fingerprint: CONFIG_FP,
        total_units: 128,
        done_units: 64,
        // Payload varies with the kind so a cross-kind mixup cannot
        // accidentally decode to identical bytes.
        payload: (0..32).map(|i| i ^ kind).collect(),
    }
}

fn write_sample(path: &Path, kind: u8) {
    write_checkpoint(path, &sample(kind)).unwrap();
}

/// Resuming is "read + validate"; a fresh run after removing the corrupt
/// file is "write + read + validate" succeeding from scratch.
fn fresh_run_proceeds(path: &Path, kind: u8) {
    std::fs::remove_file(path).unwrap();
    write_sample(path, kind);
    let ckpt = read_checkpoint(path, kind).unwrap();
    ckpt.validate(kind, GRAPH_FP, CONFIG_FP).unwrap();
    assert_eq!(ckpt, sample(kind));
}

#[test]
fn truncation_is_ckpt_truncated_for_every_kind() {
    let dir = fresh_dir("truncate");
    for kind in ALL_KINDS {
        let path = dir.join(format!("kind-{kind}.ckpt"));
        write_sample(&path, kind);
        let full = std::fs::read(&path).unwrap();
        // Chop at several depths: inside the header, inside the payload,
        // and inside the trailing checksum. All must be the truncation
        // error, not a checksum or decode confusion.
        for cut in [5, 20, full.len() - 12, full.len() - 3] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = read_checkpoint(&path, kind).unwrap_err();
            assert!(
                matches!(err, SoiError::CkptTruncated { .. }),
                "kind {kind} cut {cut}: {err:?}"
            );
        }
        fresh_run_proceeds(&path, kind);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flips_are_ckpt_checksum_for_every_kind() {
    let dir = fresh_dir("bitflip");
    for kind in ALL_KINDS {
        let path = dir.join(format!("kind-{kind}.ckpt"));
        write_sample(&path, kind);
        let full = std::fs::read(&path).unwrap();
        // Flip one bit in a fingerprint byte, a count byte, and a payload
        // byte. The checksum must catch each before any field is trusted.
        for at in [12, 30, 55] {
            let mut bytes = full.clone();
            bytes[at] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
            let err = read_checkpoint(&path, kind).unwrap_err();
            assert!(
                matches!(err, SoiError::CkptChecksum { .. }),
                "kind {kind} flip at {at}: {err:?}"
            );
        }
        fresh_run_proceeds(&path, kind);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn foreign_fingerprints_are_ckpt_mismatch_for_every_kind() {
    let dir = fresh_dir("mismatch");
    for kind in ALL_KINDS {
        let path = dir.join(format!("kind-{kind}.ckpt"));
        // A structurally valid checkpoint from a *different* run: wrong
        // graph in one file, wrong config in another. The checksum is
        // fine, so only fingerprint validation can refuse the resume.
        let mut foreign = sample(kind);
        foreign.graph_fingerprint ^= 1;
        write_checkpoint(&path, &foreign).unwrap();
        let ckpt = read_checkpoint(&path, kind).unwrap();
        let err = ckpt.validate(kind, GRAPH_FP, CONFIG_FP).unwrap_err();
        assert!(
            matches!(
                err,
                SoiError::CkptMismatch {
                    field: "graph_fingerprint",
                    ..
                }
            ),
            "kind {kind}: {err:?}"
        );

        let mut foreign = sample(kind);
        foreign.config_fingerprint ^= 1;
        write_checkpoint(&path, &foreign).unwrap();
        let ckpt = read_checkpoint(&path, kind).unwrap();
        let err = ckpt.validate(kind, GRAPH_FP, CONFIG_FP).unwrap_err();
        assert!(
            matches!(
                err,
                SoiError::CkptMismatch {
                    field: "config_fingerprint",
                    ..
                }
            ),
            "kind {kind}: {err:?}"
        );
        fresh_run_proceeds(&path, kind);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cross_kind_resume_is_ckpt_bad_kind_for_every_kind() {
    let dir = fresh_dir("badkind");
    for kind in ALL_KINDS {
        let path = dir.join(format!("kind-{kind}.ckpt"));
        // A valid checkpoint of every *other* kind sitting at this
        // pipeline's path must be refused by kind, with both bytes named.
        for other in ALL_KINDS.into_iter().filter(|&k| k != kind) {
            write_sample(&path, other);
            let err = read_checkpoint(&path, kind).unwrap_err();
            match err {
                SoiError::CkptBadKind { found, expected } => {
                    assert_eq!((found, expected), (other, kind));
                }
                other_err => panic!("kind {kind} vs {other}: {other_err:?}"),
            }
        }
        fresh_run_proceeds(&path, kind);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corruption_modes_stay_distinct() {
    // The four corruption modes map to four different error variants, so
    // an operator (or the differential fuzzer) can tell which repair is
    // needed: re-run (truncated/checksum), re-point (mismatch), or
    // re-path (bad kind).
    let dir = fresh_dir("distinct");
    let path = dir.join("one.ckpt");
    write_sample(&path, KIND_GREEDY);
    let full = std::fs::read(&path).unwrap();

    std::fs::write(&path, &full[..full.len() - 3]).unwrap();
    let truncated = read_checkpoint(&path, KIND_GREEDY).unwrap_err();

    let mut flipped = full.clone();
    flipped[55] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    let checksum = read_checkpoint(&path, KIND_GREEDY).unwrap_err();

    std::fs::write(&path, &full).unwrap();
    let kind = read_checkpoint(&path, KIND_SKETCH_BUILD).unwrap_err();
    let mismatch = read_checkpoint(&path, KIND_GREEDY)
        .unwrap()
        .validate(KIND_GREEDY, GRAPH_FP ^ 1, CONFIG_FP)
        .unwrap_err();

    let kinds = [
        std::mem::discriminant(&truncated),
        std::mem::discriminant(&checksum),
        std::mem::discriminant(&kind),
        std::mem::discriminant(&mismatch),
    ];
    for i in 0..kinds.len() {
        for j in i + 1..kinds.len() {
            assert_ne!(kinds[i], kinds[j], "variants {i} and {j} collide");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
