//! Versioned, checksummed checkpoint files.
//!
//! Long pipelines persist progress every N units of work so a crashed run
//! can resume from the last checkpoint instead of starting over. The
//! container is deliberately boring and fully self-describing:
//!
//! ```text
//! offset  size  field
//! 0       7     magic  "SOICKPT"
//! 7       1     format version (currently 1)
//! 8       1     kind (1 = typical cascades, 2 = greedy seed selection,
//!                     3 = sketch build, 4 = router overrides)
//! 9       8     graph fingerprint   (LE u64)
//! 17      8     config fingerprint  (LE u64)
//! 25      8     total units of work (LE u64)
//! 33      8     units completed     (LE u64)
//! 41      8     payload length      (LE u64)
//! 49      n     payload (pipeline-specific codec)
//! 49+n    8     checksum (LE u64, Mix64 digest of all preceding bytes)
//! ```
//!
//! Writes are atomic (tmp file + rename) so a crash mid-write leaves
//! either the previous checkpoint or none — never a torn file that could
//! poison a resume. Reads validate structure, version, kind, and checksum
//! and surface each corruption mode as a distinct [`SoiError`] variant;
//! [`Checkpoint::validate`] additionally pins the checkpoint to the
//! resuming run's graph/config fingerprints.

use std::path::Path;

use crate::error::SoiError;
use crate::hash::Mix64Hasher;

/// File magic; anything else is [`SoiError::CkptBadMagic`].
pub const MAGIC: &[u8; 7] = b"SOICKPT";
/// The checkpoint format version this build writes and reads.
pub const VERSION: u8 = 1;
/// Kind byte for `all_typical_cascades` checkpoints.
pub const KIND_TYPICAL_CASCADES: u8 = 1;
/// Kind byte for greedy/CELF seed-selection checkpoints.
pub const KIND_GREEDY: u8 = 2;
/// Kind byte for bottom-k reachability sketch build checkpoints.
pub const KIND_SKETCH_BUILD: u8 = 3;
/// Kind byte for the router's persisted rebalance-override table.
pub const KIND_ROUTER_OVERRIDES: u8 = 4;

const HEADER_LEN: usize = 7 + 1 + 1 + 8 * 5;

/// An in-memory checkpoint: header fields plus an opaque payload owned by
/// the pipeline's own codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Pipeline kind ([`KIND_TYPICAL_CASCADES`], [`KIND_GREEDY`],
    /// [`KIND_SKETCH_BUILD`], or [`KIND_ROUTER_OVERRIDES`]).
    pub kind: u8,
    /// Fingerprint of the graph the run operates on.
    pub graph_fingerprint: u64,
    /// Fingerprint of run configuration that must match to resume
    /// (seed, k, thresholds — whatever the pipeline folds in).
    pub config_fingerprint: u64,
    /// Total units of work in the full computation.
    pub total_units: u64,
    /// Units completed at the time of the checkpoint.
    pub done_units: u64,
    /// Pipeline-specific serialized progress.
    pub payload: Vec<u8>,
}

impl Checkpoint {
    /// Serializes to the on-disk layout (including trailing checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 8);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(self.kind);
        out.extend_from_slice(&self.graph_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.config_fingerprint.to_le_bytes());
        out.extend_from_slice(&self.total_units.to_le_bytes());
        out.extend_from_slice(&self.done_units.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let mut h = Mix64Hasher::new();
        h.update(&out);
        out.extend_from_slice(&h.finish().to_le_bytes());
        out
    }

    /// Parses and verifies the on-disk layout. Checks structure first
    /// (magic, version, lengths), then the checksum over everything the
    /// declared structure covers, so each corruption mode maps to one
    /// specific error variant.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, SoiError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take(7, "magic")?;
        if magic != MAGIC {
            return Err(SoiError::CkptBadMagic);
        }
        let version = r.u8("version")?;
        if version != VERSION {
            return Err(SoiError::CkptBadVersion {
                found: version,
                expected: VERSION,
            });
        }
        let kind = r.u8("kind")?;
        let graph_fingerprint = r.u64("graph fingerprint")?;
        let config_fingerprint = r.u64("config fingerprint")?;
        let total_units = r.u64("total units")?;
        let done_units = r.u64("done units")?;
        let payload_len = r.u64("payload length")?;
        let payload_len = usize::try_from(payload_len).map_err(|_| SoiError::CkptTruncated {
            context: "payload length exceeds address space".to_string(),
        })?;
        let payload = r.take(payload_len, "payload")?.to_vec();
        let checked_len = bytes.len() - r.remaining().len();
        let stored = r.u64("checksum")?;
        let mut h = Mix64Hasher::new();
        h.update(&bytes[..checked_len]);
        let computed = h.finish();
        if stored != computed {
            return Err(SoiError::CkptChecksum { stored, computed });
        }
        Ok(Checkpoint {
            kind,
            graph_fingerprint,
            config_fingerprint,
            total_units,
            done_units,
            payload,
        })
    }

    /// Verifies this checkpoint belongs to the resuming run: right
    /// pipeline kind, same graph, same configuration.
    pub fn validate(
        &self,
        expected_kind: u8,
        graph_fingerprint: u64,
        config_fingerprint: u64,
    ) -> Result<(), SoiError> {
        if self.kind != expected_kind {
            return Err(SoiError::CkptBadKind {
                found: self.kind,
                expected: expected_kind,
            });
        }
        if self.graph_fingerprint != graph_fingerprint {
            return Err(SoiError::CkptMismatch {
                field: "graph_fingerprint",
                stored: self.graph_fingerprint,
                expected: graph_fingerprint,
            });
        }
        if self.config_fingerprint != config_fingerprint {
            return Err(SoiError::CkptMismatch {
                field: "config_fingerprint",
                stored: self.config_fingerprint,
                expected: config_fingerprint,
            });
        }
        Ok(())
    }
}

/// Writes a checkpoint atomically: encode, write to `<path>.tmp`, fsync,
/// rename over `path`. A crash at any point leaves the previous
/// checkpoint (or no file) intact.
pub fn write_checkpoint(path: &Path, ckpt: &Checkpoint) -> Result<(), SoiError> {
    let bytes = ckpt.encode();
    let tmp = path.with_extension("tmp");
    crate::failpoint!("ckpt.write.tmp");
    {
        use std::io::Write as _;
        let mut f =
            std::fs::File::create(&tmp).map_err(|e| SoiError::io(tmp.display().to_string(), e))?;
        f.write_all(&bytes)
            .map_err(|e| SoiError::io(tmp.display().to_string(), e))?;
        f.sync_all()
            .map_err(|e| SoiError::io(tmp.display().to_string(), e))?;
    }
    crate::failpoint!("ckpt.write.rename");
    std::fs::rename(&tmp, path).map_err(|e| SoiError::io(path.display().to_string(), e))?;
    Ok(())
}

/// Reads and fully verifies a checkpoint file, requiring `expected_kind`.
/// Fingerprint validation is left to the caller (via
/// [`Checkpoint::validate`]) because it needs the run's own fingerprints.
pub fn read_checkpoint(path: &Path, expected_kind: u8) -> Result<Checkpoint, SoiError> {
    let bytes = std::fs::read(path).map_err(|e| SoiError::io(path.display().to_string(), e))?;
    let ckpt = Checkpoint::decode(&bytes)?;
    if ckpt.kind != expected_kind {
        return Err(SoiError::CkptBadKind {
            found: ckpt.kind,
            expected: expected_kind,
        });
    }
    Ok(ckpt)
}

/// A bounds-checked little-endian cursor for decoding checkpoint payloads
/// without panicking on truncated input.
pub struct ByteReader<'a> {
    bytes: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for sequential reads.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes }
    }

    /// Takes the next `n` bytes, or a truncation error naming `what`.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SoiError> {
        if self.bytes.len() < n {
            return Err(SoiError::CkptTruncated {
                context: format!("reading {what}: need {n} bytes, have {}", self.bytes.len()),
            });
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, SoiError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, SoiError> {
        let b = self.take(8, what)?;
        // take(8) returned exactly 8 bytes. xtask-allow: panic_policy
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte read")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, SoiError> {
        let b = self.take(4, what)?;
        // take(4) returned exactly 4 bytes. xtask-allow: panic_policy
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte read")))
    }

    /// Reads a little-endian `f64`.
    pub fn f64(&mut self, what: &str) -> Result<f64, SoiError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> &'a [u8] {
        self.bytes
    }

    /// Errors unless every byte was consumed (guards against payloads
    /// from a different codec version that happen to parse).
    pub fn expect_end(&self, what: &str) -> Result<(), SoiError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(SoiError::Invalid(format!(
                "{what}: {} trailing bytes after payload",
                self.bytes.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            kind: KIND_TYPICAL_CASCADES,
            graph_fingerprint: 0x1111_2222_3333_4444,
            config_fingerprint: 0x5555_6666_7777_8888,
            total_units: 100,
            done_units: 40,
            payload: (0u8..64).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn empty_payload_round_trips() {
        let c = Checkpoint {
            payload: Vec::new(),
            ..sample()
        };
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(SoiError::CkptBadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_detected() {
        let mut bytes = sample().encode();
        bytes[7] = VERSION + 1;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(SoiError::CkptBadVersion { found, expected })
                if found == VERSION + 1 && expected == VERSION
        ));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            let err = Checkpoint::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, SoiError::CkptTruncated { .. } | SoiError::CkptBadMagic),
                "len {len}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().encode();
        // Flip one bit per byte across the whole file; any flip must be
        // rejected (as a checksum error or a structural one).
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1;
            assert!(
                Checkpoint::decode(&corrupt).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_error() {
        let mut bytes = sample().encode();
        let payload_start = bytes.len() - 8 - 64;
        bytes[payload_start + 5] ^= 0x10;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(SoiError::CkptChecksum { .. })
        ));
    }

    #[test]
    fn validate_pins_kind_and_fingerprints() {
        let c = sample();
        c.validate(
            KIND_TYPICAL_CASCADES,
            c.graph_fingerprint,
            c.config_fingerprint,
        )
        .unwrap();
        assert!(matches!(
            c.validate(KIND_GREEDY, c.graph_fingerprint, c.config_fingerprint),
            Err(SoiError::CkptBadKind { .. })
        ));
        assert!(matches!(
            c.validate(KIND_TYPICAL_CASCADES, 0, c.config_fingerprint),
            Err(SoiError::CkptMismatch {
                field: "graph_fingerprint",
                ..
            })
        ));
        assert!(matches!(
            c.validate(KIND_TYPICAL_CASCADES, c.graph_fingerprint, 0),
            Err(SoiError::CkptMismatch {
                field: "config_fingerprint",
                ..
            })
        ));
    }

    #[test]
    fn write_read_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("soi-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let c = sample();
        write_checkpoint(&path, &c).unwrap();
        assert_eq!(read_checkpoint(&path, KIND_TYPICAL_CASCADES).unwrap(), c);
        assert!(matches!(
            read_checkpoint(&path, KIND_GREEDY),
            Err(SoiError::CkptBadKind { .. })
        ));
        // No stray tmp file left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_is_atomic_under_injected_faults() {
        use crate::failpoint;
        let dir = std::env::temp_dir().join(format!("soi-ckpt-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let first = sample();
        write_checkpoint(&path, &first).unwrap();
        let second = Checkpoint {
            done_units: 80,
            ..sample()
        };
        let _g = failpoint::test_guard();
        for site in ["ckpt.write.tmp", "ckpt.write.rename"] {
            failpoint::install(&format!("{site}=error")).unwrap();
            let err = write_checkpoint(&path, &second).unwrap_err();
            assert!(matches!(err, SoiError::Fault { .. }), "{site}: {err:?}");
            failpoint::clear();
            // The previous checkpoint must still read back intact.
            assert_eq!(
                read_checkpoint(&path, KIND_TYPICAL_CASCADES).unwrap(),
                first,
                "fault at {site} damaged the existing checkpoint"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_reader_reads_and_bounds_checks() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_bits().to_le_bytes());
        buf.push(9);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 3);
        assert_eq!(r.f64("c").unwrap(), 1.5);
        assert!(r.expect_end("payload").is_err());
        assert_eq!(r.u8("d").unwrap(), 9);
        r.expect_end("payload").unwrap();
        assert!(matches!(
            r.u8("past end"),
            Err(SoiError::CkptTruncated { .. })
        ));
    }
}
