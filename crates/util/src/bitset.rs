//! A fixed-capacity bitset over `u64` blocks.
//!
//! The algorithmic crates use bitsets as visited markers, reachability sets
//! and transitive-closure rows. We keep our own implementation rather than
//! pulling an extra dependency: the operations needed are few and the layout
//! (a boxed `[u64]`) is exactly what the cache wants.

/// A fixed-capacity set of `usize` indices in `[0, capacity)`.
///
/// All operations panic if an index is out of capacity, matching slice
/// semantics — callers size the set once from the graph's node count.
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BITS)],
            capacity,
        }
    }

    /// Number of indices this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let (b, m) = (i / BITS, 1u64 << (i % BITS));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Removes `i`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "index {i} out of capacity {}",
            self.capacity
        );
        let (b, m) = (i / BITS, 1u64 << (i % BITS));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.blocks[i / BITS] & (1u64 << (i % BITS)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes every element, keeping capacity.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// `self ∪= other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self ∩= other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `|self ∩ other|` without materializing the intersection.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without materializing the union.
    pub fn union_len(&self, other: &BitSet) -> usize {
        let common = self.blocks.len().min(other.blocks.len());
        let mut n = 0usize;
        for i in 0..common {
            n += (self.blocks[i] | other.blocks[i]).count_ones() as usize;
        }
        for b in &self.blocks[common..] {
            n += b.count_ones() as usize;
        }
        for b in &other.blocks[common..] {
            n += b.count_ones() as usize;
        }
        n
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            blocks: &self.blocks,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements as `u32` ids (the node-id width used across the
    /// workspace), in increasing order.
    pub fn to_vec_u32(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to fit the largest element (capacity = max + 1).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits; see [`BitSet::iter`].
pub struct Ones<'a> {
    blocks: &'a [u64],
    block_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.block_idx += 1;
            if self.block_idx >= self.blocks.len() {
                return None;
            }
            self.current = self.blocks[self.block_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.block_idx * BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports not-fresh");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn contains_out_of_capacity_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn iteration_order_and_clear() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 127, 128, 199]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64].into_iter().collect();
        let b: BitSet = [2usize, 3, 4, 64].into_iter().collect();
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(a.union_len(&b), 5);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 5);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.len(), 3);
        assert!(i.contains(2) && i.contains(3) && i.contains(64));
    }

    #[test]
    fn union_len_handles_unequal_capacities() {
        let a: BitSet = [1usize, 200].into_iter().collect();
        let b: BitSet = [1usize, 2].into_iter().collect();
        assert_eq!(a.union_len(&b), 3);
        assert_eq!(b.union_len(&a), 3);
        assert_eq!(a.intersection_len(&b), 1);
    }

    #[test]
    fn empty_bitset() {
        let s = BitSet::new(0);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn to_vec_u32_roundtrip() {
        let s: BitSet = [3usize, 77, 100].into_iter().collect();
        assert_eq!(s.to_vec_u32(), vec![3u32, 77, 100]);
    }
}
