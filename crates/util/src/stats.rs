//! Summary and streaming statistics, histograms, and empirical CDFs.
//!
//! These back Table 2 (avg/sd/max of typical-cascade sizes), Figure 3
//! (probability CDFs), Figure 4 (time distributions) and Figure 5
//! (cost-vs-size buckets) in the experiment harness.

/// Streaming mean/variance via Welford's algorithm, plus min/max.
///
/// Numerically stable for long streams; `O(1)` space.
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (Bessel-corrected) standard deviation; 0 for < 2 observations.
    pub fn sample_sd(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Population standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A one-shot five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice. Returns a zeroed summary for empty input.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                sd: 0.0,
                min: 0.0,
                median: 0.0,
                max: 0.0,
            };
        }
        let mut rs = RunningStats::new();
        for &x in xs {
            rs.push(x);
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: xs.len(),
            mean: rs.mean(),
            sd: rs.sample_sd(),
            min: rs.min(),
            median: percentile_sorted(&sorted, 50.0),
            max: rs.max(),
        }
    }
}

/// Percentile (0–100) of an ascending-sorted slice with linear interpolation.
///
/// Panics on an empty slice; clamps `p` into `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Points `(x, F(x))` of the empirical CDF of a sample, one per distinct
/// value, suitable for plotting Figure 3-style probability CDFs.
pub fn empirical_cdf(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &x) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == x => last.1 = frac,
            _ => out.push((x, frac)),
        }
    }
    out
}

/// A fixed-width histogram over `[lo, hi)` with `buckets` equal bins.
///
/// Out-of-range observations clamp into the first/last bin so nothing is
/// silently dropped (experiment binaries report totals).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `buckets` bins spanning `[lo, hi)`.
    ///
    /// Panics unless `lo < hi` and `buckets > 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "lo must be < hi");
        assert!(buckets > 0, "need at least one bucket");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
        }
    }

    /// Adds one observation (clamped into range).
    pub fn push(&mut self, x: f64) {
        let b = self.bucket_of(x);
        self.counts[b] += 1;
    }

    fn bucket_of(&self, x: f64) -> usize {
        let nb = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        ((t * nb as f64).floor() as isize).clamp(0, nb as isize - 1) as usize
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(bucket_midpoint, count)` pairs for plotting.
    pub fn midpoints(&self) -> Vec<(f64, u64)> {
        let nb = self.counts.len() as f64;
        let w = (self.hi - self.lo) / nb;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        assert!(
            (rs.sd() - 2.0).abs() < 1e-12,
            "population sd of classic example is 2"
        );
        assert_eq!(rs.min(), 2.0);
        assert_eq!(rs.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 40.0);
        assert!((percentile_sorted(&xs, 50.0) - 25.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cdf = empirical_cdf(&[0.3, 0.1, 0.3, 0.7]);
        assert_eq!(cdf.len(), 3, "distinct values collapse");
        assert_eq!(cdf[0], (0.1, 0.25));
        assert_eq!(cdf[1], (0.3, 0.75));
        assert_eq!(cdf[2], (0.7, 1.0));
        assert!(cdf.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!(empirical_cdf(&[]).is_empty());
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.1, 0.3, 0.6, 0.9, 1.5, -0.5] {
            h.push(x);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(
            h.counts(),
            &[3, 1, 1, 2],
            "out-of-range clamps to edge bins"
        );
        let mids = h.midpoints();
        assert!((mids[0].0 - 0.125).abs() < 1e-12);
        assert!((mids[3].0 - 0.875).abs() < 1e-12);
    }
}
