//! Streaming 64-bit hashing built on the workspace mixer.
//!
//! [`Mix64Hasher`] chains [`crate::rng::mix64`] (the SplitMix64 finalizer
//! that already backs seed derivation and the count-min sketch) over
//! 8-byte little-endian chunks. It is **not** cryptographic; it exists to
//! fingerprint inputs (graphs, configs) and to detect corruption in
//! checkpoint files, where an adversary is not part of the threat model
//! but bit flips and truncation are.
//!
//! The digest is a pure function of the byte stream (chunk boundaries do
//! not matter) and of its length, so `"ab" + "c"` and `"a" + "bc"` agree
//! while `"abc"` and `"abc\0"` do not.

use crate::rng::mix64;

/// Incremental hasher over a byte stream; see the module docs.
#[derive(Clone, Debug)]
pub struct Mix64Hasher {
    state: u64,
    /// Partial chunk buffer (< 8 bytes) awaiting completion.
    pending: [u8; 8],
    pending_len: usize,
    total_len: u64,
}

impl Mix64Hasher {
    /// Creates a hasher with a fixed, documented initial state.
    pub fn new() -> Self {
        Mix64Hasher {
            // An arbitrary non-zero constant (digits of φ) so that the
            // empty stream does not hash to mix64(0).
            state: 0x9E37_79B9_7F4A_7C15,
            pending: [0; 8],
            pending_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        self.total_len += bytes.len() as u64;
        let mut rest = bytes;
        // Top up a partial chunk first.
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(rest.len());
            self.pending[self.pending_len..self.pending_len + take].copy_from_slice(&rest[..take]);
            self.pending_len += take;
            rest = &rest[take..];
            if self.pending_len < 8 {
                return; // chunk still incomplete; keep accumulating
            }
            self.absorb(u64::from_le_bytes(self.pending));
            self.pending_len = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for c in &mut chunks {
            // chunks_exact(8) yields exactly 8 bytes. xtask-allow: panic_policy
            self.absorb(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        self.pending[..tail.len()].copy_from_slice(tail);
        self.pending_len = tail.len();
    }

    /// Convenience: absorbs a `u64` as its little-endian bytes.
    pub fn update_u64(&mut self, x: u64) {
        self.update(&x.to_le_bytes());
    }

    #[inline]
    fn absorb(&mut self, chunk: u64) {
        self.state = mix64(self.state ^ chunk).wrapping_add(chunk.rotate_left(32));
    }

    /// Finishes the digest (zero-padding any partial chunk and folding in
    /// the stream length). The hasher may keep absorbing afterwards; the
    /// digest is a snapshot.
    pub fn finish(&self) -> u64 {
        let mut state = self.state;
        if self.pending_len > 0 {
            let mut last = [0u8; 8];
            last[..self.pending_len].copy_from_slice(&self.pending[..self.pending_len]);
            let chunk = u64::from_le_bytes(last);
            state = mix64(state ^ chunk).wrapping_add(chunk.rotate_left(32));
        }
        mix64(state ^ self.total_len)
    }
}

impl Default for Mix64Hasher {
    fn default() -> Self {
        Mix64Hasher::new()
    }
}

/// One-shot digest of a byte slice.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = Mix64Hasher::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_across_chunkings() {
        let data: Vec<u8> = (0u8..=255).collect();
        let whole = hash_bytes(&data);
        for split in [1usize, 3, 7, 8, 13, 64, 255] {
            let mut h = Mix64Hasher::new();
            for c in data.chunks(split) {
                h.update(c);
            }
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn length_is_part_of_the_digest() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abc\0"));
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"));
        assert_ne!(hash_bytes(b"\0\0\0\0\0\0\0\0"), hash_bytes(b"\0\0\0\0"));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let mut data = vec![0u8; 64];
        let base = hash_bytes(&data);
        for byte in [0usize, 7, 8, 31, 63] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(hash_bytes(&data), base, "byte {byte} bit {bit}");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn update_u64_matches_le_bytes() {
        let mut a = Mix64Hasher::new();
        a.update_u64(0xDEAD_BEEF_0BAD_F00D);
        let mut b = Mix64Hasher::new();
        b.update(&0xDEAD_BEEF_0BAD_F00Du64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn finish_is_a_snapshot() {
        let mut h = Mix64Hasher::new();
        h.update(b"abc");
        let first = h.finish();
        assert_eq!(h.finish(), first);
        h.update(b"d");
        assert_ne!(h.finish(), first);
    }
}
