//! Seeded schedule perturbation at failpoint sites.
//!
//! Thread interleavings are the one input a deterministic test suite
//! cannot pin down: a scheduler decides them. This module makes that
//! input *exercisable* — when armed, every failpoint site hit (see
//! [`crate::failpoint`]) draws a decision from a seeded hash of
//! `(seed, site, hit-counter)` and either proceeds, yields the
//! timeslice, or sleeps for a few dozen microseconds. Different seeds
//! push the scheduler into different interleavings; a correct
//! concurrent pipeline produces byte-identical (wall-masked) output
//! under all of them. The `schedule_stress` test in `crates/server`
//! replays the full mixed-query e2e under 32 seeds this way.
//!
//! Like failpoints, the shim is debug-only in effect: release builds
//! compile the `failpoint!`/`failpoint_crash!` macros — the only
//! callers of [`perturb`] — to nothing, so production hot loops carry
//! no branch. Arming happens either in-process ([`install`]/[`clear`])
//! or via `SOI_SCHEDULE=<u64 seed>` for subprocess tests.
//!
//! Perturbation deliberately does *not* try to be deterministic itself:
//! the decisions are seeded, but their global order depends on which
//! thread hits a site first. The invariant under test is that the
//! *output* does not depend on any of that.

use crate::rng::mix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Environment variable holding the schedule seed.
pub const ENV_VAR: &str = "SOI_SCHEDULE";

/// Fast-path gate: `false` means every [`perturb`] call returns
/// immediately.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed seed; published before `ARMED` flips to true.
static SEED: AtomicU64 = AtomicU64::new(0);

/// Site hits since arming; salts successive decisions at the same site.
static HITS: AtomicU64 = AtomicU64::new(0);

/// One-time environment initialization.
static ENV_INIT: Once = Once::new();

/// What a site hit does to the current thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// Proceed immediately (the common case).
    Proceed,
    /// Give up the timeslice.
    Yield,
    /// Park for this many microseconds.
    SleepMicros(u64),
}

/// The seeded decision for one `(seed, site, hit)` triple. Roughly half
/// of all hits proceed untouched, so armed runs stay fast.
fn decision(seed: u64, site: &str, hit: u64) -> Decision {
    let site_hash = site
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| mix64(h ^ u64::from(b)));
    match mix64(seed ^ site_hash ^ mix64(hit)) % 8 {
        0..=3 => Decision::Proceed,
        4 | 5 => Decision::Yield,
        6 => Decision::SleepMicros(50),
        _ => Decision::SleepMicros(200),
    }
}

/// Arms schedule perturbation with `seed` for the whole process.
/// Intended for in-process tests; subprocess tests set [`ENV_VAR`].
pub fn install(seed: u64) {
    // ordering: publish-then-arm. The seed and counter reset must be
    // visible before any thread observes ARMED == true, so the data
    // stores precede a Release store and readers take the Acquire
    // branch in `perturb`.
    SEED.store(seed, Ordering::Relaxed); // ordering: published by the ARMED Release below
    HITS.store(0, Ordering::Relaxed); // ordering: published by the ARMED Release below
    ARMED.store(true, Ordering::Release); // ordering: publishes the stores above
}

/// Disarms schedule perturbation.
pub fn clear() {
    // ordering: the flag is the whole payload when disarming; a thread
    // mid-`perturb` finishing one last yield/sleep is harmless.
    ARMED.store(false, Ordering::Release);
}

/// The armed seed, if any (for diagnostics and tests).
pub fn armed_seed() -> Option<u64> {
    // ordering: Acquire pairs with the Release in `install`, making
    // the preceding SEED store visible.
    if ARMED.load(Ordering::Acquire) {
        // ordering: ordered by the ARMED Acquire/Release pair above.
        Some(SEED.load(Ordering::Relaxed))
    } else {
        None
    }
}

/// Perturbs the calling thread according to the armed seed. Called by
/// [`crate::failpoint::trigger`] on every site hit; a disarmed process
/// pays one `Once` check plus one Acquire load.
pub fn perturb(site: &str) {
    ENV_INIT.call_once(init_from_env);
    // ordering: Acquire pairs with the Release in `install`; once the
    // flag is seen true, SEED and the HITS reset are visible.
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    // ordering: the counter only needs uniqueness per hit (RMW
    // atomicity); decisions do not synchronize anything.
    let hit = HITS.fetch_add(1, Ordering::Relaxed);
    // ordering: ordered by the ARMED Acquire above.
    let seed = SEED.load(Ordering::Relaxed);
    match decision(seed, site, hit) {
        Decision::Proceed => {}
        Decision::Yield => std::thread::yield_now(),
        Decision::SleepMicros(us) => std::thread::sleep(std::time::Duration::from_micros(us)),
    }
}

/// Arms from `SOI_SCHEDULE` when the variable holds a valid seed.
fn init_from_env() {
    let Ok(raw) = std::env::var(ENV_VAR) else {
        return;
    };
    match raw.trim().parse::<u64>() {
        Ok(seed) => install(seed),
        Err(e) => {
            // Arming mistakes must be loud: a silently ignored seed
            // would "pass" every schedule-stress run unperturbed.
            // soi-util sits below soi-obs, so stderr is the only
            // channel available here. xtask-allow: observability
            eprintln!("warning: ignoring {ENV_VAR}={raw:?}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that flip the process-global arming state.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn decisions_are_deterministic_in_the_triple() {
        for (seed, site, hit) in [(7, "a.b", 0), (7, "a.b", 9), (1, "x", 3)] {
            assert_eq!(decision(seed, site, hit), decision(seed, site, hit));
        }
    }

    #[test]
    fn decisions_vary_across_seeds_sites_and_hits() {
        // Over 64 hits, a fixed (seed, site) must produce more than one
        // kind of decision, and two seeds must disagree somewhere.
        let kinds: std::collections::BTreeSet<u8> = (0..64)
            .map(|hit| match decision(11, "server.worker.dispatch", hit) {
                Decision::Proceed => 0,
                Decision::Yield => 1,
                Decision::SleepMicros(_) => 2,
            })
            .collect();
        assert!(kinds.len() > 1, "degenerate decision stream");
        assert!(
            (0..64).any(|hit| decision(1, "s", hit) != decision(2, "s", hit)),
            "seeds 1 and 2 produce identical streams"
        );
    }

    #[test]
    fn install_arms_and_clear_disarms() {
        let _g = locked();
        install(42);
        assert_eq!(armed_seed(), Some(42));
        // Perturbing while armed must not panic or deadlock.
        perturb("test.site");
        clear();
        assert_eq!(armed_seed(), None);
        perturb("test.site"); // disarmed fast path
    }

    #[test]
    fn sleeps_are_bounded_micros() {
        for hit in 0..256 {
            if let Decision::SleepMicros(us) = decision(3, "site", hit) {
                assert!(us <= 200, "sleep {us}µs too long for a stress loop");
            }
        }
    }
}
