//! Wall-clock timing helpers for the experiment harness (Figure 4 reports
//! per-node computation-time distributions).

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch and returns the previous elapsed duration.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Timer::start();
    let out = f();
    (out, t.elapsed())
}

/// Formats a duration compactly for human-readable experiment logs
/// (`"412ns"`, `"3.2µs"`, `"15.0ms"`, `"2.34s"`).
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_positive_duration() {
        let (v, d) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first >= Duration::from_millis(2));
        assert!(t.elapsed() < first, "lap restarted the clock");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(412)), "412ns");
        assert_eq!(format_duration(Duration::from_micros(3200)), "3.2ms");
        assert_eq!(format_duration(Duration::from_millis(15)), "15.0ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
