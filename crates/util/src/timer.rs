//! Wall-clock timing helpers for the experiment harness (Figure 4 reports
//! per-node computation-time distributions).

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts timing now.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch and returns the previous elapsed duration.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// Times a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Timer::start();
    let out = f();
    (out, t.elapsed())
}

/// Formats a duration compactly for human-readable experiment logs
/// (`"412ns"`, `"3.2µs"`, `"15.0ms"`, `"2.34s"`, `"2m30s"`).
///
/// Unit boundaries are exact (`1_000ns` is `"1.0µs"`, not `"1000ns"`),
/// and a value whose rounded mantissa would read `1000.0` is promoted to
/// the next unit (`999_950ns` is `"1.0ms"`, never `"1000.0µs"`). Runs of
/// 100 seconds or more switch to a minutes-and-seconds form, where
/// sub-second precision is noise.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        return format!("{ns}ns");
    }
    if ns < 1_000_000 {
        let us = ns as f64 / 1e3;
        if us < 999.95 {
            return format!("{us:.1}µs");
        }
        return "1.0ms".to_string();
    }
    if ns < 1_000_000_000 {
        let ms = ns as f64 / 1e6;
        if ms < 999.95 {
            return format!("{ms:.1}ms");
        }
        return "1.00s".to_string();
    }
    let secs = ns as f64 / 1e9;
    if secs < 99.995 {
        return format!("{secs:.2}s");
    }
    let total = secs.round() as u128;
    format!("{}m{:02}s", total / 60, total % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_positive_duration() {
        let (v, d) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first >= Duration::from_millis(2));
        assert!(t.elapsed() < first, "lap restarted the clock");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(412)), "412ns");
        assert_eq!(format_duration(Duration::from_micros(3200)), "3.2ms");
        assert_eq!(format_duration(Duration::from_millis(15)), "15.0ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }

    #[test]
    fn duration_formatting_zero_and_exact_boundaries() {
        assert_eq!(format_duration(Duration::ZERO), "0ns");
        assert_eq!(format_duration(Duration::from_nanos(999)), "999ns");
        assert_eq!(format_duration(Duration::from_nanos(1_000)), "1.0µs");
        assert_eq!(format_duration(Duration::from_nanos(1_000_000)), "1.0ms");
        assert_eq!(format_duration(Duration::from_secs(1)), "1.00s");
    }

    #[test]
    fn duration_formatting_promotes_at_rounding_boundary() {
        // Values that would round to a 1000.0 mantissa move up a unit.
        assert_eq!(format_duration(Duration::from_nanos(999_949)), "999.9µs");
        assert_eq!(format_duration(Duration::from_nanos(999_950)), "1.0ms");
        assert_eq!(
            format_duration(Duration::from_nanos(999_949_999)),
            "999.9ms"
        );
        assert_eq!(format_duration(Duration::from_nanos(999_950_000)), "1.00s");
    }

    #[test]
    fn duration_formatting_long_runs_use_minutes() {
        assert_eq!(format_duration(Duration::from_secs(99)), "99.00s");
        assert_eq!(format_duration(Duration::from_secs(100)), "1m40s");
        assert_eq!(format_duration(Duration::from_secs(150)), "2m30s");
        assert_eq!(format_duration(Duration::from_secs(3_601)), "60m01s");
        assert_eq!(format_duration(Duration::from_millis(100_400)), "1m40s");
    }
}
