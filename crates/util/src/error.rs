//! The workspace error type.
//!
//! [`SoiError`] replaces ad-hoc `Result<_, String>` plumbing across the
//! CLI and the persistence/runtime layers. Variants are deliberately
//! flat and specific — checkpoint corruption modes each get their own
//! variant so tests (and operators) can tell a truncated file from a
//! bit flip from a checkpoint taken on a different graph.
//!
//! Library crates that own a richer domain error (`soi_graph::GraphError`,
//! `soi_index::io::LoadError`) keep it and provide `From` conversions
//! into `SoiError` at their boundary.

use crate::failpoint::Fault;

/// Classifies a serving-protocol violation. Each kind has a stable
/// kebab-case wire code ([`ProtoErrorKind::code`]) that `soi serve`
/// embeds in error responses, so clients and tests can distinguish a
/// malformed request from an overloaded server without string-matching
/// free-form messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoErrorKind {
    /// The request line is not a well-formed JSON object.
    MalformedJson,
    /// The `type` field names no known request type.
    UnknownType,
    /// The request line exceeds the server's line-length cap.
    OversizedLine,
    /// The `v` field does not match the server's protocol version.
    VersionMismatch,
    /// The client closed the connection mid-request.
    Disconnected,
    /// The bounded request queue is full (admission control rejected
    /// the request rather than letting it wait unboundedly).
    QueueFull,
    /// The request names a graph the server has not loaded.
    UnknownGraph,
    /// A request field is missing, has the wrong type, or holds an
    /// out-of-range value.
    BadField,
    /// The server failed internally while executing the request (e.g. a
    /// worker panicked); the request may be retried.
    Internal,
    /// The server connection was lost with the request still
    /// outstanding (client-side synthesized error).
    ConnectionLost,
    /// The request exceeded the client-side per-request timeout.
    Timeout,
    /// Every replica of the shard owning the requested graph is down
    /// (router-side answer: the request reached no compute daemon).
    ShardUnavailable,
    /// The peer speaks a different protocol version (detected on the
    /// response `v` field, or relayed by the router when a shard skews).
    ProtocolMismatch,
}

impl ProtoErrorKind {
    /// The stable kebab-case wire code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            ProtoErrorKind::MalformedJson => "malformed-json",
            ProtoErrorKind::UnknownType => "unknown-type",
            ProtoErrorKind::OversizedLine => "oversized-line",
            ProtoErrorKind::VersionMismatch => "version-mismatch",
            ProtoErrorKind::Disconnected => "disconnected",
            ProtoErrorKind::QueueFull => "queue-full",
            ProtoErrorKind::UnknownGraph => "unknown-graph",
            ProtoErrorKind::BadField => "bad-field",
            ProtoErrorKind::Internal => "internal-error",
            ProtoErrorKind::ConnectionLost => "connection-lost",
            ProtoErrorKind::Timeout => "timeout",
            ProtoErrorKind::ShardUnavailable => "shard-unavailable",
            ProtoErrorKind::ProtocolMismatch => "protocol-mismatch",
        }
    }
}

/// Unified error for CLI plumbing, checkpoints, and runtime persistence.
#[derive(Debug)]
pub enum SoiError {
    /// Bad command-line usage (unknown flag, missing argument, bad
    /// value). The CLI maps this to exit code 2 plus the usage text.
    Usage(String),
    /// An underlying I/O failure, with what was being touched.
    Io {
        /// What was being read/written (usually a path).
        context: String,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// A parse failure in a text input, with its location.
    Parse {
        /// The file (or stream description) being parsed.
        context: String,
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A semantically invalid input or state (validation failures that
    /// are not parse or I/O errors).
    Invalid(String),
    /// Checkpoint file ends before the declared structure does.
    CkptTruncated {
        /// Which read hit the end.
        context: String,
    },
    /// Checkpoint stream does not start with the checkpoint magic.
    CkptBadMagic,
    /// Checkpoint format version is not supported.
    CkptBadVersion {
        /// Version byte found in the file.
        found: u8,
        /// Version this build writes and reads.
        expected: u8,
    },
    /// Checkpoint is of a different kind (e.g. a greedy checkpoint fed
    /// to the typical-cascade pipeline).
    CkptBadKind {
        /// Kind byte found in the file.
        found: u8,
        /// Kind the caller required.
        expected: u8,
    },
    /// Checkpoint checksum mismatch: the payload was altered (bit flip,
    /// partial overwrite) after it was written.
    CkptChecksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the file contents.
        computed: u64,
    },
    /// Checkpoint header field does not match the resuming run (wrong
    /// graph, different seed/config).
    CkptMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// Value stored in the checkpoint.
        stored: u64,
        /// Value the resuming run expects.
        expected: u64,
    },
    /// A deterministic fault injected through a failpoint site.
    Fault {
        /// The failpoint site that fired.
        site: String,
    },
    /// A serving-protocol violation (`soi serve` / `soi query`).
    Protocol {
        /// What class of violation this is.
        kind: ProtoErrorKind,
        /// Human-readable detail (offending field, limit value, …).
        message: String,
    },
}

impl SoiError {
    /// Wraps an I/O error with context (usually the path involved).
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        SoiError::Io {
            context: context.into(),
            source,
        }
    }

    /// Builds a usage error (CLI exit code 2).
    pub fn usage(message: impl Into<String>) -> Self {
        SoiError::Usage(message.into())
    }

    /// Builds a semantic-validation error.
    pub fn invalid(message: impl Into<String>) -> Self {
        SoiError::Invalid(message.into())
    }

    /// Builds a serving-protocol error of the given kind.
    pub fn protocol(kind: ProtoErrorKind, message: impl Into<String>) -> Self {
        SoiError::Protocol {
            kind,
            message: message.into(),
        }
    }

    /// `true` for errors the CLI should report as bad usage (exit 2 with
    /// the usage text) rather than as a runtime failure (exit 1).
    pub fn is_usage(&self) -> bool {
        matches!(self, SoiError::Usage(_))
    }

    /// Fills an empty `context` field (on [`SoiError::Io`] /
    /// [`SoiError::Parse`]) with `context` — typically the path of the
    /// file whose processing produced the error. An already-set context
    /// is preserved.
    pub fn with_context(self, context: &str) -> Self {
        match self {
            SoiError::Io { context: c, source } if c.is_empty() => SoiError::io(context, source),
            SoiError::Parse {
                context: c,
                line,
                message,
            } if c.is_empty() => SoiError::Parse {
                context: context.to_string(),
                line,
                message,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for SoiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoiError::Usage(m) => write!(f, "{m}"),
            SoiError::Io { context, source } if context.is_empty() => write!(f, "{source}"),
            SoiError::Io { context, source } => write!(f, "{context}: {source}"),
            SoiError::Parse {
                context,
                line,
                message,
            } => write!(f, "{context}:{line}: {message}"),
            SoiError::Invalid(m) => write!(f, "{m}"),
            SoiError::CkptTruncated { context } => {
                write!(f, "checkpoint truncated ({context})")
            }
            SoiError::CkptBadMagic => write!(f, "not a checkpoint file (bad magic)"),
            SoiError::CkptBadVersion { found, expected } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads {expected})"
            ),
            SoiError::CkptBadKind { found, expected } => write!(
                f,
                "checkpoint kind {found} does not match pipeline kind {expected}"
            ),
            SoiError::CkptChecksum { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SoiError::CkptMismatch {
                field,
                stored,
                expected,
            } => write!(
                f,
                "checkpoint {field} mismatch (stored {stored:#018x}, this run {expected:#018x})"
            ),
            SoiError::Fault { site } => write!(f, "injected fault at {site}"),
            SoiError::Protocol { kind, message } => {
                write!(f, "protocol error [{}]: {message}", kind.code())
            }
        }
    }
}

impl std::error::Error for SoiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SoiError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SoiError {
    fn from(e: std::io::Error) -> Self {
        SoiError::Io {
            context: String::new(),
            source: e,
        }
    }
}

impl From<Fault> for SoiError {
    fn from(fault: Fault) -> Self {
        SoiError::Fault { site: fault.site }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_informative() {
        let e = SoiError::io("net.tsv", std::io::Error::other("boom"));
        assert_eq!(e.to_string(), "net.tsv: boom");
        let e = SoiError::Parse {
            context: "net.tsv".into(),
            line: 7,
            message: "bad probability".into(),
        };
        assert_eq!(e.to_string(), "net.tsv:7: bad probability");
        let e = SoiError::CkptBadVersion {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = SoiError::CkptMismatch {
            field: "graph_fingerprint",
            stored: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("graph_fingerprint"));
    }

    #[test]
    fn usage_classification() {
        assert!(SoiError::usage("--k is required").is_usage());
        assert!(!SoiError::invalid("source out of range").is_usage());
    }

    #[test]
    fn fault_converts() {
        let e: SoiError = Fault { site: "s".into() }.into();
        assert!(matches!(e, SoiError::Fault { ref site } if site == "s"));
    }

    #[test]
    fn protocol_kinds_have_distinct_codes() {
        let kinds = [
            ProtoErrorKind::MalformedJson,
            ProtoErrorKind::UnknownType,
            ProtoErrorKind::OversizedLine,
            ProtoErrorKind::VersionMismatch,
            ProtoErrorKind::Disconnected,
            ProtoErrorKind::QueueFull,
            ProtoErrorKind::UnknownGraph,
            ProtoErrorKind::BadField,
            ProtoErrorKind::Internal,
            ProtoErrorKind::ConnectionLost,
            ProtoErrorKind::Timeout,
            ProtoErrorKind::ShardUnavailable,
            ProtoErrorKind::ProtocolMismatch,
        ];
        let codes: std::collections::BTreeSet<&str> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len(), "wire codes must be distinct");
        for code in codes {
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "non-kebab code {code}"
            );
        }
        let e = SoiError::protocol(ProtoErrorKind::QueueFull, "cap 8 reached");
        assert_eq!(e.to_string(), "protocol error [queue-full]: cap 8 reached");
        assert!(!e.is_usage());
    }

    #[test]
    fn io_source_is_chained() {
        use std::error::Error;
        let e = SoiError::io("f", std::io::Error::other("inner"));
        assert!(e.source().is_some());
    }
}
