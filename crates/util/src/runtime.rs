//! Cooperative cancellation and deterministic time budgets.
//!
//! Long-running pipelines (index builds, batch typical cascades, greedy
//! seed selection, Monte-Carlo estimation) accept a [`Deadline`] and call
//! [`Deadline::tick`] once per *unit of work* (one sampled world, one
//! node solved, one oracle evaluation, …). When the budget is exhausted —
//! or another thread calls [`Deadline::cancel`] — the pipeline stops at
//! the next unit boundary and returns [`Outcome::Partial`] carrying
//! whatever it completed plus a [`Progress`] fraction, instead of
//! aborting or discarding work.
//!
//! Budgets are counted in **ticks**, not wall-clock time, so tests and
//! reproductions are deterministic: the same inputs and the same budget
//! always stop at exactly the same unit. Callers that want wall-clock
//! deadlines can size the tick budget from a measured tick rate.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Why a computation stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The tick budget ran out.
    DeadlineExpired,
    /// [`Deadline::cancel`] was called.
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::DeadlineExpired => write!(f, "deadline expired"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Completed-work accounting attached to a partial result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Units of work completed.
    pub done: u64,
    /// Total units the full computation would have performed.
    pub total: u64,
}

impl Progress {
    /// Completed fraction in `[0, 1]` (1.0 for a zero-unit computation).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.done as f64 / self.total as f64).min(1.0)
        }
    }
}

/// Result of a budgeted computation: either the full value, or the value
/// of the completed prefix plus progress accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome<T> {
    /// The computation ran to completion.
    Completed(T),
    /// The computation stopped early; `value` covers the completed units.
    Partial {
        /// The (valid, usable) result of the completed prefix of work.
        value: T,
        /// How much of the computation finished.
        progress: Progress,
        /// Why it stopped.
        reason: StopReason,
    },
}

impl<T> Outcome<T> {
    /// The carried value, complete or not.
    pub fn value(self) -> T {
        match self {
            Outcome::Completed(v) | Outcome::Partial { value: v, .. } => v,
        }
    }

    /// Borrow of the carried value, complete or not.
    pub fn value_ref(&self) -> &T {
        match self {
            Outcome::Completed(v) | Outcome::Partial { value: v, .. } => v,
        }
    }

    /// `true` for [`Outcome::Completed`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Completed(_))
    }

    /// Progress accounting: `None` when complete.
    pub fn progress(&self) -> Option<Progress> {
        match self {
            Outcome::Completed(_) => None,
            Outcome::Partial { progress, .. } => Some(*progress),
        }
    }

    /// Maps the carried value, preserving completion status.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Outcome<U> {
        match self {
            Outcome::Completed(v) => Outcome::Completed(f(v)),
            Outcome::Partial {
                value,
                progress,
                reason,
            } => Outcome::Partial {
                value: f(value),
                progress,
                reason,
            },
        }
    }
}

/// Shared state behind cloned deadline handles.
#[derive(Debug)]
struct DeadlineInner {
    /// Tick budget; `u64::MAX` means unlimited.
    limit: u64,
    /// Ticks recorded so far (across all clones and threads).
    spent: AtomicU64,
    cancelled: AtomicBool,
}

/// A cooperative cancellation/deadline token.
///
/// Cloning is cheap and shares the budget: ticks recorded through any
/// clone count against the same limit, and [`cancel`](Deadline::cancel)
/// through any clone stops them all. Hot loops should call
/// [`tick`](Deadline::tick) once per unit of work and stop when it
/// returns `false`.
///
/// ```
/// use soi_util::runtime::Deadline;
/// let d = Deadline::ticks(3);
/// assert!(d.tick(1));
/// assert!(d.tick(2));   // exactly exhausts the budget
/// assert!(!d.tick(1));  // over budget
/// assert!(d.expired());
/// ```
#[derive(Clone, Debug)]
pub struct Deadline {
    inner: Arc<DeadlineInner>,
}

impl Deadline {
    /// A deadline that never expires (but can still be cancelled).
    pub fn unlimited() -> Self {
        Deadline::with_limit(u64::MAX)
    }

    /// A deadline allowing `limit` ticks of work.
    pub fn ticks(limit: u64) -> Self {
        Deadline::with_limit(limit)
    }

    fn with_limit(limit: u64) -> Self {
        Deadline {
            inner: Arc::new(DeadlineInner {
                limit,
                spent: AtomicU64::new(0),
                cancelled: AtomicBool::new(false),
            }),
        }
    }

    /// Records `n` ticks of completed work. Returns `true` while the
    /// computation may continue (budget not exhausted, not cancelled).
    #[inline]
    pub fn tick(&self, n: u64) -> bool {
        // ordering: the budget only needs an exact count (RMW
        // atomicity), and cancellation is advisory — observing the
        // flag a few ticks late just means a few extra units of work.
        let before = self.inner.spent.fetch_add(n, Ordering::Relaxed);
        before.saturating_add(n) <= self.inner.limit
            && !self.inner.cancelled.load(Ordering::Relaxed) // ordering: advisory flag, see above
    }

    /// `true` once the budget is exhausted or the token was cancelled.
    #[inline]
    pub fn expired(&self) -> bool {
        // ordering: advisory cancellation/budget check; see `tick`.
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.spent.load(Ordering::Relaxed) > self.inner.limit // ordering: as above
    }

    /// Requests cooperative cancellation of every holder of this token.
    pub fn cancel(&self) {
        // ordering: the flag is the whole payload — no data rides on
        // the cancellation edge, so no Release fence is needed.
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` when [`cancel`](Deadline::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        // ordering: advisory flag read; see `cancel`.
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Ticks recorded so far.
    pub fn spent(&self) -> u64 {
        // ordering: monotonic-counter snapshot for progress reporting.
        self.inner.spent.load(Ordering::Relaxed)
    }

    /// The tick budget (`u64::MAX` for unlimited tokens).
    pub fn limit(&self) -> u64 {
        self.inner.limit
    }

    /// The stop reason an expired token implies (cancellation wins when
    /// both apply; `None` while still running).
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.expired() {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }

    /// Packages `value` as [`Outcome::Partial`] when this token has
    /// expired, [`Outcome::Completed`] otherwise. `done`/`total` are the
    /// caller's unit accounting.
    pub fn outcome<T>(&self, value: T, done: u64, total: u64) -> Outcome<T> {
        match self.stop_reason() {
            Some(reason) if done < total => Outcome::Partial {
                value,
                progress: Progress { done, total },
                reason,
            },
            _ => Outcome::Completed(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::unlimited();
        for _ in 0..1000 {
            assert!(d.tick(u32::MAX as u64));
        }
        assert!(!d.expired());
        assert_eq!(d.stop_reason(), None);
    }

    #[test]
    fn budget_is_exact_in_ticks() {
        let d = Deadline::ticks(5);
        assert!(d.tick(5), "exactly the budget is allowed");
        assert!(!d.expired(), "spent == limit is not yet expired");
        assert!(!d.tick(1));
        assert!(d.expired());
        assert_eq!(d.stop_reason(), Some(StopReason::DeadlineExpired));
        assert_eq!(d.spent(), 6);
    }

    #[test]
    fn cancel_stops_all_clones() {
        let d = Deadline::unlimited();
        let d2 = d.clone();
        assert!(d2.tick(1));
        d.cancel();
        assert!(!d2.tick(1));
        assert!(d2.expired());
        assert_eq!(d2.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn clones_share_the_budget() {
        let d = Deadline::ticks(10);
        let d2 = d.clone();
        assert!(d.tick(6));
        assert!(d2.tick(4));
        assert!(!d2.tick(1));
        assert_eq!(d.spent(), 11);
    }

    #[test]
    fn ticks_are_shared_across_threads() {
        let d = Deadline::ticks(1000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        d.tick(1);
                    }
                });
            }
        });
        assert_eq!(d.spent(), 400);
        assert!(!d.expired());
    }

    #[test]
    fn progress_fraction() {
        assert_eq!(Progress { done: 0, total: 0 }.fraction(), 1.0);
        assert_eq!(Progress { done: 1, total: 4 }.fraction(), 0.25);
        assert_eq!(Progress { done: 9, total: 4 }.fraction(), 1.0, "clamped");
    }

    #[test]
    fn outcome_helpers() {
        let d = Deadline::ticks(1);
        assert_eq!(d.outcome(7, 3, 3), Outcome::Completed(7));
        assert!(!d.tick(5));
        let partial = d.outcome(7, 1, 3);
        assert!(!partial.is_complete());
        assert_eq!(partial.progress(), Some(Progress { done: 1, total: 3 }));
        assert_eq!(partial.clone().value(), 7);
        assert_eq!(partial.map(|v| v * 2).value(), 14);
        // Expired but all units done => still Completed.
        assert_eq!(d.outcome(7, 3, 3), Outcome::Completed(7));
    }
}
