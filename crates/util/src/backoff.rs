//! Deterministic capped exponential backoff.
//!
//! Retry delays across the workspace are expressed in abstract *ticks*
//! (the same unit `soi_util::runtime::Deadline` budgets use), not wall
//! time: callers decide how a tick maps onto sleeping, which keeps every
//! retry schedule reproducible in tests. Two helpers live here:
//!
//! * [`delay_ticks`] — the classic capped doubling schedule
//!   `min(base << attempt, cap)`, saturating instead of overflowing, so
//!   a retry loop can compute its `k`-th delay without carrying state;
//! * [`retry_after_ticks`] — the server-side load-shedding hint embedded
//!   in structured `queue-full` rejections: a deterministic function of
//!   the observed queue depth and capacity, so identical overload states
//!   always advertise identical hints (and tests can assert them);
//! * [`delay_with_hint`] — the client-side combination of the two: the
//!   doubling schedule, but never shorter than a server-advertised
//!   `retry_after_ticks` hint. A zero `base` still disables backoff
//!   entirely (tests that must not sleep ignore hints too).

/// Largest delay either helper will ever return. Keeps schedules sane
/// even with absurd attempt counts or caller-supplied caps.
pub const MAX_DELAY_TICKS: u64 = 1 << 16;

/// The `attempt`-th delay (0-based) of a capped doubling schedule:
/// `min(base << attempt, cap)`, saturating on shift overflow. A zero
/// `base` disables backoff (every delay is 0); `cap` is itself clamped
/// to [`MAX_DELAY_TICKS`].
pub fn delay_ticks(base: u64, attempt: u32, cap: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    let cap = cap.min(MAX_DELAY_TICKS);
    let scaled = base.checked_shl(attempt).unwrap_or(u64::MAX);
    scaled.min(cap)
}

/// The `attempt`-th delay of the doubling schedule, floored by a
/// server-advertised hint: `max(delay_ticks(base, attempt, cap), hint)`,
/// still bounded by [`MAX_DELAY_TICKS`]. When `base` is 0 backoff is
/// disabled outright and the hint is ignored — a caller that opted out
/// of waiting (deterministic tests, latency probes) must never be made
/// to wait by an overloaded peer.
pub fn delay_with_hint(base: u64, attempt: u32, cap: u64, hint: u64) -> u64 {
    if base == 0 {
        return 0;
    }
    delay_ticks(base, attempt, cap)
        .max(hint)
        .min(MAX_DELAY_TICKS)
}

/// The retry hint a server embeds in a `queue-full` rejection: how many
/// ticks a well-behaved client should wait before retrying, as a
/// deterministic function of queue state. The hint grows linearly with
/// how full the queue is — `16 · ceil(depth+1 / cap)` per slot of
/// pressure — so a barely-full queue advertises a short wait and a
/// deeply backed-up one advertises proportionally more, capped at
/// [`MAX_DELAY_TICKS`]. A zero `cap` (closed/degenerate queue) yields
/// the maximum hint.
pub fn retry_after_ticks(depth: usize, cap: usize) -> u64 {
    if cap == 0 {
        return MAX_DELAY_TICKS;
    }
    let depth = depth as u64;
    let cap = cap as u64;
    // Pressure in [1, ..]: 1 when the queue just filled, higher when
    // depth (a racy snapshot) exceeds the nominal capacity.
    let pressure = depth.saturating_add(cap) / cap;
    (16u64.saturating_mul(pressure)).min(MAX_DELAY_TICKS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_schedule_is_capped_and_saturating() {
        assert_eq!(delay_ticks(1, 0, 64), 1);
        assert_eq!(delay_ticks(1, 3, 64), 8);
        assert_eq!(delay_ticks(1, 6, 64), 64);
        assert_eq!(delay_ticks(1, 7, 64), 64, "capped");
        assert_eq!(delay_ticks(3, 2, 100), 12);
        // Shift far past 64 bits must saturate, not panic or wrap.
        assert_eq!(delay_ticks(1, 200, 64), 64);
        assert_eq!(delay_ticks(u64::MAX, 1, MAX_DELAY_TICKS), MAX_DELAY_TICKS);
    }

    #[test]
    fn zero_base_disables_backoff() {
        for attempt in [0, 1, 17, 63, 200] {
            assert_eq!(delay_ticks(0, attempt, 1024), 0);
        }
    }

    #[test]
    fn cap_is_clamped_to_global_maximum() {
        assert_eq!(delay_ticks(1, 63, u64::MAX), MAX_DELAY_TICKS);
    }

    #[test]
    fn retry_hint_is_deterministic_and_monotone_in_depth() {
        let cap = 8;
        let mut last = 0;
        for depth in 0..64 {
            let hint = retry_after_ticks(depth, cap);
            assert!(hint >= last, "hint must not shrink as depth grows");
            assert_eq!(hint, retry_after_ticks(depth, cap), "deterministic");
            last = hint;
        }
        // A just-full queue advertises the base hint.
        assert_eq!(retry_after_ticks(8, 8), 32);
        assert_eq!(retry_after_ticks(0, 8), 16);
    }

    #[test]
    fn retry_hint_edge_cases() {
        assert_eq!(retry_after_ticks(0, 0), MAX_DELAY_TICKS);
        assert_eq!(retry_after_ticks(usize::MAX, 1), MAX_DELAY_TICKS);
    }

    #[test]
    fn hint_overrides_schedule_in_both_directions() {
        // Hint longer than the schedule wins…
        assert_eq!(delay_with_hint(1, 0, 1024, 500), 500);
        // …and a schedule longer than the hint wins.
        assert_eq!(delay_with_hint(1, 6, 1024, 5), 64);
        // Equal: either answer is the same value.
        assert_eq!(delay_with_hint(8, 0, 1024, 8), 8);
        // No hint degrades to the plain schedule.
        assert_eq!(delay_with_hint(2, 3, 1024, 0), 16);
    }

    #[test]
    fn zero_base_disables_backoff_even_with_hints() {
        for hint in [0, 1, 1024, u64::MAX] {
            assert_eq!(delay_with_hint(0, 5, 1024, hint), 0);
        }
    }

    #[test]
    fn hinted_delay_saturates_at_global_maximum() {
        assert_eq!(delay_with_hint(1, 0, 64, u64::MAX), MAX_DELAY_TICKS);
        assert_eq!(
            delay_with_hint(u64::MAX, 40, u64::MAX, u64::MAX),
            MAX_DELAY_TICKS
        );
    }

    #[test]
    fn schedules_are_deterministic_across_identical_parameters() {
        // Pure functions of their arguments: replaying the same retry
        // loop twice yields tick-identical schedules.
        let run = |seed: u64| -> Vec<u64> {
            (0..32)
                .map(|attempt| delay_with_hint(seed % 7 + 1, attempt, 900, seed % 13))
                .collect()
        };
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
    }
}
